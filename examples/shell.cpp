// Interactive mini-Cypher shell over a generated microblog graph,
// opened through the engine API with live writes enabled.
//
//   ./shell [num_users] [wal_dir]
//
// Reads one query per line from stdin and prints rows. CREATE/SET/
// DELETE queries mutate the graph through the snapshot-guarded write
// path (docs/WRITES.md); passing `wal_dir` makes every commit durable.
// Queries may be prefixed with the PROFILE verb (run and print the
// operator tree with per-operator rows and db hits), EXPLAIN (print the
// plan shape without running), or LINT (semantic analysis only).
// Dot-commands:
//   :help              this text
//   :profile <query>   alias for the PROFILE prefix
//   :lint <query>      alias for the LINT prefix (semantic diagnostics)
//   :stats             database counters (nodes, rels, db hits)
//   :writes            write-path counters (delta journal, WAL, next tid)
//   :post <uid> <txt>  typed write: post a tweet for <uid> (W1.1)
//   :follow <a> <b>    typed write: <a> follows <b> (W2.1)
//   :unfollow <a> <b>  typed write: tombstone the edge (W2.2)
//   :metrics           full observability snapshot (docs/OBSERVABILITY.md)
//   :metrics <prefix>  only metrics whose name starts with <prefix>
//   :slow              slow-query flight recorder (threshold via
//                      MBQ_SLOW_QUERY_MILLIS, default 50 ms)
//   :slow clear        empty the flight recorder
//   :serve [port]      start the embedded stats server (/metrics,
//                      /metrics.json, /queries, /slow, /trace); no port
//                      picks an ephemeral one
//   :cache             read-cache stats (result + adjacency)
//   :cache on|off      enable/disable both read caches
//   :cache clear       empty the read caches (keeps them enabled)
//   :cold              drop the page cache (next query runs cold)
//   :quit              exit
//
// Example session:
//   mbq> MATCH (u:user) WHERE u.followers_count > 50 RETURN u.uid LIMIT 5
//   mbq> PROFILE MATCH (a:user {uid: 7})-[:follows]->(f:user) RETURN f.uid
//   mbq> MATCH (a:user {uid: 7}), (b:user {uid: 9}) CREATE (a)-[:follows]->(b)
//   mbq> :follow 7 11

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "core/nodestore_engine.h"
#include "core/workload.h"
#include "cypher/session.h"
#include "obs/httpd.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "store/delta/delta_store.h"
#include "store/delta/wal.h"
#include "twitter/loaders.h"
#include "util/string_util.h"

namespace {

/// Snapshot restricted to metric names starting with `prefix` (":metrics
/// cypher." shows just the query-layer counters).
mbq::obs::MetricsSnapshot FilterByPrefix(mbq::obs::MetricsSnapshot snapshot,
                                         const std::string& prefix) {
  auto drop = [&](auto* rows) {
    rows->erase(std::remove_if(rows->begin(), rows->end(),
                               [&](const auto& row) {
                                 return row.name.compare(0, prefix.size(),
                                                         prefix) != 0;
                               }),
                rows->end());
  };
  drop(&snapshot.counters);
  drop(&snapshot.gauges);
  drop(&snapshot.histograms);
  return snapshot;
}

void PrintResult(const mbq::cypher::QueryResult& result, bool with_profile) {
  if (result.lint_only) {
    if (result.rows.empty()) {
      std::printf("no diagnostics\n");
    } else {
      std::printf("%s", result.profile.c_str());
    }
    return;
  }
  if (result.explain_only) {
    std::printf("compiled plan (not executed):\n%s", result.profile.c_str());
    return;
  }
  std::string header;
  for (size_t i = 0; i < result.columns.size(); ++i) {
    if (i > 0) header += " | ";
    header += result.columns[i];
  }
  std::printf("%s\n", header.c_str());
  std::printf("%s\n", std::string(header.size(), '-').c_str());
  size_t shown = 0;
  for (const auto& row : result.rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += row[i].ToString();
    }
    std::printf("%s\n", line.c_str());
    if (++shown >= 50) {
      std::printf("... (%zu more rows)\n", result.rows.size() - shown);
      break;
    }
  }
  std::printf("%zu row(s), %llu db hits%s\n", result.rows.size(),
              static_cast<unsigned long long>(result.db_hits),
              result.plan_cached ? " (plan cached)" : "");
  if (with_profile) {
    std::printf("\n%s", result.profile.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_users = 2000;
  if (argc > 1) {
    num_users = std::strtoull(argv[1], nullptr, 10);
    if (num_users < 10) num_users = 10;
  }
  std::string wal_dir;
  if (argc > 2) wal_dir = argv[2];
  std::printf("generating a %llu-user microblog graph...\n",
              static_cast<unsigned long long>(num_users));
  mbq::twitter::DatasetSpec spec;
  spec.num_users = num_users;
  spec.retweet_fraction = 0.15;
  auto dataset = mbq::twitter::GenerateDataset(spec);

  mbq::nodestore::GraphDb db;
  auto handles = mbq::twitter::LoadIntoNodestore(dataset, &db);
  if (!handles.ok()) {
    std::printf("load failed: %s\n", handles.status().ToString().c_str());
    return 1;
  }

  // The engine API rather than a bare CypherSession: writes enabled, so
  // CREATE/SET/DELETE queries and the typed :post/:follow/:unfollow
  // commands commit through the snapshot-guarded path. A replayed WAL
  // (second run with the same wal_dir) restores earlier live writes.
  mbq::core::EngineOptions engine_options;
  engine_options.db = &db;
  engine_options.enable_writes = true;
  engine_options.dataset = &dataset;
  engine_options.wal_dir = wal_dir;
  auto engine =
      mbq::core::OpenEngine(mbq::core::EngineKind::kNodestore, engine_options);
  if (!engine.ok()) {
    std::printf("engine open failed: %s\n",
                engine.status().ToString().c_str());
    return 1;
  }
  auto* ns = static_cast<mbq::core::NodestoreEngine*>(engine->get());
  mbq::core::WritableEngine* writer = ns->AsWritable();

  std::string durability = wal_dir.empty()
                               ? "no WAL — pass a wal_dir to persist"
                               : "wal_dir=" + wal_dir;
  std::printf(
      "loaded %llu nodes / %llu relationships "
      "(schema: user/tweet/hashtag; follows/posts/retweets/mentions/tags)\n"
      "live writes enabled (%s); type :help for commands\n",
      static_cast<unsigned long long>(db.NumNodes()),
      static_cast<unsigned long long>(db.NumRels()), durability.c_str());
  if (writer != nullptr && writer->delta().batches() > 0) {
    std::printf("replayed %llu committed batch(es) from the WAL\n",
                static_cast<unsigned long long>(writer->delta().batches()));
  }

  mbq::cypher::CypherSession& session = ns->session();
  // MBQ_STATS_PORT serves /metrics etc. for the whole session; :serve
  // starts the same server interactively.
  std::unique_ptr<mbq::obs::StatsServer> stats = mbq::obs::MaybeServeFromEnv();
  std::string line;
  while (true) {
    std::printf("mbq> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = mbq::TrimString(line);
    if (trimmed.empty()) continue;
    if (trimmed == ":quit" || trimmed == ":exit") break;
    if (trimmed == ":help") {
      std::printf(
          "PROFILE <query>   run and print the operator tree with db hits\n"
          "EXPLAIN <query>   print the compiled plan without running it\n"
          "LINT <query>      semantic diagnostics only (never executes)\n"
          ":profile <query>  alias for the PROFILE prefix\n"
          ":lint <query>     alias for the LINT prefix\n"
          ":stats            database counters\n"
          ":writes           write-path counters (delta journal, WAL)\n"
          ":post <uid> <txt> typed write: post a tweet for <uid>\n"
          ":follow <a> <b>   typed write: <a> follows <b>\n"
          ":unfollow <a> <b> typed write: remove the follows edge\n"
          ":metrics          full observability snapshot\n"
          ":metrics <prefix> only metrics starting with <prefix>, e.g. "
          ":metrics cypher.\n"
          ":slow             slow-query flight recorder (:slow clear to "
          "empty)\n"
          ":serve [port]     start the embedded stats server "
          "(/metrics, /metrics.json, /queries, /slow, /trace)\n"
          ":cache            read-cache stats (result + adjacency)\n"
          ":cache on|off     enable/disable both read caches\n"
          ":cache clear      empty the read caches\n"
          ":cold             drop the page cache\n"
          ":quit             exit\n"
          "anything else is parsed as a mini-Cypher query — reads and\n"
          "writes (CREATE / SET / DELETE), e.g.\n"
          "  MATCH (u:user) WHERE u.followers_count > 50 "
          "RETURN u.uid LIMIT 5\n"
          "  MATCH (a:user {uid: 7}), (b:user {uid: 9}) "
          "CREATE (a)-[:follows]->(b)\n");
      continue;
    }
    if (trimmed == ":metrics" || mbq::StartsWith(trimmed, ":metrics ")) {
      auto snapshot = mbq::obs::MetricsRegistry::Default().Snapshot();
      if (trimmed != ":metrics") {
        std::string prefix(mbq::TrimString(trimmed.substr(9)));
        snapshot = FilterByPrefix(std::move(snapshot), prefix);
        if (snapshot.counters.empty() && snapshot.gauges.empty() &&
            snapshot.histograms.empty()) {
          std::printf("no metrics with prefix \"%s\"\n", prefix.c_str());
          continue;
        }
      }
      std::printf("%s", snapshot.ToText().c_str());
      continue;
    }
    if (trimmed == ":slow") {
      std::printf("%s", mbq::obs::FlightRecorder::Global().ToText().c_str());
      continue;
    }
    if (trimmed == ":slow clear") {
      mbq::obs::FlightRecorder::Global().Clear();
      std::printf("flight recorder cleared\n");
      continue;
    }
    if (trimmed == ":serve" || mbq::StartsWith(trimmed, ":serve ")) {
      if (stats != nullptr) {
        std::printf("stats server already on http://%s:%u/\n",
                    stats->bind_address().c_str(),
                    static_cast<unsigned>(stats->port()));
        continue;
      }
      mbq::obs::ServeOptions serve_options;
      if (trimmed != ":serve") {
        unsigned long port = std::strtoul(
            std::string(mbq::TrimString(trimmed.substr(7))).c_str(), nullptr,
            10);
        if (port > 65535) {
          std::printf("bad port\n");
          continue;
        }
        serve_options.port = static_cast<uint16_t>(port);
      }
      auto server = mbq::obs::StatsServer::Start(serve_options);
      if (!server.ok()) {
        std::printf("stats server failed: %s\n",
                    server.status().message().c_str());
        continue;
      }
      stats = std::move(server).value();
      std::printf("stats server listening on http://%s:%u/\n",
                  stats->bind_address().c_str(),
                  static_cast<unsigned>(stats->port()));
      continue;
    }
    if (trimmed == ":stats") {
      std::printf("nodes=%llu rels=%llu db_hits=%llu disk=%llu bytes\n",
                  static_cast<unsigned long long>(db.NumNodes()),
                  static_cast<unsigned long long>(db.NumRels()),
                  static_cast<unsigned long long>(db.db_hits()),
                  static_cast<unsigned long long>(db.DiskSizeBytes()));
      continue;
    }
    if (trimmed == ":writes") {
      if (writer == nullptr) {
        std::printf("engine is read-only\n");
        continue;
      }
      const mbq::store::DeltaStore& delta = writer->delta();
      std::printf(
          "delta: %llu batch(es), %llu op(s), %llu tombstone(s), "
          "last_seq=%llu commit_epoch=%llu next_tid=%lld\n",
          static_cast<unsigned long long>(delta.batches()),
          static_cast<unsigned long long>(delta.ops()),
          static_cast<unsigned long long>(delta.tombstones()),
          static_cast<unsigned long long>(delta.last_seq()),
          static_cast<unsigned long long>(delta.last_epoch()),
          static_cast<long long>(writer->next_tid()));
      if (writer->wal() != nullptr) {
        std::printf("wal: %s — %llu record(s), %llu bytes\n",
                    writer->wal()->path().c_str(),
                    static_cast<unsigned long long>(writer->wal()->records()),
                    static_cast<unsigned long long>(writer->wal()->bytes()));
      } else {
        std::printf("wal: none (commits are not durable)\n");
      }
      continue;
    }
    if (mbq::StartsWith(trimmed, ":post ") ||
        mbq::StartsWith(trimmed, ":follow ") ||
        mbq::StartsWith(trimmed, ":unfollow ")) {
      if (writer == nullptr) {
        std::printf("engine is read-only\n");
        continue;
      }
      bool is_post = mbq::StartsWith(trimmed, ":post ");
      size_t skip = is_post ? 6 : (mbq::StartsWith(trimmed, ":follow ") ? 8 : 10);
      std::string rest(mbq::TrimString(trimmed.substr(skip)));
      char* end = nullptr;
      long long a = std::strtoll(rest.c_str(), &end, 10);
      mbq::Status committed;
      if (is_post) {
        std::string text(mbq::TrimString(std::string(end == nullptr ? "" : end)));
        committed = writer->PostTweet(a, text);
        if (committed.ok()) {
          std::printf("tweet %lld posted by user %lld\n",
                      static_cast<long long>(writer->next_tid() - 1), a);
        }
      } else {
        long long b = std::strtoll(end == nullptr ? "" : end, nullptr, 10);
        committed = mbq::StartsWith(trimmed, ":follow ")
                        ? writer->Follow(a, b)
                        : writer->Unfollow(a, b);
        if (committed.ok()) std::printf("committed\n");
      }
      if (!committed.ok()) {
        std::printf("error: %s\n", committed.ToString().c_str());
      }
      continue;
    }
    if (trimmed == ":cache" || trimmed == ":cache on" ||
        trimmed == ":cache off" || trimmed == ":cache clear") {
      if (trimmed == ":cache on" || trimmed == ":cache off") {
        mbq::cypher::SessionOptions options;
        options.threads = 0;  // keep the current thread setting
        options.result_cache = trimmed == ":cache on";
        options.adjacency_cache = trimmed == ":cache on";
        session.Configure(options);
        std::printf("read caches %s\n",
                    trimmed == ":cache on" ? "enabled" : "disabled");
        continue;
      }
      if (trimmed == ":cache clear") {
        session.ClearReadCaches();
        std::printf("read caches cleared\n");
        continue;
      }
      auto print_stats = [](const char* name, bool enabled,
                            const mbq::cache::CacheStats& stats) {
        if (!enabled) {
          std::printf("%s: disabled (:cache on to enable)\n", name);
          return;
        }
        std::printf(
            "%s: %llu hits / %llu misses, %llu entries (%llu bytes), "
            "%llu evicted, %llu invalidated\n",
            name, static_cast<unsigned long long>(stats.hits),
            static_cast<unsigned long long>(stats.misses),
            static_cast<unsigned long long>(stats.entries),
            static_cast<unsigned long long>(stats.bytes),
            static_cast<unsigned long long>(stats.evictions),
            static_cast<unsigned long long>(stats.invalidations));
      };
      print_stats("result cache   ", session.result_cache_enabled(),
                  session.result_cache_stats());
      print_stats("adjacency cache", session.adjacency_cache_enabled(),
                  session.adjacency_cache_stats());
      continue;
    }
    if (trimmed == ":cold") {
      auto st = db.DropCaches();
      std::printf("%s\n", st.ok() ? "page cache dropped" : st.ToString().c_str());
      continue;
    }
    std::string query(trimmed);
    if (mbq::StartsWith(query, ":profile")) {
      query = "PROFILE " + std::string(mbq::TrimString(query.substr(8)));
    } else if (mbq::StartsWith(query, ":lint")) {
      query = "LINT " + std::string(mbq::TrimString(query.substr(5)));
    }
    auto result = session.Run(query);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result, result->profiled);
  }
  std::printf("\nbye\n");
  return 0;
}
