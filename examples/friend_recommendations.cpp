// Friend recommendations (the paper's Q4): "recommendations are often
// useful when obtained from the local community" — candidates are the
// followees of one's followees, ranked by how many of your followees
// already follow them. Also demonstrates PROFILE-style introspection:
// the plan tree with per-operator rows and db hits, and the effect of
// rephrasing the query (the paper's methods (a)/(b)/(c)).

#include <cstdio>

#include "core/nodestore_engine.h"
#include "core/workload.h"
#include "twitter/loaders.h"

int main() {
  mbq::twitter::DatasetSpec spec;
  spec.num_users = 4000;
  spec.seed = 7;
  auto dataset = mbq::twitter::GenerateDataset(spec);

  mbq::nodestore::GraphDb db;
  auto nh = mbq::twitter::LoadIntoNodestore(dataset, &db);
  if (!nh.ok()) {
    std::printf("load failed: %s\n", nh.status().ToString().c_str());
    return 1;
  }
  mbq::core::NodestoreEngine engine(&db);

  auto by_followees = mbq::core::UsersByFolloweeCount(dataset);
  int64_t me = by_followees[by_followees.size() / 2].second;
  std::printf("recommendations for uid %lld (follows %lld accounts):\n\n",
              static_cast<long long>(me),
              static_cast<long long>(
                  by_followees[by_followees.size() / 2].first));

  auto recs = engine.RecommendFolloweesOfFollowees(me, 5);
  if (!recs.ok()) {
    std::printf("query failed: %s\n", recs.status().ToString().c_str());
    return 1;
  }
  for (const auto& row : *recs) {
    std::printf("  follow uid %-8s (%s of your followees follow them)\n",
                row[0].ToString().c_str(), row[1].ToString().c_str());
  }

  // PROFILE the query: the plan tree Cypher's profiler would show.
  mbq::cypher::Params params{{"uid", mbq::common::Value::Int(me)},
                             {"n", mbq::common::Value::Int(5)}};
  auto profiled = engine.session().Run(
      mbq::core::NodestoreEngine::kRecommendVariantB, params);
  if (profiled.ok()) {
    std::printf("\nexecution plan (rows / db hits per operator):\n%s\n",
                profiled->profile.c_str());
  }

  // The three phrasings from the paper's discussion section.
  std::printf("phrasing comparison (same result, different plans):\n");
  for (auto [label, text] :
       {std::pair{"(a) var-length *2..2",
                  mbq::core::NodestoreEngine::kRecommendVariantA},
        std::pair{"(b) two explicit hops",
                  mbq::core::NodestoreEngine::kRecommendVariantB},
        std::pair{"(c) *1..2 minus depth-1",
                  mbq::core::NodestoreEngine::kRecommendVariantC}}) {
    auto r = engine.session().Run(text, params);
    if (r.ok()) {
      std::printf("  %-26s rows=%zu dbHits=%llu\n", label, r->rows.size(),
                  static_cast<unsigned long long>(r->db_hits));
    }
  }
  return 0;
}
