// End-to-end batch import pipeline, the workflow of the paper's §3.2:
// generate a crawl, export it to CSV (the "same source files" both
// systems consume), bulk-load each engine with its native mechanism —
// the record store's import tool and the bitmap store's load script —
// and compare totals, store sizes and cache behaviour.

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "bitmapstore/script_loader.h"
#include "nodestore/batch_importer.h"
#include "obs/trace.h"
#include "twitter/csv_export.h"
#include "twitter/loaders.h"

int main() {
  mbq::twitter::DatasetSpec spec;
  spec.num_users = 3000;
  spec.seed = 5;
  auto dataset = mbq::twitter::GenerateDataset(spec);

  auto dir = std::filesystem::temp_directory_path() /
             ("mbq_example_import_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  if (!mbq::twitter::ExportCsv(dataset, dir.string()).ok()) {
    std::printf("CSV export failed\n");
    return 1;
  }
  std::printf("exported %llu nodes / %llu edges as CSV to %s\n\n",
              static_cast<unsigned long long>(dataset.NumNodes()),
              static_cast<unsigned long long>(dataset.NumEdges()),
              dir.c_str());

  // Record store: import tool (no transactions, concurrent page writes,
  // indexes built afterwards).
  mbq::nodestore::GraphDbOptions ndb_options;
  ndb_options.wal_enabled = false;
  mbq::nodestore::GraphDb db(ndb_options);
  mbq::nodestore::BatchImporter importer(&db);
  mbq::obs::TraceLog ndb_trace;
  importer.SetTraceLog(&ndb_trace);
  importer.SetProgressCallback(
      [](const mbq::common::ImportProgress& p) {
        std::printf("  [nodestore] %-16s %8llu objects  %10.1f ms\n",
                    p.phase.c_str(),
                    static_cast<unsigned long long>(p.total_objects),
                    p.elapsed_millis);
      },
      20000);
  auto spec_files = mbq::twitter::BuildImportSpec(/*with_retweets=*/true);
  if (!importer.Run(spec_files, dir.string()).ok()) {
    std::printf("nodestore import failed\n");
    return 1;
  }
  std::printf("nodestore: %llu nodes, %llu rels, %.1f MiB on disk\n",
              static_cast<unsigned long long>(db.NumNodes()),
              static_cast<unsigned long long>(db.NumRels()),
              static_cast<double>(db.DiskSizeBytes()) / (1 << 20));
  std::printf("phase breakdown (wall time):\n%s\n", ndb_trace.ToText().c_str());

  // Bitmap store: load script.
  mbq::bitmapstore::Graph graph;
  mbq::bitmapstore::ScriptLoader loader(&graph);
  mbq::obs::TraceLog bm_trace;
  loader.SetTraceLog(&bm_trace);
  loader.SetProgressCallback(
      [](const mbq::common::ImportProgress& p) {
        std::printf("  [bitmap]    %-16s %8llu objects  %10.1f ms\n",
                    p.phase.c_str(),
                    static_cast<unsigned long long>(p.total_objects),
                    p.elapsed_millis);
      },
      20000);
  std::string script = mbq::twitter::BuildLoadScript(/*with_retweets=*/true);
  if (!loader.Execute(script, dir.string()).ok()) {
    std::printf("bitmap import failed\n");
    return 1;
  }
  std::printf("bitmapstore: %llu nodes, %llu edges, %.1f MiB on disk, "
              "%llu cache flush stalls\n",
              static_cast<unsigned long long>(graph.NumNodes()),
              static_cast<unsigned long long>(graph.NumEdges()),
              static_cast<double>(graph.DiskSizeBytes()) / (1 << 20),
              static_cast<unsigned long long>(
                  graph.cache_stats().flush_stalls));
  std::printf("phase breakdown (wall time):\n%s", bm_trace.ToText().c_str());

  std::filesystem::remove_all(dir);
  return 0;
}
