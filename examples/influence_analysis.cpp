// Influence analysis on a synthetic crawl: the paper's Q5 use case —
// "for targeting promotions a retail store (with a Twitter account)
// might be interested in the community of users whom they can
// influence." We find the most-mentioned account and split its
// mentioners into current influence (already followers) and potential
// influence (not yet following), on both engines.

#include <cstdio>

#include "core/bitmap_engine.h"
#include "core/nodestore_engine.h"
#include "core/workload.h"
#include "twitter/loaders.h"

using mbq::twitter::Dataset;

int main() {
  mbq::twitter::DatasetSpec spec;
  spec.num_users = 4000;
  spec.seed = 99;
  Dataset dataset = mbq::twitter::GenerateDataset(spec);
  std::printf("generated crawl: %llu users, %llu tweets, %llu mentions\n\n",
              static_cast<unsigned long long>(dataset.users.size()),
              static_cast<unsigned long long>(dataset.tweets.size()),
              static_cast<unsigned long long>(dataset.mentions.size()));

  mbq::nodestore::GraphDb db;
  auto nh = mbq::twitter::LoadIntoNodestore(dataset, &db);
  if (!nh.ok()) {
    std::printf("load failed: %s\n", nh.status().ToString().c_str());
    return 1;
  }
  mbq::bitmapstore::Graph graph;
  auto bh = mbq::twitter::LoadIntoBitmapstore(dataset, &graph);
  if (!bh.ok()) {
    std::printf("load failed: %s\n", bh.status().ToString().c_str());
    return 1;
  }
  mbq::core::NodestoreEngine ns(&db);
  mbq::core::BitmapEngine bm(&graph, *bh);

  auto by_mentions = mbq::core::UsersByMentionCount(dataset);
  int64_t brand = by_mentions.back().second;
  std::printf("most-mentioned account: uid %lld (%lld mentions)\n\n",
              static_cast<long long>(brand),
              static_cast<long long>(by_mentions.back().first));

  auto print_rows = [](const char* title, const mbq::core::ValueRows& rows) {
    std::printf("%s\n", title);
    for (const auto& row : rows) {
      std::printf("  uid %-8s mentioned the account %s times\n",
                  row[0].ToString().c_str(), row[1].ToString().c_str());
    }
    if (rows.empty()) std::printf("  (none)\n");
    std::printf("\n");
  };

  auto current = ns.CurrentInfluence(brand, 5);
  auto potential = ns.PotentialInfluence(brand, 5);
  if (!current.ok() || !potential.ok()) {
    std::printf("query failed\n");
    return 1;
  }
  print_rows("current influence (Q5.1, Cypher): top mentioners already "
             "following",
             *current);
  print_rows("potential influence (Q5.2, Cypher): top mentioners to win "
             "over",
             *potential);

  // Cross-check with the imperative engine.
  auto bm_potential = bm.PotentialInfluence(brand, 5);
  if (bm_potential.ok()) {
    bool same = *bm_potential == *potential;
    std::printf("bitmap-store navigation agrees with Cypher: %s\n",
                same ? "yes" : "NO");
  }
  return 0;
}
