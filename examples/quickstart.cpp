// Quickstart: build a tiny microblog graph in BOTH engines, run the same
// question against each — declaratively (mini-Cypher on the record
// store) and imperatively (navigation ops on the bitmap store) — and
// print the results. This mirrors the paper's §2.1 two-system example:
// "retrieve the tweets of a given user".

#include <cstdio>

#include "bitmapstore/graph.h"
#include "common/value.h"
#include "cypher/session.h"
#include "nodestore/graph_db.h"

using mbq::common::Value;

namespace {

void RunNodestore() {
  std::printf("=== record store (Neo4j-style), declarative ===\n");
  mbq::nodestore::GraphDb db;
  auto user = *db.Label("user");
  auto tweet = *db.Label("tweet");
  auto posts = *db.RelType("posts");
  auto uid = db.PropKey("uid");
  auto text = db.PropKey("text");

  auto alice = *db.CreateNode(user);
  (void)db.SetNodeProperty(alice, uid, Value::Int(531));
  auto t1 = *db.CreateNode(tweet);
  (void)db.SetNodeProperty(t1, text, Value::String("graphs all the way down"));
  auto t2 = *db.CreateNode(tweet);
  (void)db.SetNodeProperty(t2, text, Value::String("benchmarking is hard"));
  (void)db.CreateRelationship(posts, alice, t1);
  (void)db.CreateRelationship(posts, alice, t2);
  (void)db.CreateIndex(user, uid, /*unique=*/true);

  // The paper's example query, §2.1.
  mbq::cypher::CypherSession session(&db);
  auto result = session.Run(
      "MATCH (u:user {uid: $uid})-[:posts]->(t:tweet) RETURN t.text",
      {{"uid", Value::Int(531)}});
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return;
  }
  for (const auto& row : result->rows) {
    std::printf("  %s\n", row[0].value.AsString().c_str());
  }
  std::printf("  (db hits: %llu)\n\n",
              static_cast<unsigned long long>(result->db_hits));
}

void RunBitmapstore() {
  std::printf("=== bitmap store (Sparksee-style), imperative ===\n");
  mbq::bitmapstore::Graph g;
  auto user = *g.NewNodeType("user");
  auto tweet = *g.NewNodeType("tweet");
  auto posts = *g.NewEdgeType("posts");
  auto uid = *g.NewAttribute(user, "uid", mbq::common::ValueType::kInt,
                             mbq::bitmapstore::AttributeKind::kUnique);
  auto text = *g.NewAttribute(tweet, "text",
                              mbq::common::ValueType::kString,
                              mbq::bitmapstore::AttributeKind::kBasic);

  auto alice = *g.NewNode(user);
  (void)g.SetAttribute(alice, uid, Value::Int(531));
  auto t1 = *g.NewNode(tweet);
  (void)g.SetAttribute(t1, text, Value::String("graphs all the way down"));
  auto t2 = *g.NewNode(tweet);
  (void)g.SetAttribute(t2, text, Value::String("benchmarking is hard"));
  (void)g.NewEdge(posts, alice, t1);
  (void)g.NewEdge(posts, alice, t2);

  // The paper's Sparksee translation, §2.1: findAttribute, findObject,
  // then neighbors over the posts edge type.
  auto input = *g.FindObject(uid, Value::Int(531));
  auto user_tweets =
      *g.Neighbors(input, posts, mbq::bitmapstore::EdgesDirection::kOutgoing);
  user_tweets.ForEach([&](uint32_t oid) {
    std::printf("  %s\n", g.GetAttribute(oid, text)->AsString().c_str());
  });
  std::printf("  (neighbors calls: %llu)\n",
              static_cast<unsigned long long>(g.stats().neighbors_calls));
}

}  // namespace

int main() {
  RunNodestore();
  RunBitmapstore();
  return 0;
}
