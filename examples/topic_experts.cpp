// The derived query from the paper's §3.3 ("Deriving Other Queries"):
// "suppose user A is interested in a topic (represented by a hashtag H)
// and is looking for users to know more about the topic":
//   1. get the hashtags co-occurring with H                (Q3.2)
//   2. get the most retweeted tweets mentioning those tags (Q2.x)
//   3. get the original posters of those retweets
//   4. order the users by shortest-path distance from A    (Q6.1)
// The paper could not run this composition because its crawl lacked
// retweets edges; our generator supplies them, so the full pipeline runs.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "core/bitmap_engine.h"
#include "core/nodestore_engine.h"
#include "core/workload.h"
#include "twitter/loaders.h"

using mbq::bitmapstore::EdgesDirection;
using mbq::bitmapstore::Objects;
using mbq::bitmapstore::Oid;
using mbq::common::Value;

int main() {
  mbq::twitter::DatasetSpec spec;
  spec.num_users = 4000;
  spec.retweet_fraction = 0.25;  // the edge type the paper lacked
  spec.seed = 21;
  auto dataset = mbq::twitter::GenerateDataset(spec);

  mbq::bitmapstore::Graph graph;
  auto bh_or = mbq::twitter::LoadIntoBitmapstore(dataset, &graph);
  mbq::nodestore::GraphDb db;
  auto nh_or = mbq::twitter::LoadIntoNodestore(dataset, &db);
  if (!bh_or.ok() || !nh_or.ok()) {
    std::printf("load failed\n");
    return 1;
  }
  auto bh = *bh_or;
  mbq::core::BitmapEngine bitmap(&graph, bh);
  mbq::core::NodestoreEngine cypher(&db);

  auto tags_by_use = mbq::core::HashtagsByUse(dataset);
  std::string topic = tags_by_use.back().second;
  auto by_followees = mbq::core::UsersByFolloweeCount(dataset);
  int64_t me = by_followees[by_followees.size() / 2].second;
  std::printf("finding experts on #%s for uid %lld\n\n", topic.c_str(),
              static_cast<long long>(me));

  // Step 1 — co-occurring hashtags (Q3.2).
  auto related = bitmap.TopCoOccurringHashtags(topic, 3);
  if (!related.ok()) {
    std::printf("step 1 failed: %s\n", related.status().ToString().c_str());
    return 1;
  }
  std::set<std::string> topic_tags{topic};
  std::printf("step 1: related hashtags:");
  for (const auto& row : *related) {
    topic_tags.insert(row[0].AsString());
    std::printf(" #%s", row[0].AsString().c_str());
  }
  std::printf("\n");

  // Step 2 — tweets carrying those hashtags, ranked by retweet count.
  std::map<Oid, int64_t> retweet_counts;
  for (const std::string& tag : topic_tags) {
    auto h = graph.FindObject(bh.tag, Value::String(tag));
    if (!h.ok() || *h == mbq::bitmapstore::kInvalidOid) continue;
    auto tweets = graph.Neighbors(*h, bh.tags, EdgesDirection::kIngoing);
    if (!tweets.ok()) continue;
    tweets->ForEach([&](uint32_t tweet) {
      auto rts = graph.Degree(tweet, bh.retweets, EdgesDirection::kIngoing);
      if (rts.ok() && *rts > 0) {
        retweet_counts[tweet] = static_cast<int64_t>(*rts);
      }
    });
  }
  std::vector<std::pair<int64_t, Oid>> ranked;
  for (const auto& [tweet, count] : retweet_counts) {
    ranked.emplace_back(count, tweet);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  if (ranked.size() > 8) ranked.resize(8);
  std::printf("step 2: %zu on-topic tweets with retweets\n", ranked.size());

  // Step 3 — original posters of those retweeted tweets.
  std::set<Oid> experts;
  for (const auto& [count, tweet] : ranked) {
    auto posters = graph.Neighbors(tweet, bh.posts, EdgesDirection::kIngoing);
    if (!posters.ok()) continue;
    posters->ForEach([&](uint32_t poster) { experts.insert(poster); });
  }
  std::printf("step 3: %zu candidate experts\n", experts.size());

  // Step 4 — order by follows-distance from me (Q6.1 via Cypher).
  struct Expert {
    int64_t uid;
    int64_t distance;  // -1: not within 4 hops
  };
  std::vector<Expert> ordered;
  for (Oid expert : experts) {
    auto uid = graph.GetAttribute(expert, bh.uid);
    if (!uid.ok()) continue;
    auto dist = cypher.ShortestPathLength(me, uid->AsInt(), 4);
    ordered.push_back({uid->AsInt(), dist.ok() ? *dist : -1});
  }
  std::sort(ordered.begin(), ordered.end(), [](const Expert& a,
                                               const Expert& b) {
    int64_t da = a.distance < 0 ? 1000 : a.distance;
    int64_t db_ = b.distance < 0 ? 1000 : b.distance;
    return da != db_ ? da < db_ : a.uid < b.uid;
  });
  std::printf("step 4: experts ordered by social distance:\n");
  for (const Expert& e : ordered) {
    if (e.distance >= 0) {
      std::printf("  uid %-8lld %lld hop(s) away\n",
                  static_cast<long long>(e.uid),
                  static_cast<long long>(e.distance));
    } else {
      std::printf("  uid %-8lld outside your 4-hop community\n",
                  static_cast<long long>(e.uid));
    }
  }
  return 0;
}
