#!/usr/bin/env bash
# Boots a local mbqd cluster on loopback — N shard daemons plus one
# aggregator, all on ephemeral ports — then runs `mbqd --verify` through
# the aggregator: every Table 2 navigation call, fixed anchors plus the
# randomized differential call set, must match a single-process engine
# on the same dataset bit-for-bit (after canonical row sorting). This is
# the `cluster-smoke` CMake target and part of the sanitizer gate.
#
# Usage:
#   scripts/cluster_local.sh <mbqd-binary> [shards] [users] [partition]
#
#   shards     shard daemon count (default 2)
#   users      dataset size (default 800; seed is fixed at 42)
#   partition  hash | range (default hash)
#
# Every daemon's stderr is kept in a temp log and dumped on failure.
# Shards get MBQ_STATS_PORT= cleared so parallel runs never fight over a
# stats port; pass MBQ_CLUSTER_STATS=1 to give each shard --serve on an
# ephemeral port instead (ports are printed in the logs).
set -eu

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <mbqd-binary> [shards] [users] [partition]" >&2
  exit 2
fi

mbqd="$1"
shards="${2:-2}"
users="${3:-800}"
partition="${4:-hash}"
seed=42

if [ ! -x "$mbqd" ]; then
  echo "cluster-local: $mbqd is not an executable" >&2
  exit 2
fi
if [ "$shards" -lt 1 ]; then
  echo "cluster-local: need at least 1 shard" >&2
  exit 2
fi

logdir="$(mktemp -d /tmp/mbq_cluster.XXXXXX)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$logdir"
}
trap cleanup EXIT

dump_logs() {
  for f in "$logdir"/*.log; do
    echo "---- $f" >&2
    cat "$f" >&2
  done
}

serve_flag=""
if [ "${MBQ_CLUSTER_STATS:-0}" = "1" ]; then
  serve_flag="--serve"
fi

# Start the shards on ephemeral ports; grep each one's resolved port out
# of its startup line ("mbqd: shard I listening on 127.0.0.1:PORT").
shard_args=()
for i in $(seq 0 $((shards - 1))); do
  log="$logdir/shard$i.log"
  # shellcheck disable=SC2086
  MBQ_STATS_PORT= "$mbqd" --port=0 --shards="$shards" --shard-id="$i" \
    --users="$users" --seed="$seed" --partition="$partition" \
    $serve_flag 2>"$log" &
  pids+=($!)
done

for i in $(seq 0 $((shards - 1))); do
  log="$logdir/shard$i.log"
  port=""
  for _ in $(seq 1 300); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log" | head -n 1)"
    [ -n "$port" ] && break
    if ! kill -0 "${pids[$i]}" 2>/dev/null; then
      echo "cluster-local: shard $i exited early" >&2
      dump_logs
      exit 1
    fi
    sleep 0.2
  done
  if [ -z "$port" ]; then
    echo "cluster-local: shard $i did not come up" >&2
    dump_logs
    exit 1
  fi
  shard_args+=("--shard=127.0.0.1:$port")
done

# Aggregator in front of the shards, also on an ephemeral port.
agg_log="$logdir/aggregator.log"
MBQ_STATS_PORT= "$mbqd" --aggregate --port=0 "${shard_args[@]}" \
  $serve_flag 2>"$agg_log" &
pids+=($!)

agg_port=""
for _ in $(seq 1 300); do
  agg_port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$agg_log" | head -n 1)"
  [ -n "$agg_port" ] && break
  if ! kill -0 "${pids[$shards]}" 2>/dev/null; then
    echo "cluster-local: aggregator exited early" >&2
    dump_logs
    exit 1
  fi
  sleep 0.2
done
if [ -z "$agg_port" ]; then
  echo "cluster-local: aggregator did not come up" >&2
  dump_logs
  exit 1
fi

# Probe, then the full differential verify through the aggregator.
if ! "$mbqd" --probe="127.0.0.1:$agg_port"; then
  echo "cluster-local: probe failed" >&2
  dump_logs
  exit 1
fi
if ! "$mbqd" --verify --users="$users" --seed="$seed" \
    --shard="127.0.0.1:$agg_port" --calls=30; then
  echo "cluster-local: verify through the aggregator FAILED" >&2
  dump_logs
  exit 1
fi

# Also verify against the shards directly — exercises the client-side
# fan-out path without the extra hop.
if ! "$mbqd" --verify --users="$users" --seed="$seed" \
    "${shard_args[@]}" --calls=10; then
  echo "cluster-local: verify against the shards directly FAILED" >&2
  dump_logs
  exit 1
fi

echo "cluster-local: $shards shards + aggregator agree with the single-process engine (users=$users, $partition partition)"
