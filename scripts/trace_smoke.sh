#!/usr/bin/env bash
# Boots a 2-shard + aggregator loopback cluster with stats servers and
# forced slow-query capture, drives traced navigation calls through the
# aggregator, then asserts the distributed-tracing plane end to end:
#
#   - mbqtrace stitches /trace.json from all three daemons into one
#     merged Chrome trace whose spans share a single trace id and come
#     from at least three distinct processes (aggregator + both shards);
#   - the aggregator's /slow flight recorder carries a per-shard timing
#     breakdown (queue/execute/serialize/network) for remote queries;
#   - the /healthz liveness probe answers on a stats port (exercised via
#     `mbqd --probe` against the aggregator's stats server).
#
# This is the `trace-smoke` CMake target and part of the sanitizer gate.
#
# Usage:
#   scripts/trace_smoke.sh <mbqd-binary> <mbqtrace-binary> <mbqtop-binary>
set -eu

if [ "$#" -lt 3 ]; then
  echo "usage: $0 <mbqd-binary> <mbqtrace-binary> <mbqtop-binary>" >&2
  exit 2
fi

mbqd="$1"
mbqtrace="$2"
mbqtop="$3"
shards=2
users=400
seed=42

for bin in "$mbqd" "$mbqtrace" "$mbqtop"; do
  if [ ! -x "$bin" ]; then
    echo "trace-smoke: $bin is not an executable" >&2
    exit 2
  fi
done

logdir="$(mktemp -d /tmp/mbq_trace.XXXXXX)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$logdir"
}
trap cleanup EXIT

dump_logs() {
  for f in "$logdir"/*.log; do
    echo "---- $f" >&2
    cat "$f" >&2
  done
}

# Every daemon: always-sample tracing, capture every remote query in the
# flight recorder, stats server on an ephemeral port.
export MBQ_TRACE_SAMPLE=1
export MBQ_SLOW_QUERY_MILLIS=0

rpc_port_of() {
  sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$1" | head -n 1
}
stats_port_of() {
  sed -n 's|.*stats server listening on http://127\.0\.0\.1:\([0-9]*\)/.*|\1|p' \
    "$1" | head -n 1
}
await_port() {  # await_port <log> <pid> <extractor> <what>
  local port=""
  for _ in $(seq 1 300); do
    port="$("$3" "$1")"
    [ -n "$port" ] && break
    if ! kill -0 "$2" 2>/dev/null; then
      echo "trace-smoke: $4 exited early" >&2
      dump_logs
      exit 1
    fi
    sleep 0.2
  done
  if [ -z "$port" ]; then
    echo "trace-smoke: $4 did not come up" >&2
    dump_logs
    exit 1
  fi
  printf '%s' "$port"
}

shard_args=()
stats_args=()
for i in $(seq 0 $((shards - 1))); do
  log="$logdir/shard$i.log"
  MBQ_STATS_PORT= "$mbqd" --port=0 --shards="$shards" --shard-id="$i" \
    --users="$users" --seed="$seed" --serve 2>"$log" &
  pids+=($!)
done
for i in $(seq 0 $((shards - 1))); do
  log="$logdir/shard$i.log"
  port="$(await_port "$log" "${pids[$i]}" rpc_port_of "shard $i")"
  stats="$(await_port "$log" "${pids[$i]}" stats_port_of "shard $i stats")"
  shard_args+=("--shard=127.0.0.1:$port")
  stats_args+=("--from=127.0.0.1:$stats")
done

agg_log="$logdir/aggregator.log"
MBQ_STATS_PORT= "$mbqd" --aggregate --port=0 "${shard_args[@]}" \
  --serve 2>"$agg_log" &
pids+=($!)
agg_port="$(await_port "$agg_log" "${pids[$shards]}" rpc_port_of aggregator)"
agg_stats="$(await_port "$agg_log" "${pids[$shards]}" stats_port_of \
  "aggregator stats")"

# /healthz: the probe against a stats port must answer from the liveness
# endpoint and name the role.
health="$("$mbqd" --probe="127.0.0.1:$agg_stats")"
case "$health" in
  *'"status": "ok"'*'"role": "aggregator"'*) ;;
  *)
    echo "trace-smoke: /healthz probe returned: $health" >&2
    dump_logs
    exit 1
    ;;
esac

# Drive traced calls through the aggregator; every one mints a sampled
# root context client-side and fans out across both shards.
if ! "$mbqd" --verify --users="$users" --seed="$seed" \
    --shard="127.0.0.1:$agg_port" --calls=10 2>"$logdir/verify.log"; then
  echo "trace-smoke: traced verify drive FAILED" >&2
  dump_logs
  exit 1
fi

# Stitch: one merged Chrome trace with spans from aggregator + both
# shards under a single trace id.
merged="$logdir/merged_trace.json"
if ! "$mbqtrace" "${stats_args[@]}" --from="127.0.0.1:$agg_stats" \
    --require-processes=3 --out="$merged"; then
  echo "trace-smoke: mbqtrace stitch FAILED" >&2
  dump_logs
  exit 1
fi
ids="$(grep -o '"trace_id": "[0-9a-f]*"' "$merged" | sort -u | wc -l)"
if [ "$ids" -ne 1 ]; then
  echo "trace-smoke: merged trace has $ids distinct trace ids, want 1" >&2
  head -n 20 "$merged" >&2
  exit 1
fi
for role in aggregator shard-0 shard-1; do
  if ! grep -q "\"name\": \"$role\"" "$merged"; then
    echo "trace-smoke: merged trace is missing process \"$role\"" >&2
    exit 1
  fi
done

# Per-shard latency attribution: the aggregator's flight recorder must
# show a per-shard breakdown for its (forced-slow) remote queries, and
# the rpc.shard.* histograms must have samples.
slow="$("$mbqtop" --get=/slow --port="$agg_stats")"
case "$slow" in
  *'shard 0:'*queue=*execute=*) ;;
  *)
    echo "trace-smoke: aggregator /slow lacks a per-shard breakdown" >&2
    printf '%s\n' "$slow" | head -n 10 >&2
    dump_logs
    exit 1
    ;;
esac
metrics="$("$mbqtop" --json --port="$agg_stats")"
case "$metrics" in
  *'"shards": [{"shard": 0'*) ;;
  *)
    echo "trace-smoke: mbqtop --json shows no per-shard latency rows" >&2
    printf '%s\n' "$metrics" >&2
    exit 1
    ;;
esac

echo "trace-smoke: one stitched trace across aggregator + $shards shards;" \
  "/slow shows per-shard timing; /healthz and mbqtop --json answer"
