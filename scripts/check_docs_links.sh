#!/usr/bin/env bash
# Doc hygiene checks:
#   1. Every relative markdown link in the top-level *.md files and
#      docs/*.md resolves to an existing file.
#   2. Every metric name literal registered in src/ appears in
#      docs/OBSERVABILITY.md (the catalogue must stay complete).
#   3. Every RPC message type in src/rpc/messages.h appears in
#      docs/CLUSTER.md (the wire-protocol spec must stay complete).
#
# Exits non-zero listing every violation. Run from anywhere:
#   scripts/check_docs_links.sh
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

failures=0

# ---- 1. markdown link targets exist -------------------------------------
# Matches [text](target) where target is a relative path (skip http(s),
# mailto and pure #anchors); strips any #fragment before the existence
# check.
for doc in *.md docs/*.md; do
  [ -f "$doc" ] || continue
  doc_dir="$(dirname "$doc")"
  # shellcheck disable=SC2013
  for target in $(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\(//; s/\)$//'); do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$doc_dir/$path" ]; then
      echo "BROKEN LINK: $doc -> $target"
      failures=$((failures + 1))
    fi
  done
done

# ---- 2. every registered metric name is documented ----------------------
catalogue="docs/OBSERVABILITY.md"
if [ ! -f "$catalogue" ]; then
  echo "MISSING: $catalogue"
  failures=$((failures + 1))
else
  # Metric names are always written as full string literals at the
  # registration site (GetCounter / GetHistogram / sink->Gauge), so a
  # grep over src/ finds the complete set. Ranked-mutex site names
  # ("obs.registry", ...) share the dotted shape but always appear on
  # the same line as their LockRank, so those lines are excluded.
  # Dynamic families ("rpc.shard." + i + ".latency") leave a literal
  # ending in a dot; the catalogue must spell the family out starting
  # with that prefix (e.g. `rpc.shard.<i>.latency`).
  for name in $(grep -rhE '"(nodestore|bitmapstore|cypher|cache|check|obs|exec|rpc|trace|driver|write|wal|lockrank)\.[a-z0-9_.]+"' src/ |
                grep -v 'LockRank::' |
                grep -oE '"(nodestore|bitmapstore|cypher|cache|check|obs|exec|rpc|trace|driver|write|wal|lockrank)\.[a-z0-9_.]+"' |
                tr -d '"' | sort -u); do
    case "$name" in
      *.) pattern="\`$name" ;;
      *) pattern="\`$name\`" ;;
    esac
    if ! grep -q -F "$pattern" "$catalogue"; then
      echo "UNDOCUMENTED METRIC: $name (add it to $catalogue)"
      failures=$((failures + 1))
    fi
  done
fi

# ---- 3. every RPC message type is documented ----------------------------
spec="docs/CLUSTER.md"
messages="src/rpc/messages.h"
if [ -f "$messages" ]; then
  if [ ! -f "$spec" ]; then
    echo "MISSING: $spec"
    failures=$((failures + 1))
  else
    # Enum entries are declared one per line as `kName = N,`; the spec
    # must name each message type verbatim.
    for name in $(grep -oE '^  k[A-Za-z]+ = [0-9]+,' "$messages" |
                  sed -E 's/^  (k[A-Za-z]+) = .*/\1/' | sort -u); do
      if ! grep -q -F "\`$name\`" "$spec"; then
        echo "UNDOCUMENTED RPC MESSAGE: $name (add it to $spec)"
        failures=$((failures + 1))
      fi
    done
  fi
fi

if [ "$failures" -ne 0 ]; then
  echo "check_docs_links: $failures problem(s) found"
  exit 1
fi
echo "check_docs_links: OK"
