#!/usr/bin/env bash
# Runs clang-tidy (config in .clang-tidy) over the statically-gated
# directories using the CMake compilation database.
#
#   scripts/run_clang_tidy.sh [build-dir] [dir ...]
#
# build-dir defaults to ./build and must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default preset does this).
# Additional arguments narrow the scan to specific source directories;
# the default gate is src/cache and src/cypher (docs/STATIC_ANALYSIS.md).
# Exits non-zero on any diagnostic (WarningsAsErrors: '*').
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true
GATED_DIRS=("$@")
if [ "${#GATED_DIRS[@]}" -eq 0 ]; then
  GATED_DIRS=(src/cache src/cypher)
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found; skipping (install LLVM to enable)"
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: $BUILD_DIR/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

FILES=()
for dir in "${GATED_DIRS[@]}"; do
  while IFS= read -r f; do
    FILES+=("$f")
  done < <(find "$dir" -name '*.cc' | sort)
done
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_clang_tidy.sh: no sources under: ${GATED_DIRS[*]}" >&2
  exit 2
fi

echo "clang-tidy over ${#FILES[@]} files (${GATED_DIRS[*]})"
STATUS=0
for f in "${FILES[@]}"; do
  clang-tidy -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
if [ "$STATUS" -ne 0 ]; then
  echo "run_clang_tidy.sh: diagnostics found" >&2
fi
exit "$STATUS"
