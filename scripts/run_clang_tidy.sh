#!/usr/bin/env bash
# Runs clang-tidy (config in .clang-tidy) over the statically-gated
# directories using the CMake compilation database.
#
#   scripts/run_clang_tidy.sh [build-dir] [dir ...]
#
# build-dir defaults to ./build and must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default preset does this).
# Additional arguments narrow the scan to specific source directories;
# the default gate is src/cache and src/cypher (docs/STATIC_ANALYSIS.md).
# Exits non-zero on any diagnostic (WarningsAsErrors: '*').
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true
GATED_DIRS=("$@")
if [ "${#GATED_DIRS[@]}" -eq 0 ]; then
  GATED_DIRS=(src/cache src/cypher)
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found; skipping (install LLVM to enable)"
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: $BUILD_DIR/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# A compilation database older than any CMakeLists.txt lists stale flags
# (or misses new targets entirely), and clang-tidy would silently check
# against the old build. Re-run the configure step to refresh it.
if [ -n "$(find . -name CMakeLists.txt -not -path './build*' \
             -newer "$BUILD_DIR/compile_commands.json" -print -quit)" ]; then
  echo "run_clang_tidy.sh: compile_commands.json older than CMakeLists.txt;" \
       "re-configuring $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi

FILES=()
for dir in "${GATED_DIRS[@]}"; do
  while IFS= read -r f; do
    FILES+=("$f")
  done < <(find "$dir" -name '*.cc' | sort)
done
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_clang_tidy.sh: no sources under: ${GATED_DIRS[*]}" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || echo 2)"
echo "clang-tidy over ${#FILES[@]} files (${GATED_DIRS[*]}), -j$JOBS"
STATUS=0
printf '%s\0' "${FILES[@]}" |
  xargs -0 -n 1 -P "$JOBS" clang-tidy -p "$BUILD_DIR" --quiet || STATUS=1
if [ "$STATUS" -ne 0 ]; then
  echo "run_clang_tidy.sh: diagnostics found" >&2
fi
exit "$STATUS"
