#!/usr/bin/env bash
# Smoke-runs the open-loop load driver: a 2-second drive of each
# built-in suite (tao, ldbc) on a tiny dataset, asserting the exported
# metrics JSON carries non-empty driver.* histograms — the fast
# end-to-end check that the driver plane is wired through (mix parsing
# -> param generation -> open-loop clients -> histogram merge ->
# metrics export). This is the `driver-smoke` CMake target and part of
# the sanitizer gate.
#
# With an mbqd binary as the second argument, additionally boots a
# 2-shard + aggregator topology on loopback (same idiom as
# cluster_local.sh) and drives the tao suite through
# EngineKind::kRemote with --verify, asserting the remote run reaches
# the same all-agree verdict as the local one.
#
# Usage:
#   scripts/driver_smoke.sh <mbqbench-binary> [mbqd-binary]
set -eu

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <mbqbench-binary> [mbqd-binary]" >&2
  exit 2
fi

mbqbench="$1"
mbqd="${2:-}"
users=600
seed=42

if [ ! -x "$mbqbench" ]; then
  echo "driver-smoke: $mbqbench is not an executable" >&2
  exit 2
fi

logdir="$(mktemp -d /tmp/mbq_driver_smoke.XXXXXX)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$logdir"
}
trap cleanup EXIT

# Asserts the metrics JSON has a driver histogram with a non-zero count.
# Exported lines look like:
#   {"name": "driver.latency_micros", ..., "count": N, ...}
check_histogram() {
  out="$1"
  metric="$2"
  line="$(grep "\"$metric\"" "$out" || true)"
  if [ -z "$line" ]; then
    echo "driver-smoke: histogram $metric missing from $out" >&2
    return 1
  fi
  count="$(printf '%s' "$line" | sed -n 's/.*"count": \([0-9][0-9]*\).*/\1/p')"
  if [ -z "$count" ] || [ "$count" -eq 0 ]; then
    echo "driver-smoke: histogram $metric is empty: $line" >&2
    return 1
  fi
  echo "driver-smoke: $metric count = $count"
}

fail=0
for suite in tao ldbc; do
  out="$logdir/$suite.json"
  if ! "$mbqbench" --suite="$suite" --rate=400 --duration=2 --clients=2 \
      --users="$users" --seed="$seed" --metrics-out="$out" \
      >"$logdir/$suite.out" 2>"$logdir/$suite.err"; then
    echo "driver-smoke: suite $suite run failed" >&2
    cat "$logdir/$suite.err" >&2
    exit 1
  fi
  check_histogram "$out" "driver.latency_micros" || fail=1
  # One per-template histogram per suite proves the breakdown is wired.
  case "$suite" in
    tao)  check_histogram "$out" "driver.assoc_range.latency_micros" || fail=1 ;;
    ldbc) check_histogram "$out" "driver.followees.latency_micros" || fail=1 ;;
  esac
done
if [ "$fail" -ne 0 ]; then
  echo "driver-smoke: FAILED" >&2
  exit 1
fi

if [ -z "$mbqd" ]; then
  echo "driver-smoke: OK (local engine; pass an mbqd binary to also smoke the remote path)"
  exit 0
fi
if [ ! -x "$mbqd" ]; then
  echo "driver-smoke: $mbqd is not an executable" >&2
  exit 2
fi

# --- remote topology: 2 shards + aggregator, ephemeral ports ---------
shards=2
shard_args=()
for i in $(seq 0 $((shards - 1))); do
  log="$logdir/shard$i.log"
  MBQ_STATS_PORT= "$mbqd" --port=0 --shards="$shards" --shard-id="$i" \
    --users="$users" --seed="$seed" 2>"$log" &
  pids+=($!)
done
for i in $(seq 0 $((shards - 1))); do
  log="$logdir/shard$i.log"
  port=""
  for _ in $(seq 1 300); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log" | head -n 1)"
    [ -n "$port" ] && break
    if ! kill -0 "${pids[$i]}" 2>/dev/null; then
      echo "driver-smoke: shard $i exited early" >&2
      cat "$log" >&2
      exit 1
    fi
    sleep 0.2
  done
  if [ -z "$port" ]; then
    echo "driver-smoke: shard $i did not come up" >&2
    exit 1
  fi
  shard_args+=("--shard=127.0.0.1:$port")
done

agg_log="$logdir/aggregator.log"
MBQ_STATS_PORT= "$mbqd" --aggregate --port=0 "${shard_args[@]}" \
  2>"$agg_log" &
pids+=($!)
agg_port=""
for _ in $(seq 1 300); do
  agg_port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$agg_log" | head -n 1)"
  [ -n "$agg_port" ] && break
  if ! kill -0 "${pids[$shards]}" 2>/dev/null; then
    echo "driver-smoke: aggregator exited early" >&2
    cat "$agg_log" >&2
    exit 1
  fi
  sleep 0.2
done
if [ -z "$agg_port" ]; then
  echo "driver-smoke: aggregator did not come up" >&2
  exit 1
fi

out="$logdir/remote.json"
if ! "$mbqbench" --suite=tao --rate=200 --duration=2 --clients=2 \
    --users="$users" --seed="$seed" --shard="127.0.0.1:$agg_port" \
    --verify=40 --metrics-out="$out" \
    >"$logdir/remote.out" 2>"$logdir/remote.err"; then
  echo "driver-smoke: remote drive/verify FAILED" >&2
  cat "$logdir/remote.err" >&2
  exit 1
fi
check_histogram "$out" "driver.latency_micros" || exit 1
echo "driver-smoke: OK (local suites + remote topology verified)"
