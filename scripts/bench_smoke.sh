#!/usr/bin/env bash
# Smoke-runs one figure-4 bench with the result cache enabled and asserts
# that the exported metrics JSON reports actual cache traffic — the fast
# end-to-end check that the caching layer is wired through the bench
# harness (flag parsing -> engine factory -> session -> metrics export).
#
# Usage:
#   scripts/bench_smoke.sh <bench-binary> [metrics-out.json]
#
# The dataset is kept tiny (300 users, 2 measured runs) so the whole
# smoke finishes in seconds.
set -eu

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <bench-binary> [metrics-out.json]" >&2
  exit 2
fi

bench="$1"
out="${2:-$(mktemp /tmp/mbq_bench_smoke.XXXXXX.json)}"

if [ ! -x "$bench" ]; then
  echo "bench-smoke: $bench is not an executable" >&2
  exit 2
fi

MBQ_BENCH_USERS=300 MBQ_BENCH_RUNS=2 \
  "$bench" --result-cache on --adj-cache on --metrics-out "$out" >/dev/null

fail=0
for metric in cache.result.hits cache.result.misses; do
  # Exported lines look like: {"name": "cache.result.hits", ..., "value": N}
  line="$(grep "\"$metric\"" "$out" || true)"
  if [ -z "$line" ]; then
    echo "bench-smoke: metric $metric missing from $out" >&2
    fail=1
    continue
  fi
  value="$(printf '%s' "$line" | sed -n 's/.*"value": \([0-9][0-9]*\).*/\1/p')"
  if [ -z "$value" ] || [ "$value" -eq 0 ]; then
    echo "bench-smoke: metric $metric is zero or unparsable: $line" >&2
    fail=1
  else
    echo "bench-smoke: $metric = $value"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "bench-smoke: FAILED (metrics in $out)" >&2
  exit 1
fi
echo "bench-smoke: OK (metrics in $out)"
