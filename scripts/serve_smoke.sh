#!/usr/bin/env bash
# Smoke-tests the embedded stats server end to end: starts a bench with
# --serve on an ephemeral port, waits for the workload to finish, then
# fetches every endpoint and asserts the payloads are live — HTTP 200s,
# Prometheus exposition with the server's own request counter, a JSON
# snapshot, a non-empty slow-query flight recorder (the threshold is
# forced to 0 so every query is captured) and a Chrome trace.
#
# Usage:
#   scripts/serve_smoke.sh <bench-binary> [mbqtop-binary]
#
# Endpoints are fetched with curl when available, else with mbqtop --get
# (the second argument), so the smoke also works on curl-less machines.
set -eu

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <bench-binary> [mbqtop-binary]" >&2
  exit 2
fi

bench="$1"
mbqtop="${2:-}"

if [ ! -x "$bench" ]; then
  echo "serve-smoke: $bench is not an executable" >&2
  exit 2
fi

log="$(mktemp /tmp/mbq_serve_smoke.XXXXXX.log)"
bench_pid=""
cleanup() {
  if [ -n "$bench_pid" ]; then
    kill "$bench_pid" 2>/dev/null || true
    wait "$bench_pid" 2>/dev/null || true
  fi
  rm -f "$log"
}
trap cleanup EXIT

# Tiny dataset, capture-everything threshold, ephemeral port.
MBQ_BENCH_USERS=300 MBQ_BENCH_RUNS=2 MBQ_SLOW_QUERY_MILLIS=0 \
  "$bench" --serve >/dev/null 2>"$log" &
bench_pid=$!

# The bench logs the resolved port, then serves forever once the workload
# is done. Wait for both lines (the workload takes a few seconds).
port=""
for _ in $(seq 1 600); do
  if ! kill -0 "$bench_pid" 2>/dev/null; then
    echo "serve-smoke: bench exited early" >&2
    cat "$log" >&2
    exit 1
  fi
  if [ -z "$port" ]; then
    port="$(sed -n 's#.*stats server listening on http://127\.0\.0\.1:\([0-9]*\)/.*#\1#p' "$log" | head -n 1)"
  fi
  if [ -n "$port" ] && grep -q "workload done" "$log"; then
    break
  fi
  sleep 0.2
done
if [ -z "$port" ] || ! grep -q "workload done" "$log"; then
  echo "serve-smoke: server did not come up / workload did not finish" >&2
  cat "$log" >&2
  exit 1
fi

fetch() {
  if command -v curl >/dev/null 2>&1; then
    curl -sf "http://127.0.0.1:$port$1"
  elif [ -n "$mbqtop" ] && [ -x "$mbqtop" ]; then
    "$mbqtop" --port="$port" --get="$1"
  else
    echo "serve-smoke: neither curl nor mbqtop available" >&2
    exit 2
  fi
}

fail=0
expect() {  # expect <path> <required-substring> <label>
  body="$(fetch "$1")" || { echo "serve-smoke: GET $1 failed" >&2; fail=1; return; }
  if ! printf '%s' "$body" | grep -q "$2"; then
    echo "serve-smoke: $3 — $1 is missing '$2'" >&2
    fail=1
  fi
}

expect /              "/metrics"             "index lists endpoints"
expect /metrics       "obs_http_requests_total" "Prometheus exposition is live"
expect /metrics.json  '"cypher.queries"'     "JSON snapshot has query counters"
expect /queries       '"started"'            "active-query table answers"
expect /trace         '"traceEvents"'        "trace export answers"

# With threshold 0 every query the bench ran was captured.
slow="$(fetch /slow)"
captured="$(printf '%s' "$slow" | sed -n 's/.*"captured": \([0-9][0-9]*\).*/\1/p')"
if [ -z "$captured" ] || [ "$captured" -eq 0 ]; then
  echo "serve-smoke: flight recorder is empty (captured=${captured:-?})" >&2
  fail=1
fi

# Unknown paths must 404, not crash the server.
if fetch /no-such-endpoint >/dev/null 2>&1; then
  if command -v curl >/dev/null 2>&1; then
    echo "serve-smoke: /no-such-endpoint did not 404" >&2
    fail=1
  fi
fi
expect /metrics "obs_http" "server still answering after 404"

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "serve-smoke: all endpoints live on port $port ($captured slow queries captured)"
