#!/usr/bin/env bash
# Smoke-runs the live write path end to end: a 2-second drive of the
# built-in `churn` suite (90% reads / 10% writes) with --verify and a
# real WAL, asserting
#   - the differential check agrees on every interleaved read AND write
#     (the churn agreement property, docs/WRITES.md),
#   - the exported metrics JSON carries non-zero write.* and wal.*
#     counters — proof the commits actually flowed through the delta
#     store and group-commit log rather than short-circuiting,
#   - checkdb's write-path section passes on a clean store and catches
#     an injected wal-tail fault.
# This is the `write-smoke` CMake target.
#
# Usage:
#   scripts/write_smoke.sh <mbqbench-binary> <checkdb-binary>
set -eu

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <mbqbench-binary> <checkdb-binary>" >&2
  exit 2
fi

mbqbench="$1"
checkdb="$2"
users=600
seed=42

for bin in "$mbqbench" "$checkdb"; do
  if [ ! -x "$bin" ]; then
    echo "write-smoke: $bin is not an executable" >&2
    exit 2
  fi
done

logdir="$(mktemp -d /tmp/mbq_write_smoke.XXXXXX)"
cleanup() { rm -rf "$logdir"; }
trap cleanup EXIT

# Asserts a counter line in the metrics JSON has a non-zero value.
# Exported lines look like:
#   {"name": "write.commits", "unit": "batches", "value": N}
check_counter() {
  out="$1"
  metric="$2"
  line="$(grep "\"$metric\"" "$out" || true)"
  if [ -z "$line" ]; then
    echo "write-smoke: counter $metric missing from $out" >&2
    return 1
  fi
  value="$(printf '%s' "$line" | sed -n 's/.*"value": \([0-9][0-9]*\).*/\1/p')"
  if [ -z "$value" ] || [ "$value" -eq 0 ]; then
    echo "write-smoke: counter $metric is zero: $line" >&2
    return 1
  fi
  echo "write-smoke: $metric = $value"
}

out="$logdir/churn.json"
for engine in nodestore bitmap; do
  if ! "$mbqbench" --suite=churn --engine="$engine" --rate=400 --duration=2 \
      --clients=2 --users="$users" --seed="$seed" --verify=150 \
      --wal-dir="$logdir/wal-$engine" --metrics-out="$out" \
      >"$logdir/churn-$engine.out" 2>"$logdir/churn-$engine.err"; then
    echo "write-smoke: churn drive/verify on $engine FAILED" >&2
    cat "$logdir/churn-$engine.err" >&2
    exit 1
  fi
  echo "write-smoke: churn verify OK on $engine"
done

fail=0
for metric in write.commits write.ops write.ops.post_tweet write.ops.follow \
              write.ops.unfollow write.ops.add_mention wal.records \
              wal.fsyncs; do
  check_counter "$out" "$metric" || fail=1
done
if [ "$fail" -ne 0 ]; then
  echo "write-smoke: FAILED" >&2
  exit 1
fi

if ! "$checkdb" --users=200 >"$logdir/checkdb.out" 2>&1; then
  echo "write-smoke: checkdb on a clean store FAILED" >&2
  cat "$logdir/checkdb.out" >&2
  exit 1
fi
if "$checkdb" --users=200 --corrupt=wal-tail >"$logdir/checkdb-tail.out" 2>&1
then
  echo "write-smoke: checkdb missed the injected wal-tail fault" >&2
  cat "$logdir/checkdb-tail.out" >&2
  exit 1
fi
echo "write-smoke: checkdb write-path section OK (clean passes, wal-tail caught)"
echo "write-smoke: OK"
