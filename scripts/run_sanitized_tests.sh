#!/usr/bin/env bash
# Builds and runs the test suite under ThreadSanitizer and (optionally)
# AddressSanitizer / UndefinedBehaviorSanitizer. The TSan pass is the
# acceptance gate for the parallel execution work: the concurrency
# harness must come back clean. The UBSan pass runs the full suite with
# recovery disabled, gating the static-analysis work
# (docs/STATIC_ANALYSIS.md).
#
# Usage:
#   scripts/run_sanitized_tests.sh               # TSan, concurrency-focused tests
#   scripts/run_sanitized_tests.sh --all         # TSan, full suite
#   scripts/run_sanitized_tests.sh --asan        # also run an ASan pass
#   scripts/run_sanitized_tests.sh --ubsan       # also run a UBSan pass
#
# The focused TSan pass runs the tests that exercise shared state
# (ThreadPool, concurrency harness, agreement sweep, cypher runtime, the
# query registry / flight recorder, the stats server, and the RPC /
# cluster plane with its concurrent clients) with CYPHER_THREADS=4 so
# the morsel-parallel paths engage. A full-suite TSan run works too but
# is several times slower. The TSan pass finishes with the cluster,
# driver and trace smokes: real mbqd shard + aggregator processes on
# loopback (scripts/cluster_local.sh, scripts/trace_smoke.sh), all
# running under the sanitizer.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

run_all=0
run_asan=0
run_ubsan=0
for arg in "$@"; do
  case "$arg" in
    --all) run_all=1 ;;
    --asan) run_asan=1 ;;
    --ubsan) run_ubsan=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"
focused='Exec|Concurrency|Agreement|Cypher|Cache|Introspect|Httpd|SlowQuery|Rpc|Framing|Messages|Cluster|Partitioner|Write|Wal|LockRank|Trace'

echo "== ThreadSanitizer build (build-tsan/) =="
cmake -B build-tsan -S . -DSANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"

echo "== ThreadSanitizer tests (CYPHER_THREADS=4) =="
if [ "$run_all" -eq 1 ]; then
  (cd build-tsan && CYPHER_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    ctest --output-on-failure)
else
  (cd build-tsan && CYPHER_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    ctest --output-on-failure -R "$focused")
fi

echo "== bench smoke (read caches on, TSan binary) =="
TSAN_OPTIONS="halt_on_error=1" \
  scripts/bench_smoke.sh build-tsan/bench/bench_fig4_recommendation

echo "== cluster smoke (2 shards + aggregator, TSan binaries) =="
TSAN_OPTIONS="halt_on_error=1" \
  scripts/cluster_local.sh build-tsan/tools/mbqd 2 400

echo "== driver smoke (open-loop load driver, TSan binaries) =="
TSAN_OPTIONS="halt_on_error=1" \
  scripts/driver_smoke.sh build-tsan/tools/mbqbench build-tsan/tools/mbqd

echo "== trace smoke (stitched cross-process trace, TSan binaries) =="
TSAN_OPTIONS="halt_on_error=1" \
  scripts/trace_smoke.sh build-tsan/tools/mbqd build-tsan/tools/mbqtrace \
  build-tsan/tools/mbqtop

if [ "$run_asan" -eq 1 ]; then
  echo "== AddressSanitizer build (build-asan/) =="
  cmake -B build-asan -S . -DSANITIZE=address >/dev/null
  cmake --build build-asan -j "$jobs"
  echo "== AddressSanitizer tests =="
  (cd build-asan && CYPHER_THREADS=4 ctest --output-on-failure -R "$focused")
fi

if [ "$run_ubsan" -eq 1 ]; then
  echo "== UndefinedBehaviorSanitizer build (build-ubsan/) =="
  cmake -B build-ubsan -S . -DSANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "$jobs"
  echo "== UndefinedBehaviorSanitizer tests (full suite) =="
  (cd build-ubsan && UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --output-on-failure -j "$jobs")
fi

echo "sanitized tests passed"
