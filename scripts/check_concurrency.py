#!/usr/bin/env python3
"""Repo-local concurrency lint, run by the `analyze` CMake target.

Three checks, all textual (no compiler needed, so they run on any box):

1. Raw mutex members. Every lock in the tree must be a util::RankedMutex /
   util::RankedSharedMutex so it carries a rank for the runtime deadlock
   checker and a capability for the Clang thread-safety analysis. A
   `std::mutex` / `std::shared_mutex` member (or local) outside src/util
   silently opts out of both gates.

2. Raw lock guards and condition variables. `std::lock_guard` /
   `std::scoped_lock`, and plain `std::condition_variable` (which only
   accepts std::unique_lock<std::mutex>) outside src/util bypass the
   rank bookkeeping; the wrappers are util::ScopedLock / util::RankedLock
   and std::condition_variable_any.

3. RPC wire stability. rpc::MsgType values are frozen in
   scripts/rpc_wire.lock; any change that is not a pure append breaks
   mixed-version deployments (docs/CLUSTER.md).

Exit status 0 when clean, 1 with one line per finding otherwise.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
WIRE_LOCK = REPO / "scripts" / "rpc_wire.lock"
MESSAGES_H = SRC / "rpc" / "messages.h"

# src/util owns the wrappers; the std primitives may appear only there.
EXEMPT_PREFIX = SRC / "util"

RAW_PATTERNS = [
    # (regex, explanation)
    (re.compile(r"\bstd::mutex\b"),
     "raw std::mutex (use util::RankedMutex with a LockRank)"),
    (re.compile(r"\bstd::shared_mutex\b"),
     "raw std::shared_mutex (use util::RankedSharedMutex with a LockRank)"),
    (re.compile(r"\bstd::recursive_mutex\b"),
     "std::recursive_mutex (recursion is a rank violation by definition)"),
    (re.compile(r"\bstd::lock_guard\b"),
     "raw std::lock_guard (use util::ScopedLock)"),
    (re.compile(r"\bstd::scoped_lock\b"),
     "raw std::scoped_lock (use util::ScopedLock)"),
    (re.compile(r"\bstd::condition_variable\b(?!_any)"),
     "plain std::condition_variable (use std::condition_variable_any over "
     "util::RankedLock)"),
]

STRIP_LINE_COMMENT = re.compile(r"//.*$")


def iter_source_files():
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        if EXEMPT_PREFIX in path.parents:
            continue
        yield path


def check_raw_primitives(findings):
    for path in iter_source_files():
        in_block_comment = False
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            # Cheap comment stripping: enough for this tree's style
            # (no raw strings containing these tokens).
            if in_block_comment:
                if "*/" in line:
                    line = line.split("*/", 1)[1]
                    in_block_comment = False
                else:
                    continue
            line = STRIP_LINE_COMMENT.sub("", line)
            if "/*" in line:
                head, _, tail = line.partition("/*")
                if "*/" in tail:
                    line = head + tail.split("*/", 1)[1]
                else:
                    line = head
                    in_block_comment = True
            for pattern, why in RAW_PATTERNS:
                if pattern.search(line):
                    rel = path.relative_to(REPO)
                    findings.append(f"{rel}:{lineno}: {why}")


MSGTYPE_ENTRY = re.compile(r"^\s*(k[A-Za-z0-9]+)\s*=\s*(\d+)\s*,")


def parse_enum_values():
    """(name, value) pairs of rpc::MsgType, in declaration order."""
    values = []
    in_enum = False
    for line in MESSAGES_H.read_text().splitlines():
        if "enum class MsgType" in line:
            in_enum = True
            continue
        if in_enum:
            if line.strip().startswith("}"):
                break
            m = MSGTYPE_ENTRY.match(STRIP_LINE_COMMENT.sub("", line))
            if m:
                values.append((m.group(1), int(m.group(2))))
    return values


def parse_wire_lock():
    values = []
    for line in WIRE_LOCK.read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        name, _, value = line.partition("=")
        values.append((name.strip(), int(value.strip())))
    return values


def check_wire_stability(findings):
    if not WIRE_LOCK.exists():
        findings.append(f"{WIRE_LOCK.relative_to(REPO)}: manifest missing")
        return
    enum = parse_enum_values()
    lock = parse_wire_lock()
    if not enum:
        findings.append(
            f"{MESSAGES_H.relative_to(REPO)}: could not parse MsgType enum")
        return
    # The locked prefix must match exactly; the enum may only append.
    for i, (name, value) in enumerate(lock):
        if i >= len(enum):
            findings.append(
                f"{MESSAGES_H.relative_to(REPO)}: MsgType::{name} = {value} "
                f"was removed; wire values are append-only "
                f"(scripts/rpc_wire.lock)")
            continue
        got_name, got_value = enum[i]
        if (got_name, got_value) != (name, value):
            findings.append(
                f"{MESSAGES_H.relative_to(REPO)}: MsgType entry {i} is "
                f"{got_name} = {got_value}, but the wire manifest pins "
                f"{name} = {value}; renumbering breaks mixed-version "
                f"deployments (scripts/rpc_wire.lock)")
    for name, value in enum[len(lock):]:
        findings.append(
            f"{MESSAGES_H.relative_to(REPO)}: MsgType::{name} = {value} is "
            f"not in scripts/rpc_wire.lock; append it there in the same "
            f"change")
    seen = {}
    for name, value in enum:
        if value in seen:
            findings.append(
                f"{MESSAGES_H.relative_to(REPO)}: MsgType::{name} reuses "
                f"wire value {value} (already {seen[value]})")
        seen[value] = name


def main():
    findings = []
    check_raw_primitives(findings)
    check_wire_stability(findings)
    if findings:
        for f in findings:
            print(f)
        print(f"check_concurrency.py: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("check_concurrency.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
