#!/usr/bin/env bash
# The static-analysis umbrella: everything that gates a change without
# running it (docs/STATIC_ANALYSIS.md). Also available as the `analyze`
# CMake target. Runs, in order:
#
#   1. check_concurrency.py  — raw-mutex lint + RPC wire-value manifest
#   2. check_docs_links.sh   — doc links, metric catalogue, RPC spec
#   3. run_clang_tidy.sh     — clang-tidy over the gated directories
#   4. a -Wthread-safety build of the annotated tree (Clang only)
#
# Steps 3 and 4 degrade to a notice when LLVM is not installed (the
# same policy as the `lint` / `format-check` targets), so the script is
# runnable on any box; a clean exit means every check that COULD run
# passed. Exits non-zero on the first failing check.
#
# Usage: scripts/analyze.sh [build-dir]   (build-dir defaults to ./build)
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
BUILD_DIR="${1:-build}"

echo "== concurrency lint (raw mutexes, RPC wire manifest) =="
python3 scripts/check_concurrency.py

echo "== doc hygiene (links, metric catalogue, RPC spec) =="
scripts/check_docs_links.sh

echo "== clang-tidy =="
scripts/run_clang_tidy.sh "$BUILD_DIR"

echo "== thread-safety analysis (Clang) =="
if command -v clang++ >/dev/null 2>&1; then
  # A separate build tree: the default one is usually GCC, and the
  # annotations only analyze under Clang. -Werror=thread-safety-analysis
  # is added by CMakeLists.txt for Clang, so a clean build IS the check.
  cmake -B build-analyze -S . -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-analyze -j "$(nproc 2>/dev/null || echo 2)"
else
  echo "thread-safety analysis skipped: clang++ not found" \
       "(install LLVM to enable)"
fi

echo "analyze: all available checks passed"
