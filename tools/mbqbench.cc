// mbqbench — the open-loop load driver (docs/BENCHMARKS.md).
//
// Reads a workload mix (a built-in suite or a mix file), generates the
// twitter dataset deterministically, and issues requests at a target
// rate from N client threads against any engine core::OpenEngine can
// build — the in-process nodestore or bitmap engines, or (with
// --shard=) EngineKind::kRemote dialing mbqd daemons. Latency is
// coordinated-omission-safe: every sample is measured from the
// request's *intended* send time, so a stalled engine shows up in the
// tail instead of silently shedding load.
//
//   ./mbqbench --suite=tao --rate=2000 --duration=5 --metrics-out=out.json
//   ./mbqbench --suite=ldbc --rates=500,1000,2000 --clients=8
//   ./mbqbench --mix=my.mix --engine=bitmap --arrival=uniform
//   ./mbqbench --suite=tao --shard=127.0.0.1:7000 --verify=200
//
// Mixes with write templates (the built-in `churn` suite, or any mix
// naming post_tweet/follow/unfollow/add_mention) open the local engine
// with writes enabled; --wal-dir makes those commits durable. Remote
// topologies reject write mixes — kWriteBatch is reserved protocol.
//
// Flags (both --flag=V and --flag V forms):
//   --suite=ldbc|tao|churn  built-in workload (default tao)
//   --mix=FILE              workload mix file (overrides --suite)
//   --rate=QPS              target aggregate rate (default 1000)
//   --rates=R1,R2,...       sweep: one run per rate, curve table at end
//   --duration=SECONDS      intended-time horizon per run (default 5)
//   --requests=M            cap on issued requests (0 = horizon only)
//   --clients=N             open-loop client threads (default 4)
//   --arrival=poisson|uniform  arrival process (default poisson)
//   --engine=nodestore|bitmap  local engine kind (default nodestore)
//   --shard=H:P             drive a remote topology instead (repeatable;
//                           --users/--seed must match the daemons')
//   --users=N --seed=S      dataset shape (default 20000 / 42)
//   --verify[=M]            differential check before driving: M calls
//                           (default 200) from the mix, compared against
//                           a local single-process nodestore reference
//   --print-mix             print the resolved mix and exit
//   --list-templates        print the template registry and exit
// plus the shared bench surface: --threads N, --result-cache on|off,
// --adj-cache on|off, --metrics-out FILE, --serve[=PORT].
//
// Exit status: 0 success, 1 verify divergence, 2 usage or startup error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/driver.h"
#include "bench/hist.h"
#include "bench/mix.h"
#include "bitmapstore/graph.h"
#include "core/calls.h"
#include "core/engine.h"
#include "nodestore/graph_db.h"
#include "obs/trace_context.h"
#include "storage/simulated_disk.h"
#include "twitter/dataset.h"
#include "twitter/loaders.h"

namespace {

using mbq::Result;
using mbq::Status;
using mbq::bench::driver::Arrival;
using mbq::bench::driver::DriverMetricsPublisher;
using mbq::bench::driver::DriverOptions;
using mbq::bench::driver::DriverReport;
using mbq::bench::driver::LoadDriver;
using mbq::bench::driver::TemplateReport;
using mbq::bench::driver::WorkloadMix;

struct Args {
  std::string suite = "tao";
  std::string mix_file;
  std::vector<double> rates;
  double duration = 5;
  uint64_t requests = 0;
  uint32_t clients = 4;
  Arrival arrival = Arrival::kPoisson;
  std::string engine = "nodestore";
  std::vector<std::string> shard_addresses;
  uint64_t users = 20000;
  uint64_t seed = 42;
  int verify = 0;
  bool print_mix = false;
  bool list_templates = false;
  std::string wal_dir;  ///< WAL for write mixes; empty = no durability
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: mbqbench [--suite=ldbc|tao|churn | --mix=FILE] [options]\n"
      "  --rate=QPS | --rates=R1,R2,...   target rate(s), default 1000\n"
      "  --duration=S --requests=M        run length (default 5s)\n"
      "  --clients=N                      client threads (default 4)\n"
      "  --arrival=poisson|uniform        arrival process\n"
      "  --engine=nodestore|bitmap        local engine (default nodestore)\n"
      "  --shard=H:P [--shard=...]        drive mbqd daemons instead\n"
      "  --users=N --seed=S               dataset shape (20000 / 42)\n"
      "  --wal-dir=DIR                    WAL for write mixes (default:\n"
      "                                   commit without durability)\n"
      "  --verify[=M]                     differential check vs a local\n"
      "                                   nodestore reference\n"
      "  --print-mix | --list-templates   inspect the workload and exit\n"
      "  --threads N --result-cache on|off --adj-cache on|off\n"
      "  --metrics-out FILE --serve[=PORT]\n");
}

bool ParseRates(const char* text, std::vector<double>* rates) {
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    double r = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0' || !(r > 0)) return false;
    rates->push_back(r);
  }
  return !rates->empty();
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    auto value_of = [&](const char* name) -> const char* {
      size_t n = std::strlen(name);
      if (std::strncmp(argv[i], name, n) != 0) return nullptr;
      if (argv[i][n] == '=') return argv[i] + n + 1;
      if (argv[i][n] == '\0' && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    // The shared bench/metrics surface is parsed by ParseBenchOptionsOrDie
    // and MetricsExportGuard; skip those flags (and their detached values)
    // here so they are not reported as unknown.
    auto skip_shared = [&](const char* name) {
      size_t n = std::strlen(name);
      if (std::strncmp(argv[i], name, n) != 0) return false;
      if (argv[i][n] == '=') return true;
      if (argv[i][n] == '\0') {
        if (i + 1 < argc) ++i;  // detached value form
        return true;
      }
      return false;
    };
    std::string arg = argv[i];
    if (const char* v = value_of("--suite")) {
      args->suite = v;
    } else if (const char* v = value_of("--mix")) {
      args->mix_file = v;
    } else if (const char* v = value_of("--rates")) {
      if (!ParseRates(v, &args->rates)) {
        std::fprintf(stderr, "mbqbench: bad --rates value: %s\n", v);
        return false;
      }
    } else if (const char* v = value_of("--rate")) {
      char* end = nullptr;
      double r = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(r > 0)) {
        std::fprintf(stderr, "mbqbench: bad --rate value: %s\n", v);
        return false;
      }
      args->rates.push_back(r);
    } else if (const char* v = value_of("--duration")) {
      char* end = nullptr;
      args->duration = std::strtod(v, &end);
      if (end == v || *end != '\0' || !(args->duration > 0)) {
        std::fprintf(stderr, "mbqbench: bad --duration value: %s\n", v);
        return false;
      }
    } else if (const char* v = value_of("--requests")) {
      args->requests = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--clients")) {
      unsigned long c = std::strtoul(v, nullptr, 10);
      if (c < 1 || c > 1024) {
        std::fprintf(stderr, "mbqbench: bad --clients value: %s\n", v);
        return false;
      }
      args->clients = static_cast<uint32_t>(c);
    } else if (const char* v = value_of("--arrival")) {
      Result<Arrival> arrival = mbq::bench::driver::ParseArrival(v);
      if (!arrival.ok()) {
        std::fprintf(stderr, "mbqbench: %s\n",
                     arrival.status().message().c_str());
        return false;
      }
      args->arrival = *arrival;
    } else if (const char* v = value_of("--engine")) {
      args->engine = v;
      if (args->engine != "nodestore" && args->engine != "bitmap") {
        std::fprintf(stderr, "mbqbench: unknown engine: %s\n", v);
        return false;
      }
    } else if (const char* v = value_of("--shard")) {
      args->shard_addresses.emplace_back(v);
    } else if (const char* v = value_of("--users")) {
      args->users = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--seed")) {
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--wal-dir")) {
      args->wal_dir = v;
    } else if (arg == "--verify") {
      args->verify = 200;
    } else if (std::strncmp(argv[i], "--verify=", 9) == 0) {
      args->verify = std::atoi(argv[i] + 9);
      if (args->verify < 1) {
        std::fprintf(stderr, "mbqbench: bad --verify value: %s\n",
                     argv[i] + 9);
        return false;
      }
    } else if (arg == "--print-mix") {
      args->print_mix = true;
    } else if (arg == "--list-templates") {
      args->list_templates = true;
    } else if (arg == "--serve" || std::strncmp(argv[i], "--serve=", 8) == 0) {
      // MetricsExportGuard's flag; no detached value form.
    } else if (skip_shared("--threads") || skip_shared("--result-cache") ||
               skip_shared("--adj-cache") || skip_shared("--metrics-out")) {
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "mbqbench: unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (args->rates.empty()) args->rates.push_back(1000);
  return true;
}

/// Local stores use the instant disk profile: mbqbench measures serving
/// throughput, not simulated device latency (bench_fig4_* does that).
struct LocalStores {
  std::unique_ptr<mbq::nodestore::GraphDb> db;
  std::unique_ptr<mbq::bitmapstore::Graph> graph;
  mbq::twitter::BitmapHandles bitmap_handles{};
};

Result<std::unique_ptr<mbq::core::MicroblogEngine>> OpenLocalEngine(
    const std::string& kind, const mbq::twitter::Dataset& dataset,
    const mbq::bench::BenchOptions& bench, LocalStores* stores,
    bool enable_writes = false, const std::string& wal_dir = std::string()) {
  using namespace mbq;        // NOLINT(build/namespaces)
  using namespace mbq::core;  // NOLINT(build/namespaces)
  EngineOptions options;
  options.threads = bench.threads;
  options.result_cache = bench.result_cache;
  options.result_cache_capacity = bench.result_cache_capacity;
  options.adjacency_cache = bench.adj_cache;
  options.adjacency_cache_capacity = bench.adj_cache_capacity;
  if (enable_writes) {
    options.enable_writes = true;
    options.dataset = &dataset;
    options.wal_dir = wal_dir;
  }
  if (kind == "nodestore") {
    nodestore::GraphDbOptions ndb;
    ndb.disk_profile = storage::DiskProfile::Instant();
    ndb.wal_enabled = false;
    stores->db = std::make_unique<nodestore::GraphDb>(ndb);
    MBQ_ASSIGN_OR_RETURN(auto handles,
                         twitter::LoadIntoNodestore(dataset, stores->db.get()));
    (void)handles;
    options.db = stores->db.get();
    return OpenEngine(EngineKind::kNodestore, options);
  }
  bitmapstore::GraphOptions bg;
  bg.disk_profile = storage::DiskProfile::Instant();
  stores->graph = std::make_unique<bitmapstore::Graph>(bg);
  MBQ_ASSIGN_OR_RETURN(
      stores->bitmap_handles,
      twitter::LoadIntoBitmapstore(dataset, stores->graph.get()));
  options.graph = stores->graph.get();
  options.handles = &stores->bitmap_handles;
  return OpenEngine(EngineKind::kBitmap, options);
}

Result<std::unique_ptr<mbq::core::MicroblogEngine>> DialRemote(
    const std::vector<std::string>& shard_addresses) {
  using namespace mbq;        // NOLINT(build/namespaces)
  using namespace mbq::core;  // NOLINT(build/namespaces)
  EngineOptions options;
  options.shard_addresses = shard_addresses;
  // Daemons may still be loading their slice; retry the dial for ~30s.
  Result<std::unique_ptr<MicroblogEngine>> engine =
      Status::Internal("unreached");
  for (int attempt = 0; attempt < 120; ++attempt) {
    engine = OpenEngine(EngineKind::kRemote, options);
    if (engine.ok() || !engine.status().IsIoError()) break;
    struct timespec ts = {0, 250 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  return engine;
}

/// Differential check: replay `calls` requests from the mix's client-0
/// stream on both the target engine and a local single-process
/// nodestore reference, comparing canonical digests. Returns the number
/// of divergent calls.
///
/// Mixes with write templates still verify — the reference is opened
/// writable and both engines apply the identical interleaved stream, so
/// every read observes the same committed prefix (the churn agreement
/// property; ids assigned by PostTweet are allocation-order
/// deterministic under the single verify thread). Read results are
/// non-deterministic *across* verify sizes and runs with different
/// streams, not within one.
int RunVerify(mbq::core::MicroblogEngine& target, const WorkloadMix& mix,
              const mbq::core::ParamUniverse& universe,
              const mbq::twitter::Dataset& dataset, uint64_t seed,
              int calls) {
  using namespace mbq;        // NOLINT(build/namespaces)
  mbq::bench::BenchOptions plain;
  LocalStores stores;
  // The reference applies the mix's writes too (no WAL: it is throwaway).
  auto reference =
      OpenLocalEngine("nodestore", dataset, plain, &stores,
                      mbq::bench::driver::MixHasWrites(mix));
  if (!reference.ok()) {
    std::fprintf(stderr, "mbqbench: reference engine failed: %s\n",
                 reference.status().ToString().c_str());
    return calls;  // all calls unverifiable
  }
  mbq::bench::driver::CallStream stream(mix, universe, seed, /*client=*/0);
  int failures = 0;
  std::vector<uint64_t> agreed(mix.entries.size(), 0);
  std::vector<uint64_t> total(mix.entries.size(), 0);
  for (int i = 0; i < calls; ++i) {
    auto [entry_index, spec] = stream.Next();
    total[entry_index] += 1;
    Result<core::CallOutcome> want = core::DispatchCall(**reference, spec);
    Result<core::CallOutcome> got = core::DispatchCall(target, spec);
    if (!want.ok() || !got.ok()) {
      // Matching error codes count as agreement (e.g. unknown hashtag).
      if (want.status().code() == got.status().code()) {
        agreed[entry_index] += 1;
        continue;
      }
      ++failures;
      std::fprintf(stderr, "mbqbench: DIVERGED %s: reference=%s target=%s\n",
                   core::CallSpecToString(spec).c_str(),
                   want.status().ToString().c_str(),
                   got.status().ToString().c_str());
      continue;
    }
    if (*want != *got) {
      ++failures;
      std::fprintf(stderr,
                   "mbqbench: DIVERGED %s: reference %llu rows, target "
                   "%llu rows\n",
                   core::CallSpecToString(spec).c_str(),
                   static_cast<unsigned long long>(want->rows),
                   static_cast<unsigned long long>(got->rows));
      continue;
    }
    agreed[entry_index] += 1;
  }
  for (size_t i = 0; i < mix.entries.size(); ++i) {
    if (total[i] == 0) continue;
    const mbq::bench::driver::TemplateInfo* info =
        mbq::bench::driver::FindTemplate(mix.entries[i].template_name);
    std::printf("verify %-22s %4llu/%llu %s%s\n",
                mix.entries[i].template_name.c_str(),
                static_cast<unsigned long long>(agreed[i]),
                static_cast<unsigned long long>(total[i]),
                agreed[i] == total[i] ? "ok" : "DIVERGED",
                info != nullptr && info->is_write ? " (write)" : "");
  }
  return failures;
}

std::string FormatMicros(double micros) {
  return mbq::bench::FormatMillis(micros / 1000.0);
}

void PrintReport(const Args& args, const DriverReport& report) {
  std::printf("rate %.0f qps (%s, %u clients): achieved %.1f qps over "
              "%.2fs, %llu requests, %llu errors, %llu late\n",
              report.rate_qps,
              mbq::bench::driver::ArrivalName(args.arrival), args.clients,
              report.achieved_qps, report.wall_seconds,
              static_cast<unsigned long long>(report.requests),
              static_cast<unsigned long long>(report.errors),
              static_cast<unsigned long long>(report.late));
  std::vector<int> widths = {22, 10, 7, 7, 10, 10, 10};
  mbq::bench::PrintRow(
      {"template", "requests", "errors", "late", "p50", "p95", "p99"},
      widths);
  mbq::bench::PrintRule(widths);
  for (const TemplateReport& tr : report.templates) {
    mbq::bench::PrintRow(
        {tr.name, mbq::bench::FormatCount(tr.requests),
         mbq::bench::FormatCount(tr.errors), mbq::bench::FormatCount(tr.late),
         FormatMicros(tr.latency_micros.Quantile(0.50)),
         FormatMicros(tr.latency_micros.Quantile(0.95)),
         FormatMicros(tr.latency_micros.Quantile(0.99))},
        widths);
  }
  mbq::bench::PrintRule(widths);
  mbq::bench::PrintRow(
      {"TOTAL", mbq::bench::FormatCount(report.requests),
       mbq::bench::FormatCount(report.errors),
       mbq::bench::FormatCount(report.late),
       FormatMicros(report.latency_micros.Quantile(0.50)),
       FormatMicros(report.latency_micros.Quantile(0.95)),
       FormatMicros(report.latency_micros.Quantile(0.99))},
      widths);
}

void PrintCurve(const std::vector<DriverReport>& reports) {
  std::printf("\nqps vs latency:\n");
  std::vector<int> widths = {10, 12, 10, 10, 10};
  mbq::bench::PrintRow({"target", "achieved", "p50", "p95", "p99"}, widths);
  mbq::bench::PrintRule(widths);
  for (const DriverReport& r : reports) {
    char target[32], achieved[32];
    std::snprintf(target, sizeof(target), "%.0f", r.rate_qps);
    std::snprintf(achieved, sizeof(achieved), "%.1f", r.achieved_qps);
    mbq::bench::PrintRow({target, achieved,
                          FormatMicros(r.latency_micros.Quantile(0.50)),
                          FormatMicros(r.latency_micros.Quantile(0.95)),
                          FormatMicros(r.latency_micros.Quantile(0.99))},
                         widths);
  }
}

}  // namespace

int main(int argc, char** argv) {
  mbq::obs::SetProcessRole("bench");
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  mbq::bench::BenchOptions bench =
      mbq::bench::ParseBenchOptionsOrDie(argc, argv);

  if (args.list_templates) {
    for (const auto& info : mbq::bench::driver::Templates()) {
      std::printf("%-22s %s\n", info.name, info.what);
    }
    return 0;
  }

  Result<WorkloadMix> mix = mbq::Status::Internal("unreached");
  if (!args.mix_file.empty()) {
    std::ifstream in(args.mix_file);
    if (!in) {
      std::fprintf(stderr, "mbqbench: cannot read mix file: %s\n",
                   args.mix_file.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    mix = mbq::bench::driver::ParseMix(buffer.str(), args.mix_file);
  } else {
    mix = mbq::bench::driver::BuiltinSuite(args.suite);
  }
  if (!mix.ok()) {
    std::fprintf(stderr, "mbqbench: %s\n", mix.status().message().c_str());
    return 2;
  }
  if (args.print_mix) {
    std::fputs(mbq::bench::driver::FormatMix(*mix).c_str(), stdout);
    return 0;
  }

  mbq::twitter::DatasetSpec spec;
  spec.num_users = args.users;
  spec.seed = args.seed;
  std::fprintf(stderr, "mbqbench: generating dataset (users=%llu seed=%llu)\n",
               static_cast<unsigned long long>(args.users),
               static_cast<unsigned long long>(args.seed));
  mbq::twitter::Dataset dataset = mbq::twitter::GenerateDataset(spec);
  mbq::core::ParamUniverse universe(dataset);

  bool writes = mbq::bench::driver::MixHasWrites(*mix);
  LocalStores stores;
  Result<std::unique_ptr<mbq::core::MicroblogEngine>> engine =
      mbq::Status::Internal("unreached");
  if (!args.shard_addresses.empty()) {
    if (writes) {
      // kWriteBatch is reserved wire protocol (docs/CLUSTER.md); fail
      // at startup instead of per-request NotImplemented noise.
      std::fprintf(stderr,
                   "mbqbench: mix '%s' has write templates, but cluster "
                   "writes are not implemented — drive a local engine\n",
                   mix->name.c_str());
      return 2;
    }
    engine = DialRemote(args.shard_addresses);
    if (!engine.ok()) {
      std::fprintf(stderr, "mbqbench: cannot reach shards: %s\n",
                   engine.status().ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "mbqbench: driving remote topology (%zu address%s)\n",
                 args.shard_addresses.size(),
                 args.shard_addresses.size() == 1 ? "" : "es");
  } else {
    engine = OpenLocalEngine(args.engine, dataset, bench, &stores, writes,
                             args.wal_dir);
    if (!engine.ok()) {
      std::fprintf(stderr, "mbqbench: engine failed: %s\n",
                   engine.status().ToString().c_str());
      return 2;
    }
    if (writes) {
      std::fprintf(stderr, "mbqbench: live writes enabled (%s)\n",
                   args.wal_dir.empty() ? "no WAL"
                                        : ("wal_dir=" + args.wal_dir).c_str());
    }
  }

  int verify_failures = 0;
  if (args.verify > 0) {
    verify_failures = RunVerify(**engine, *mix, universe, dataset, args.seed,
                                args.verify);
    if (verify_failures != 0) {
      std::fprintf(stderr, "mbqbench: verify FAILED: %d divergent calls\n",
                   verify_failures);
    } else {
      std::fprintf(stderr,
                   "mbqbench: verify OK: target agrees with the local "
                   "nodestore reference on %d calls\n",
                   args.verify);
    }
  }

  DriverMetricsPublisher publisher;
  std::vector<DriverReport> reports;
  for (double rate : args.rates) {
    DriverOptions options;
    options.rate_qps = rate;
    options.clients = args.clients;
    options.duration_seconds = args.duration;
    options.max_requests = args.requests;
    options.arrival = args.arrival;
    options.seed = args.seed;
    Result<DriverReport> report = LoadDriver(engine->get(), *mix, universe,
                                             options)
                                      .Run();
    if (!report.ok()) {
      std::fprintf(stderr, "mbqbench: %s\n",
                   report.status().message().c_str());
      return 2;
    }
    publisher.Publish(*report);
    if (!reports.empty()) std::printf("\n");
    PrintReport(args, *report);
    reports.push_back(std::move(*report));
  }
  if (reports.size() > 1) PrintCurve(reports);
  return verify_failures == 0 ? 0 : 1;
}
