# Helper for the checkdb-smoke target: runs checkdb with an injected
# fault and fails unless it exits 1 (corruption detected).
execute_process(
  COMMAND ${CHECKDB} --users=200 --corrupt=${FAULT}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "checkdb --corrupt=${FAULT} exited ${rc}, expected 1\n${out}${err}")
endif()
message(STATUS "checkdb caught injected ${FAULT} fault")
