// mbqtop — a top(1)-style live dashboard for a process serving the
// embedded stats server (any bench with --serve, the shell's :serve,
// checkdb --serve, or MBQ_STATS_PORT).
//
//   ./mbqtop [--host=H] [--port=N] [--interval=SECONDS] [--once] [--json]
//   ./mbqtop --get=<endpoint> [--port=N]   # /healthz, /metrics,
//                                          # /metrics.json, /queries,
//                                          # /slow, /trace, /trace.json
//
// Polls /metrics.json, /queries and /slow and renders a refreshing
// terminal view: throughput (from the active-query registry's started
// counter), latency quantiles, cache hit-rates, pool queue depth, the
// in-flight query table, the per-shard RPC latency table (when the
// server is an aggregator exporting rpc.shard.* histograms) and the
// slow-query tail. `--once` prints a single frame without clearing the
// screen (script-friendly); `--json` emits one machine-readable frame
// and exits; `--get` fetches one endpoint raw and exits (a curl
// substitute for smoke scripts). The port defaults to the
// MBQ_STATS_PORT environment variable.

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/http_client.h"

namespace {

using mbq::obs::HttpGet;

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double interval_seconds = 2.0;
  bool once = false;
  bool json = false;  // emit one machine-readable frame instead of the TUI
  std::string get_path;  // non-empty: fetch raw and exit
};

// -------------------------------------------------- line-level JSON reads
//
// Every payload the stats server emits keeps one object per line, so a
// line scanner plus per-line field extraction is enough — no general
// JSON parser needed.

/// Numeric value of `"key": N` inside a one-line object; NAN if absent.
double NumberField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  size_t at = line.find(needle);
  if (at == std::string::npos) return NAN;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

/// String value of `"key": "..."` (JSON-unescaped); empty if absent.
std::string StringField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\": \"";
  size_t start = line.find(needle);
  if (start == std::string::npos) return "";
  start += needle.size();
  // Find the closing quote, skipping escaped ones.
  size_t end = start;
  while (end < line.size()) {
    if (line[end] == '"' && line[end - 1] != '\\') break;
    ++end;
  }
  return mbq::obs::JsonUnescape(line.substr(start, end - start));
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    out.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return out;
}

/// Flattened /metrics.json: counter/gauge values and histogram quantiles
/// (as name.p50 etc.) keyed by metric name.
std::map<std::string, double> ParseMetrics(const std::string& json) {
  std::map<std::string, double> out;
  for (const std::string& line : Lines(json)) {
    std::string name = StringField(line, "name");
    if (name.empty()) continue;
    double value = NumberField(line, "value");
    if (value == value) {  // counters and gauges
      out[name] = value;
      continue;
    }
    for (const char* q : {"count", "p50", "p95", "p99"}) {
      double v = NumberField(line, q);
      if (v == v) out[name + "." + q] = v;
    }
  }
  return out;
}

double Lookup(const std::map<std::string, double>& metrics,
              const std::string& name, double fallback = 0) {
  auto it = metrics.find(name);
  return it != metrics.end() ? it->second : fallback;
}

std::string Truncate(std::string text, size_t max) {
  for (char& c : text) {
    if (c == '\n' || c == '\t') c = ' ';
  }
  if (text.size() > max) text = text.substr(0, max - 3) + "...";
  return text;
}

std::string FormatRate(double hits, double misses) {
  double total = hits + misses;
  if (total <= 0) return "  --";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%3.0f%%", 100.0 * hits / total);
  return buf;
}

// ---------------------------------------------------------------- shards

struct ShardRow {
  unsigned shard;
  double count;
  double p50_us;
  double p95_us;
  double p99_us;
};

/// Per-shard RPC latency rows pulled from the flattened
/// rpc.shard.<i>.latency.{count,p50,p95,p99} metrics an aggregator
/// exports; empty on a single-process server.
std::vector<ShardRow> ShardRows(const std::map<std::string, double>& metrics) {
  std::vector<ShardRow> out;
  const std::string prefix = "rpc.shard.";
  for (auto it = metrics.lower_bound(prefix); it != metrics.end(); ++it) {
    const std::string& name = it->first;
    if (name.compare(0, prefix.size(), prefix) != 0) break;
    const std::string suffix = ".latency.count";
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    std::string id = name.substr(prefix.size(),
                                 name.size() - prefix.size() - suffix.size());
    char* end = nullptr;
    unsigned long shard = std::strtoul(id.c_str(), &end, 10);
    if (end == id.c_str() || *end != '\0') continue;
    std::string base = prefix + id + ".latency";
    out.push_back({static_cast<unsigned>(shard), it->second,
                   Lookup(metrics, base + ".p50"),
                   Lookup(metrics, base + ".p95"),
                   Lookup(metrics, base + ".p99")});
  }
  return out;
}

// ----------------------------------------------------------------- frames

void RenderFrame(const Options& options,
                 const std::map<std::string, double>& metrics,
                 const std::string& queries_json,
                 const std::string& slow_json, double qps) {
  std::printf("mbqtop — http://%s:%u/  (%.1fs refresh)\n\n",
              options.host.c_str(), static_cast<unsigned>(options.port),
              options.interval_seconds);

  double p50 = Lookup(metrics, "cypher.query_latency.p50") / 1e6;
  double p95 = Lookup(metrics, "cypher.query_latency.p95") / 1e6;
  double p99 = Lookup(metrics, "cypher.query_latency.p99") / 1e6;
  std::printf(
      "queries  started %-10.0f %6.1f/s   latency p50 %.2f ms  "
      "p95 %.2f ms  p99 %.2f ms\n",
      Lookup(metrics, "obs.queries.started"), qps, p50, p95, p99);
  std::printf(
      "caches   result %s   adjacency %s   pool depth %.0f   "
      "slow captured %.0f   dropped %.0f\n\n",
      FormatRate(Lookup(metrics, "cache.result.hits"),
                 Lookup(metrics, "cache.result.misses"))
          .c_str(),
      FormatRate(Lookup(metrics, "cache.adjacency.hits"),
                 Lookup(metrics, "cache.adjacency.misses"))
          .c_str(),
      Lookup(metrics, "exec.pool.queue_depth"),
      Lookup(metrics, "obs.flight.captured"),
      Lookup(metrics, "obs.queries.dropped"));

  std::vector<ShardRow> shards = ShardRows(metrics);
  if (!shards.empty()) {
    std::printf("SHARDS (%zu)\n", shards.size());
    std::printf("  %6s %10s %10s %10s %10s\n", "SHARD", "CALLS", "P50 MS",
                "P95 MS", "P99 MS");
    for (const ShardRow& row : shards) {
      std::printf("  %6u %10.0f %10.2f %10.2f %10.2f\n", row.shard, row.count,
                  row.p50_us / 1e3, row.p95_us / 1e3, row.p99_us / 1e3);
    }
    std::printf("\n");
  }

  std::printf("ACTIVE (%.0f)\n", Lookup(metrics, "obs.queries.active"));
  std::printf("  %6s %-8s %3s %10s %10s %10s  %s\n", "ID", "ENGINE", "THR",
              "ELAPSED", "ROWS", "DB HITS", "QUERY");
  for (const std::string& line : Lines(queries_json)) {
    std::string engine = StringField(line, "engine");
    if (engine.empty()) continue;
    std::printf("  %6.0f %-8s %3.0f %8.1fms %10.0f %10.0f  %s\n",
                NumberField(line, "id"), engine.c_str(),
                NumberField(line, "threads"), NumberField(line, "elapsed_ms"),
                NumberField(line, "rows"), NumberField(line, "db_hits"),
                Truncate(StringField(line, "query"), 60).c_str());
  }

  // Newest-last slow tail, bounded to the last 5 captures.
  std::vector<std::string> slow_lines;
  for (const std::string& line : Lines(slow_json)) {
    if (!StringField(line, "engine").empty()) slow_lines.push_back(line);
  }
  size_t from = slow_lines.size() > 5 ? slow_lines.size() - 5 : 0;
  std::printf("\nSLOW TAIL (last %zu of %zu)\n", slow_lines.size() - from,
              slow_lines.size());
  std::printf("  %6s %10s %-8s %10s  %s\n", "SEQ", "MILLIS", "ENGINE",
              "DB HITS", "QUERY");
  for (size_t i = from; i < slow_lines.size(); ++i) {
    const std::string& line = slow_lines[i];
    std::printf("  %6.0f %10.2f %-8s %10.0f  %s\n", NumberField(line, "seq"),
                NumberField(line, "millis"),
                StringField(line, "engine").c_str(),
                NumberField(line, "db_hits"),
                Truncate(StringField(line, "query"), 60).c_str());
  }
}

/// One machine-readable frame for scripted scrapes (`mbqtop --json`):
/// the headline numbers plus a per-shard latency array, one JSON object
/// on a single line.
void RenderJson(const std::map<std::string, double>& metrics, double qps) {
  std::printf("{\"qps\": %.3f", qps);
  std::printf(", \"queries_started\": %.0f",
              Lookup(metrics, "obs.queries.started"));
  std::printf(", \"active\": %.0f", Lookup(metrics, "obs.queries.active"));
  std::printf(", \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}",
              Lookup(metrics, "cypher.query_latency.p50") / 1e6,
              Lookup(metrics, "cypher.query_latency.p95") / 1e6,
              Lookup(metrics, "cypher.query_latency.p99") / 1e6);
  std::printf(", \"slow_captured\": %.0f",
              Lookup(metrics, "obs.flight.captured"));
  std::printf(", \"spans_dropped\": %.0f",
              Lookup(metrics, "obs.spans.dropped"));
  std::printf(", \"shards\": [");
  bool first = true;
  for (const ShardRow& row : ShardRows(metrics)) {
    std::printf("%s{\"shard\": %u, \"calls\": %.0f, \"p50_ms\": %.3f, "
                "\"p95_ms\": %.3f, \"p99_ms\": %.3f}",
                first ? "" : ", ", row.shard, row.count, row.p50_us / 1e3,
                row.p95_us / 1e3, row.p99_us / 1e3);
    first = false;
  }
  std::printf("]}\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--host=")) {
      options->host = v;
    } else if (const char* v = value_of("--port=")) {
      unsigned long port = std::strtoul(v, nullptr, 10);
      if (port == 0 || port > 65535) {
        std::fprintf(stderr, "bad --port: %s\n", v);
        return false;
      }
      options->port = static_cast<uint16_t>(port);
    } else if (const char* v = value_of("--interval=")) {
      options->interval_seconds = std::strtod(v, nullptr);
      if (options->interval_seconds < 0.1) options->interval_seconds = 0.1;
    } else if (const char* v = value_of("--get=")) {
      options->get_path = v;
    } else if (arg == "--get" && i + 1 < argc) {
      options->get_path = argv[++i];
    } else if (arg == "--once") {
      options->once = true;
    } else if (arg == "--json") {
      options->json = true;
      options->once = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (options->port == 0) {
    if (const char* env = std::getenv("MBQ_STATS_PORT")) {
      unsigned long port = std::strtoul(env, nullptr, 10);
      if (port >= 1 && port <= 65535) {
        options->port = static_cast<uint16_t>(port);
      }
    }
  }
  if (options->port == 0) {
    std::fprintf(stderr,
                 "usage: mbqtop [--host=H] --port=N [--interval=S] [--once] "
                 "[--json]\n"
                 "       mbqtop --get=<endpoint> --port=N\n"
                 "(endpoints: /healthz /metrics /metrics.json /queries /slow "
                 "/trace /trace.json;\n"
                 " --port defaults to the MBQ_STATS_PORT environment "
                 "variable)\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) return 2;

  if (!options.get_path.empty()) {
    std::string body;
    if (!HttpGet(options.host, options.port, options.get_path, &body)) {
      std::fprintf(stderr, "GET %s from %s:%u failed\n",
                   options.get_path.c_str(), options.host.c_str(),
                   static_cast<unsigned>(options.port));
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), stdout);
    return 0;
  }

  double last_started = NAN;
  for (;;) {
    std::string metrics_json;
    std::string queries_json;
    std::string slow_json;
    if (!HttpGet(options.host, options.port, "/metrics.json",
                 &metrics_json) ||
        !HttpGet(options.host, options.port, "/queries", &queries_json) ||
        !HttpGet(options.host, options.port, "/slow", &slow_json)) {
      std::fprintf(stderr, "cannot reach http://%s:%u/ — is the server up?\n",
                   options.host.c_str(),
                   static_cast<unsigned>(options.port));
      return 1;
    }
    std::map<std::string, double> metrics = ParseMetrics(metrics_json);
    double started = Lookup(metrics, "obs.queries.started");
    double qps = (last_started == last_started)
                     ? (started - last_started) / options.interval_seconds
                     : 0;
    last_started = started;
    if (options.json) {
      RenderJson(metrics, qps);
      return 0;
    }
    if (!options.once) std::printf("\x1b[H\x1b[2J");  // home + clear
    RenderFrame(options, metrics, queries_json, slow_json, qps);
    if (options.once) return 0;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options.interval_seconds));
  }
}
