// mbqd — the sharded serving plane's daemon (docs/CLUSTER.md).
//
// One binary, four roles:
//
//   shard       Generate the twitter dataset deterministically, carve out
//               this shard's slice (core::MakeShardSlice), load it into a
//               local engine and serve the RPC protocol on --port.
//
//                 ./mbqd --port=7001 --shards=2 --shard-id=0 \
//                        [--users=N --seed=S --engine=nodestore|bitmap \
//                         --partition=hash|range --threads=T --serve[=P]]
//
//   aggregator  Dial N shards, expose the same RPC surface on --port and
//               fan navigation calls out, merging per the call shape.
//               Presents itself as a single unpartitioned shard, so
//               clients cannot tell it from a whole-dataset daemon.
//
//                 ./mbqd --aggregate --port=7000 \
//                        --shard=127.0.0.1:7001 --shard=127.0.0.1:7002
//
//   verify      Build the full dataset in-process as the reference
//               engine, run every Table 2 call (fixed anchors plus the
//               randomized differential call set) through the remote
//               topology, and compare results bit-for-bit (after the
//               canonical SortRows). Exit 0 on agreement, 1 on any
//               divergence.
//
//                 ./mbqd --verify --users=N --seed=S \
//                        --shard=127.0.0.1:7000 [--calls=M]
//
//   probe       Liveness-check one daemon. Tries the stats server's
//               /healthz endpoint first (cheap: no dataset hello, no
//               RPC dial); when the address is an RPC port, falls back
//               to the full hello + ping round trip.
//
//                 ./mbqd --probe=127.0.0.1:7001
//
// Every role honours MBQ_STATS_PORT (obs::MaybeServeFromEnv) and shard /
// aggregator additionally honour --serve[=PORT] for the embedded stats
// HTTP server (/ /metrics /metrics.json /queries /slow /trace).
//
// Exit status: 0 success, 1 verify divergence, 2 usage or startup error.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "bitmapstore/graph.h"
#include "core/engine.h"
#include "core/nodestore_engine.h"
#include "core/partition.h"
#include "core/remote_engine.h"
#include "core/shard_service.h"
#include "core/workload.h"
#include "cypher/session.h"
#include "nodestore/graph_db.h"
#include "obs/http_client.h"
#include "obs/httpd.h"
#include "obs/trace_context.h"
#include "rpc/server.h"
#include "storage/simulated_disk.h"
#include "twitter/dataset.h"
#include "twitter/loaders.h"
#include "util/rng.h"

namespace {

using mbq::Result;
using mbq::Rng;
using mbq::Status;

struct Args {
  enum class Role { kShard, kAggregate, kVerify, kProbe } role = Role::kShard;
  uint16_t port = 0;  // 0 = ephemeral, printed at startup
  uint32_t shards = 1;
  uint32_t shard_id = 0;
  uint64_t users = 20000;
  uint64_t seed = 42;
  std::string engine = "nodestore";  // nodestore|bitmap
  std::string partition = "hash";    // hash|range
  uint32_t threads = 1;
  int calls = 25;  // randomized verify calls
  bool serve = false;
  uint16_t serve_port = 0;
  std::string probe;  // --probe=H:P
  std::vector<std::string> shard_addresses;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: mbqd --port=N --shards=K --shard-id=I [options]      shard\n"
      "       mbqd --aggregate --port=N --shard=H:P [--shard=...]  "
      "aggregator\n"
      "       mbqd --verify --shard=H:P [--shard=...] [options]    verify\n"
      "       mbqd --probe=H:P                                     probe\n"
      "options:\n"
      "  --users=N --seed=S          dataset shape (default 20000 / 42)\n"
      "  --engine=nodestore|bitmap   shard engine (default nodestore)\n"
      "  --partition=hash|range      user partitioning (default hash)\n"
      "  --threads=T                 engine worker threads (default 1)\n"
      "  --calls=M                   randomized verify calls (default 25)\n"
      "  --serve[=PORT]              embedded stats HTTP server (/metrics,\n"
      "                              /metrics.json, /queries, /slow, /trace)\n"
      "environment: MBQ_STATS_PORT=P also starts the stats server\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--aggregate") {
      args->role = Args::Role::kAggregate;
    } else if (arg == "--verify") {
      args->role = Args::Role::kVerify;
    } else if (const char* v = value_of("--probe=")) {
      args->role = Args::Role::kProbe;
      args->probe = v;
    } else if (const char* v = value_of("--port=")) {
      args->port = static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--shards=")) {
      args->shards = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--shard-id=")) {
      args->shard_id = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--shard=")) {
      args->shard_addresses.emplace_back(v);
    } else if (const char* v = value_of("--users=")) {
      args->users = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--seed=")) {
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--engine=")) {
      args->engine = v;
      if (args->engine != "nodestore" && args->engine != "bitmap") {
        std::fprintf(stderr, "unknown engine: %s\n", v);
        return false;
      }
    } else if (const char* v = value_of("--partition=")) {
      args->partition = v;
    } else if (const char* v = value_of("--threads=")) {
      args->threads = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--calls=")) {
      args->calls = std::atoi(v);
    } else if (const char* v = value_of("--serve=")) {
      args->serve = true;
      args->serve_port = static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--serve") {
      args->serve = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Shard and verify must build bit-identical datasets; one spec builder
/// keeps them honest.
mbq::twitter::DatasetSpec SpecFromArgs(const Args& args) {
  mbq::twitter::DatasetSpec spec;
  spec.num_users = args.users;
  spec.seed = args.seed;
  return spec;
}

/// Blocks until SIGINT/SIGTERM. The RPC and stats servers run their own
/// threads; the main thread just waits to tear them down.
void WaitForSignal() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int sig = 0;
  sigwait(&set, &sig);
  std::fprintf(stderr, "mbqd: caught signal %d, shutting down\n", sig);
}

std::unique_ptr<mbq::obs::StatsServer> MaybeServe(const Args& args) {
  std::unique_ptr<mbq::obs::StatsServer> server =
      mbq::obs::MaybeServeFromEnv();
  if (server != nullptr || !args.serve) return server;
  mbq::obs::ServeOptions options;
  options.port = args.serve_port;
  Result<std::unique_ptr<mbq::obs::StatsServer>> started =
      mbq::obs::StatsServer::Start(options);
  if (!started.ok()) {
    std::fprintf(stderr, "mbqd: stats server failed: %s\n",
                 started.status().message().c_str());
    return nullptr;
  }
  std::fprintf(stderr, "mbqd: stats server listening on http://%s:%u/\n",
               (*started)->bind_address().c_str(),
               static_cast<unsigned>((*started)->port()));
  return std::move(started).value();
}

int RunShard(const Args& args) {
  using namespace mbq;          // NOLINT(build/namespaces)
  using namespace mbq::core;    // NOLINT(build/namespaces)

  mbq::obs::SetProcessRole("shard-" + std::to_string(args.shard_id));
  Result<PartitionKind> kind = ParsePartitionKind(
      args.shards <= 1 ? "none" : args.partition);
  if (!kind.ok()) {
    std::fprintf(stderr, "mbqd: %s\n", kind.status().message().c_str());
    return 2;
  }
  if (args.shard_id >= args.shards) {
    std::fprintf(stderr, "mbqd: --shard-id=%u out of range (--shards=%u)\n",
                 args.shard_id, args.shards);
    return 2;
  }

  twitter::Dataset full = twitter::GenerateDataset(SpecFromArgs(args));
  Partitioner partitioner(*kind, args.shards, args.users);
  SliceCounts counts;
  twitter::Dataset slice =
      MakeShardSlice(full, partitioner, args.shard_id, &counts);
  std::fprintf(stderr,
               "mbqd: shard %u/%u (%s): %llu owned users, %llu tweets, "
               "%llu mentions, %llu tags (%llu cross-shard retweets "
               "dropped)\n",
               args.shard_id, args.shards, PartitionKindName(*kind),
               static_cast<unsigned long long>(counts.owned_users),
               static_cast<unsigned long long>(counts.tweets),
               static_cast<unsigned long long>(counts.mentions),
               static_cast<unsigned long long>(counts.tags),
               static_cast<unsigned long long>(counts.dropped_retweets));

  // In-memory stores with the instant disk profile: the daemon's job is
  // serving, not simulating device latency.
  std::unique_ptr<nodestore::GraphDb> db;
  std::unique_ptr<bitmapstore::Graph> graph;
  twitter::BitmapHandles bitmap_handles{};
  EngineOptions options;
  if (args.engine == "nodestore") {
    nodestore::GraphDbOptions ndb;
    ndb.disk_profile = storage::DiskProfile::Instant();
    ndb.wal_enabled = false;
    db = std::make_unique<nodestore::GraphDb>(ndb);
    Result<twitter::NodestoreHandles> handles =
        twitter::LoadIntoNodestore(slice, db.get());
    if (!handles.ok()) {
      std::fprintf(stderr, "mbqd: load failed: %s\n",
                   handles.status().ToString().c_str());
      return 2;
    }
    options.db = db.get();
  } else {
    bitmapstore::GraphOptions bg;
    bg.disk_profile = storage::DiskProfile::Instant();
    graph = std::make_unique<bitmapstore::Graph>(bg);
    Result<twitter::BitmapHandles> handles =
        twitter::LoadIntoBitmapstore(slice, graph.get());
    if (!handles.ok()) {
      std::fprintf(stderr, "mbqd: load failed: %s\n",
                   handles.status().ToString().c_str());
      return 2;
    }
    bitmap_handles = *handles;
    options.graph = graph.get();
    options.handles = &bitmap_handles;
  }
  options.threads = args.threads;
  Result<std::unique_ptr<MicroblogEngine>> engine = OpenEngine(
      args.engine == "nodestore" ? EngineKind::kNodestore
                                 : EngineKind::kBitmap,
      options);
  if (!engine.ok()) {
    std::fprintf(stderr, "mbqd: engine failed: %s\n",
                 engine.status().ToString().c_str());
    return 2;
  }

  rpc::HelloReply info;
  info.shard_id = args.shard_id;
  info.num_shards = args.shards;
  info.partition = static_cast<uint8_t>(*kind);
  info.num_users = args.users;
  info.engine = (*engine)->name();

  // Nodestore shards expose their CypherSession for remote mini-Cypher;
  // bitmap shards answer kQuery with NotImplemented.
  ShardService::QueryFn query_fn;
  if (args.engine == "nodestore") {
    auto* ns = static_cast<NodestoreEngine*>(engine->get());
    query_fn = [ns](const rpc::QueryRequest& req)
        -> Result<rpc::QueryReply> {
      cypher::QueryResult result;
      MBQ_ASSIGN_OR_RETURN(result, ns->session().Run(req.text));
      rpc::QueryReply reply;
      reply.columns = std::move(result.columns);
      reply.rows.reserve(result.rows.size());
      for (const cypher::Row& row : result.rows) {
        std::vector<common::Value> out;
        out.reserve(row.size());
        for (const cypher::RtValue& v : row) {
          // Scalars cross the wire typed; nodes/rels/paths carry
          // shard-local ids, so they are rendered to display strings.
          if (v.kind == cypher::RtValue::Kind::kValue) {
            out.push_back(v.value);
          } else if (v.kind == cypher::RtValue::Kind::kNull) {
            out.push_back(common::Value::Null());
          } else {
            out.push_back(common::Value::String(v.ToString()));
          }
        }
        reply.rows.push_back(std::move(out));
      }
      return reply;
    };
  }

  ShardService service(engine->get(), info, std::move(query_fn));
  rpc::RpcServer::Options server_options;
  server_options.port = args.port;
  Result<std::unique_ptr<rpc::RpcServer>> server = rpc::RpcServer::Start(
      server_options,
      [&service](const rpc::Frame& request) { return service.Handle(request); });
  if (!server.ok()) {
    std::fprintf(stderr, "mbqd: %s\n", server.status().message().c_str());
    return 2;
  }
  std::unique_ptr<mbq::obs::StatsServer> stats = MaybeServe(args);
  // cluster_local.sh greps this exact line for the resolved port.
  std::fprintf(stderr, "mbqd: shard %u listening on 127.0.0.1:%u\n",
               args.shard_id, static_cast<unsigned>((*server)->port()));
  WaitForSignal();
  return 0;
}

int RunAggregator(const Args& args) {
  using namespace mbq;        // NOLINT(build/namespaces)
  using namespace mbq::core;  // NOLINT(build/namespaces)

  mbq::obs::SetProcessRole("aggregator");
  if (args.shard_addresses.empty()) {
    std::fprintf(stderr, "mbqd: --aggregate needs at least one --shard=\n");
    return 2;
  }
  EngineOptions options;
  options.shard_addresses = args.shard_addresses;
  // Shards may still be loading their slice; retry the dial for ~30s.
  Result<std::unique_ptr<MicroblogEngine>> engine =
      Status::Internal("unreached");
  for (int attempt = 0; attempt < 120; ++attempt) {
    engine = OpenEngine(EngineKind::kRemote, options);
    if (engine.ok() || !engine.status().IsIoError()) break;
    struct timespec ts = {0, 250 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  if (!engine.ok()) {
    std::fprintf(stderr, "mbqd: cannot reach shards: %s\n",
                 engine.status().ToString().c_str());
    return 2;
  }
  auto* remote = static_cast<RemoteEngine*>(engine->get());
  std::fprintf(stderr, "mbqd: aggregating %u shards (%s partition)\n",
               remote->num_shards(),
               PartitionKindName(remote->partitioner().kind()));

  // The aggregator answers hello as one unpartitioned shard: clients —
  // including another RemoteEngine — need not know they are talking to
  // a fan-out plane rather than a whole-dataset daemon.
  rpc::HelloReply info;
  info.shard_id = 0;
  info.num_shards = 1;
  info.partition = static_cast<uint8_t>(PartitionKind::kNone);
  info.num_users = remote->partitioner().num_users();
  info.engine = "aggregator(" + std::to_string(remote->num_shards()) + ")";

  ShardService service(
      engine->get(), info,
      [remote](const rpc::QueryRequest& req) { return remote->Query(req); });
  rpc::RpcServer::Options server_options;
  server_options.port = args.port;
  Result<std::unique_ptr<rpc::RpcServer>> server = rpc::RpcServer::Start(
      server_options,
      [&service](const rpc::Frame& request) { return service.Handle(request); });
  if (!server.ok()) {
    std::fprintf(stderr, "mbqd: %s\n", server.status().message().c_str());
    return 2;
  }
  std::unique_ptr<mbq::obs::StatsServer> stats = MaybeServe(args);
  std::fprintf(stderr, "mbqd: aggregator listening on 127.0.0.1:%u\n",
               static_cast<unsigned>((*server)->port()));
  WaitForSignal();
  return 0;
}

int RunVerify(const Args& args) {
  using namespace mbq;        // NOLINT(build/namespaces)
  using namespace mbq::core;  // NOLINT(build/namespaces)

  mbq::obs::SetProcessRole("verify");
  if (args.shard_addresses.empty()) {
    std::fprintf(stderr, "mbqd: --verify needs at least one --shard=\n");
    return 2;
  }

  // Reference: the full dataset in one local nodestore engine.
  twitter::Dataset full = twitter::GenerateDataset(SpecFromArgs(args));
  nodestore::GraphDbOptions ndb;
  ndb.disk_profile = storage::DiskProfile::Instant();
  ndb.wal_enabled = false;
  nodestore::GraphDb db(ndb);
  Result<twitter::NodestoreHandles> handles =
      twitter::LoadIntoNodestore(full, &db);
  if (!handles.ok()) {
    std::fprintf(stderr, "mbqd: reference load failed: %s\n",
                 handles.status().ToString().c_str());
    return 2;
  }
  EngineOptions local_options;
  local_options.db = &db;
  Result<std::unique_ptr<MicroblogEngine>> local =
      OpenEngine(EngineKind::kNodestore, local_options);
  if (!local.ok()) {
    std::fprintf(stderr, "mbqd: reference engine failed: %s\n",
                 local.status().ToString().c_str());
    return 2;
  }

  // Candidate: the remote topology (shards directly, or one aggregator).
  EngineOptions remote_options;
  remote_options.shard_addresses = args.shard_addresses;
  Result<std::unique_ptr<MicroblogEngine>> remote =
      Status::Internal("unreached");
  for (int attempt = 0; attempt < 120; ++attempt) {
    remote = OpenEngine(EngineKind::kRemote, remote_options);
    if (remote.ok() || !remote.status().IsIoError()) break;
    struct timespec ts = {0, 250 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  if (!remote.ok()) {
    std::fprintf(stderr, "mbqd: cannot reach shards: %s\n",
                 remote.status().ToString().c_str());
    return 2;
  }

  int failures = 0;
  auto expect_rows = [&](Result<ValueRows> want, Result<ValueRows> got,
                         const std::string& what) {
    if (!want.ok() || !got.ok()) {
      // NotFound-vs-NotFound is agreement (e.g. unknown hashtag).
      if (want.status().code() == got.status().code()) return;
      ++failures;
      std::fprintf(stderr, "mbqd: DIVERGED %s: local=%s remote=%s\n",
                   what.c_str(), want.status().ToString().c_str(),
                   got.status().ToString().c_str());
      return;
    }
    SortRows(&*want);
    SortRows(&*got);
    if (*want != *got) {
      ++failures;
      std::fprintf(stderr,
                   "mbqd: DIVERGED %s: local %zu rows, remote %zu rows\n",
                   what.c_str(), want->size(), got->size());
    }
  };

  MicroblogEngine& ref = **local;
  MicroblogEngine& agg = **remote;
  const int64_t num_users = static_cast<int64_t>(full.users.size());
  const int64_t kAll = int64_t{1} << 30;

  // Fixed sweep: every call once with representative anchors.
  auto by_mentions = UsersByMentionCount(full);
  int64_t hot = by_mentions.empty() ? 0 : by_mentions.back().second;
  auto tags = HashtagsByUse(full);
  expect_rows(ref.SelectUsersByFollowerCount(10),
              agg.SelectUsersByFollowerCount(10), "Q1.1");
  for (int64_t uid : {int64_t{0}, num_users / 2}) {
    std::string at = "@" + std::to_string(uid);
    expect_rows(ref.FolloweesOf(uid), agg.FolloweesOf(uid), "Q2.1" + at);
    expect_rows(ref.TweetsOfFollowees(uid), agg.TweetsOfFollowees(uid),
                "Q2.2" + at);
    expect_rows(ref.HashtagsUsedByFollowees(uid),
                agg.HashtagsUsedByFollowees(uid), "Q2.3" + at);
    expect_rows(ref.RecommendFolloweesOfFollowees(uid, kAll),
                agg.RecommendFolloweesOfFollowees(uid, kAll), "Q4.1" + at);
    expect_rows(ref.RecommendFollowersOfFollowees(uid, kAll),
                agg.RecommendFollowersOfFollowees(uid, kAll), "Q4.2" + at);
  }
  expect_rows(ref.TopCoMentionedUsers(hot, kAll),
              agg.TopCoMentionedUsers(hot, kAll), "Q3.1");
  if (!tags.empty()) {
    expect_rows(ref.TopCoOccurringHashtags(tags.back().second, kAll),
                agg.TopCoOccurringHashtags(tags.back().second, kAll),
                "Q3.2");
  }
  expect_rows(ref.CurrentInfluence(hot, kAll), agg.CurrentInfluence(hot, kAll),
              "Q5.1");
  expect_rows(ref.PotentialInfluence(hot, kAll),
              agg.PotentialInfluence(hot, kAll), "Q5.2");

  // Randomized sweep: the differential test's call mix.
  Rng rng(args.seed * 0x9E3779B97F4A7C15ull + 1);
  for (int call = 0; call < args.calls; ++call) {
    std::string label = "call#" + std::to_string(call);
    int64_t uid = static_cast<int64_t>(rng.NextBounded(num_users));
    switch (rng.NextBounded(11)) {
      case 0: {
        int64_t threshold = static_cast<int64_t>(rng.NextBounded(30));
        expect_rows(ref.SelectUsersByFollowerCount(threshold),
                    agg.SelectUsersByFollowerCount(threshold),
                    label + " Q1.1");
        break;
      }
      case 1:
        expect_rows(ref.FolloweesOf(uid), agg.FolloweesOf(uid),
                    label + " Q2.1");
        break;
      case 2:
        expect_rows(ref.TweetsOfFollowees(uid), agg.TweetsOfFollowees(uid),
                    label + " Q2.2");
        break;
      case 3:
        expect_rows(ref.HashtagsUsedByFollowees(uid),
                    agg.HashtagsUsedByFollowees(uid), label + " Q2.3");
        break;
      case 4:
        expect_rows(ref.TopCoMentionedUsers(uid, kAll),
                    agg.TopCoMentionedUsers(uid, kAll), label + " Q3.1");
        break;
      case 5: {
        std::string tag = tags.empty()
                              ? "missing"
                              : tags[rng.NextBounded(tags.size())].second;
        expect_rows(ref.TopCoOccurringHashtags(tag, kAll),
                    agg.TopCoOccurringHashtags(tag, kAll), label + " Q3.2");
        break;
      }
      case 6:
        expect_rows(ref.RecommendFolloweesOfFollowees(uid, kAll),
                    agg.RecommendFolloweesOfFollowees(uid, kAll),
                    label + " Q4.1");
        break;
      case 7:
        expect_rows(ref.RecommendFollowersOfFollowees(uid, kAll),
                    agg.RecommendFollowersOfFollowees(uid, kAll),
                    label + " Q4.2");
        break;
      case 8:
        expect_rows(ref.CurrentInfluence(uid, kAll),
                    agg.CurrentInfluence(uid, kAll), label + " Q5.1");
        break;
      case 9:
        expect_rows(ref.PotentialInfluence(uid, kAll),
                    agg.PotentialInfluence(uid, kAll), label + " Q5.2");
        break;
      case 10: {
        int64_t b = static_cast<int64_t>(rng.NextBounded(num_users));
        Result<int64_t> want = ref.ShortestPathLength(uid, b, 3);
        Result<int64_t> got = agg.ShortestPathLength(uid, b, 3);
        if (!want.ok() || !got.ok() || *want != *got) {
          ++failures;
          std::fprintf(stderr, "mbqd: DIVERGED %s Q6.1 %lld->%lld\n",
                       label.c_str(), static_cast<long long>(uid),
                       static_cast<long long>(b));
        }
        break;
      }
    }
  }

  if (failures != 0) {
    std::fprintf(stderr, "mbqd: verify FAILED: %d divergent calls\n",
                 failures);
    return 1;
  }
  std::fprintf(stderr,
               "mbqd: verify OK: remote agrees with the single-process "
               "engine on all calls (users=%llu seed=%llu)\n",
               static_cast<unsigned long long>(args.users),
               static_cast<unsigned long long>(args.seed));
  return 0;
}

int RunProbe(const Args& args) {
  using namespace mbq;        // NOLINT(build/namespaces)
  using namespace mbq::core;  // NOLINT(build/namespaces)

  Result<RemoteEngine::ShardAddress> addr = ParseShardAddress(args.probe);
  if (!addr.ok()) {
    std::fprintf(stderr, "mbqd: %s\n", addr.status().message().c_str());
    return 2;
  }
  // Prefer the stats server's liveness endpoint: it answers without a
  // dataset hello or an RPC dial. An RPC port rejects the HTTP bytes
  // immediately (bad frame magic), so the fallback is fast.
  std::string health;
  if (mbq::obs::HttpGet(addr->host, addr->port, "/healthz", &health)) {
    std::fwrite(health.data(), 1, health.size(), stdout);
    return 0;
  }
  rpc::RpcClient::Options options;
  options.host = addr->host;
  options.port = addr->port;
  options.timeout_millis = 5000;
  Result<std::unique_ptr<rpc::RpcClient>> client =
      rpc::RpcClient::Connect(options);
  if (!client.ok()) {
    std::fprintf(stderr, "mbqd: %s\n", client.status().ToString().c_str());
    return 2;
  }
  const rpc::HelloReply& info = (*client)->server_info();
  Status pinged = (*client)->Ping();
  std::printf(
      "shard %u/%u partition=%s users=%llu engine=\"%s\" ping=%s\n",
      info.shard_id, info.num_shards,
      PartitionKindName(static_cast<PartitionKind>(info.partition)),
      static_cast<unsigned long long>(info.num_users), info.engine.c_str(),
      pinged.ok() ? "ok" : pinged.ToString().c_str());
  return pinged.ok() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  switch (args.role) {
    case Args::Role::kShard: return RunShard(args);
    case Args::Role::kAggregate: return RunAggregator(args);
    case Args::Role::kVerify: return RunVerify(args);
    case Args::Role::kProbe: return RunProbe(args);
  }
  return 2;
}
