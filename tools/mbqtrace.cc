// mbqtrace — the cross-process trace stitcher (docs/OBSERVABILITY.md).
//
//   ./mbqtrace --from=H:P [--from=H:P ...] [--trace=HEX32] [--out=FILE]
//              [--require-processes=N]
//
// Fetches /trace.json from every named stats server (the aggregator and
// each shard daemon), picks one trace id — the one whose spans appear
// in the most distinct processes, or the id given with --trace= — and
// emits a single merged Chrome trace_event JSON on stdout (or --out).
// Spans keep their real pids, get process_name metadata from each
// daemon's role, and sit on the shared unix-microsecond timeline (the
// recorders pin wall-clock starts at record time), so an RPC client
// span visually encloses its server-side child even though the two
// halves were captured in different processes. Every event carries
// trace_id / span_id / parent_span_id in its args for exact parent
// matching in the Perfetto UI.
//
// --require-processes=N exits non-zero unless the chosen trace has
// spans from at least N distinct processes — the trace-smoke gate.
//
// Exit status: 0 success, 1 stitch assertion failed, 2 usage/fetch
// error.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/http_client.h"

namespace {

struct Options {
  std::vector<std::string> from;  // host:port stats endpoints
  std::string trace_id;           // 32-hex filter; empty = auto-pick
  std::string out_path;           // empty = stdout
  int require_processes = 0;
};

struct Span {
  std::string process;  // role of the process that recorded it
  uint64_t pid = 0;
  std::string name;
  std::string cat;
  uint32_t tid = 0;
  std::string trace_id;
  std::string span_id;
  std::string parent_span_id;
  uint64_t start_unix_us = 0;
  double dur_us = 0;
};

// ------------------------------------------------ line-level JSON reads
// Same dialect as mbqtop: every object the stats server emits stays on
// one line, so a scanner with per-line field extraction is enough.

double NumberField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  size_t at = line.find(needle);
  if (at == std::string::npos) return NAN;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

std::string StringField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\": \"";
  size_t start = line.find(needle);
  if (start == std::string::npos) return "";
  start += needle.size();
  size_t end = start;
  while (end < line.size()) {
    if (line[end] == '"' && line[end - 1] != '\\') break;
    ++end;
  }
  return mbq::obs::JsonUnescape(line.substr(start, end - start));
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    out.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return out;
}

/// Parses one /trace.json payload into spans tagged with the process
/// role and pid from its header lines.
void ParseTraceJson(const std::string& json, std::vector<Span>* spans) {
  std::string process = "?";
  uint64_t pid = 0;
  for (const std::string& line : Lines(json)) {
    std::string role = StringField(line, "process");
    if (!role.empty()) process = role;
    double p = NumberField(line, "pid");
    if (p == p && pid == 0) pid = static_cast<uint64_t>(p);
    std::string span_id = StringField(line, "span_id");
    if (span_id.empty()) continue;
    Span s;
    s.process = process;
    s.pid = pid;
    s.name = StringField(line, "name");
    s.cat = StringField(line, "cat");
    s.tid = static_cast<uint32_t>(NumberField(line, "tid"));
    s.trace_id = StringField(line, "trace_id");
    s.span_id = span_id;
    s.parent_span_id = StringField(line, "parent_span_id");
    s.start_unix_us = static_cast<uint64_t>(NumberField(line, "start_unix_us"));
    s.dur_us = NumberField(line, "dur_us");
    spans->push_back(std::move(s));
  }
}

/// The trace id worth stitching: the one spanning the most distinct
/// processes, span count as the tie-break. Ignores untraced spans (all
/// zero ids).
std::string PickTraceId(const std::vector<Span>& spans) {
  std::map<std::string, std::set<std::string>> processes;
  std::map<std::string, size_t> counts;
  for (const Span& s : spans) {
    if (s.trace_id.empty() ||
        s.trace_id == "00000000000000000000000000000000") {
      continue;
    }
    processes[s.trace_id].insert(s.process);
    ++counts[s.trace_id];
  }
  std::string best;
  size_t best_procs = 0;
  size_t best_count = 0;
  for (const auto& [id, procs] : processes) {
    size_t count = counts[id];
    if (procs.size() > best_procs ||
        (procs.size() == best_procs && count > best_count)) {
      best = id;
      best_procs = procs.size();
      best_count = count;
    }
  }
  return best;
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--from=")) {
      options->from.emplace_back(v);
    } else if (const char* v = value_of("--trace=")) {
      options->trace_id = v;
    } else if (const char* v = value_of("--out=")) {
      options->out_path = v;
    } else if (const char* v = value_of("--require-processes=")) {
      options->require_processes = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (options->from.empty()) {
    std::fprintf(
        stderr,
        "usage: mbqtrace --from=HOST:PORT [--from=...] [--trace=HEX32]\n"
        "                [--out=FILE] [--require-processes=N]\n"
        "(each --from is a stats-server address; the aggregator plus every\n"
        " shard daemon gives the full cross-process picture)\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) return 2;

  std::vector<Span> spans;
  for (const std::string& endpoint : options.from) {
    size_t colon = endpoint.rfind(':');
    std::string host =
        colon == std::string::npos ? "127.0.0.1" : endpoint.substr(0, colon);
    unsigned long port = std::strtoul(
        endpoint.c_str() + (colon == std::string::npos ? 0 : colon + 1),
        nullptr, 10);
    if (port == 0 || port > 65535) {
      std::fprintf(stderr, "mbqtrace: bad --from address: %s\n",
                   endpoint.c_str());
      return 2;
    }
    std::string body;
    if (!mbq::obs::HttpGet(host, static_cast<uint16_t>(port), "/trace.json",
                           &body)) {
      std::fprintf(stderr, "mbqtrace: GET /trace.json from %s failed\n",
                   endpoint.c_str());
      return 2;
    }
    ParseTraceJson(body, &spans);
  }

  std::string trace_id =
      options.trace_id.empty() ? PickTraceId(spans) : options.trace_id;
  if (trace_id.empty()) {
    std::fprintf(stderr, "mbqtrace: no traced spans in any process\n");
    return 1;
  }

  std::vector<Span> picked;
  for (const Span& s : spans) {
    if (s.trace_id == trace_id) picked.push_back(s);
  }
  if (picked.empty()) {
    std::fprintf(stderr, "mbqtrace: no spans for trace %s\n",
                 trace_id.c_str());
    return 1;
  }
  std::sort(picked.begin(), picked.end(), [](const Span& a, const Span& b) {
    return a.start_unix_us < b.start_unix_us;
  });

  std::set<std::string> stitched_processes;
  for (const Span& s : picked) stitched_processes.insert(s.process);
  std::fprintf(stderr, "mbqtrace: trace %s: %zu spans from %zu processes\n",
               trace_id.c_str(), picked.size(), stitched_processes.size());
  for (const std::string& p : stitched_processes) {
    std::fprintf(stderr, "mbqtrace:   %s\n", p.c_str());
  }
  if (options.require_processes > 0 &&
      stitched_processes.size() <
          static_cast<size_t>(options.require_processes)) {
    std::fprintf(stderr,
                 "mbqtrace: FAILED: trace spans %zu processes, need %d\n",
                 stitched_processes.size(), options.require_processes);
    return 1;
  }

  // Chrome trace_event JSON: per-process metadata names the track after
  // the daemon's role; span starts shift to a zero origin at the
  // earliest span so the UI opens at t=0.
  uint64_t origin_us = picked.front().start_unix_us;
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  std::map<uint64_t, std::string> roles;
  for (const Span& s : picked) roles.emplace(s.pid, s.process);
  bool first = true;
  for (const auto& [pid, role] : roles) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
           std::to_string(pid) + ", \"args\": {\"name\": \"" +
           mbq::obs::JsonEscape(role) + "\"}}";
  }
  for (const Span& s : picked) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\"ph\": \"X\", \"ts\": %llu, \"dur\": %.3f, "
                  "\"pid\": %llu, \"tid\": %u",
                  static_cast<unsigned long long>(s.start_unix_us - origin_us),
                  s.dur_us, static_cast<unsigned long long>(s.pid), s.tid);
    out += ",\n{\"name\": \"" + mbq::obs::JsonEscape(s.name) +
           "\", \"cat\": \"" + mbq::obs::JsonEscape(s.cat) + "\", " + buf +
           ", \"args\": {\"trace_id\": \"" + s.trace_id +
           "\", \"span_id\": \"" + s.span_id + "\", \"parent_span_id\": \"" +
           s.parent_span_id + "\"}}";
  }
  out += "\n]}\n";

  if (options.out_path.empty()) {
    std::fwrite(out.data(), 1, out.size(), stdout);
  } else {
    std::FILE* f = std::fopen(options.out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "mbqtrace: cannot write %s\n",
                   options.out_path.c_str());
      return 2;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "mbqtrace: wrote %s\n", options.out_path.c_str());
  }
  return 0;
}
