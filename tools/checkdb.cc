// checkdb — storage fsck for both engines (src/core/check.h).
//
// Generates a microblog graph, loads it into the selected engine(s),
// optionally injects a storage fault, then walks every structural
// invariant the engines maintain: relationship-chain consistency,
// record-pointer bounds and index completeness in the record store;
// bitmap cardinalities, object-table agreement and mutual src/dst
// adjacency in the bitmap store.
//
// A third section exercises the live write path (docs/WRITES.md): it
// opens a writable engine over the same crawl, drives a scripted churn
// of follows/unfollows/posts/mentions through the WAL, then validates
// delta-over-base consistency — tombstone sanity, journal monotonicity,
// read-back visibility of every touched pair — and decodes the WAL
// independently to prove WAL/delta agreement.
//
//   ./checkdb [options]
//     --engine=nodestore|bitmapstore|both   engines to check (both)
//     --users=N                             graph size (500)
//     --partitioned                         nodestore semantic partitioning
//     --max-issues=N                        issues materialized (64)
//     --no-writes                           skip the write-path section
//     --corrupt=FAULT                       inject a fault first:
//         rel-chain     nodestore: point a chain pointer at its own record
//         type-count    bitmapstore: skew a cached type count by +3
//         adjacency     bitmapstore: phantom edge in an adjacency bitmap
//         wal-tail      write path: garbage bytes appended to the WAL
//     --metrics                             print the check.* metric snapshot
//     --serve[=PORT]                        embedded stats server (/metrics,
//                                           /queries, /slow, /trace) while
//                                           the check runs
//
// Exit status: 0 when every checked store is clean, 1 when corruption
// was found, 2 on usage or load errors.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/check.h"
#include "core/engine.h"
#include "obs/httpd.h"
#include "obs/metrics.h"
#include "store/delta/write_batch.h"
#include "twitter/dataset.h"
#include "twitter/loaders.h"

namespace {

struct Args {
  bool nodestore = true;
  bool bitmapstore = true;
  uint64_t users = 500;
  bool partitioned = false;
  bool write_path = true;
  size_t max_issues = 64;
  std::string corrupt;  // empty = none
  bool metrics = false;
  bool serve = false;
  uint16_t serve_port = 0;  // 0 = ephemeral
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--engine=")) {
      args->nodestore = std::string(v) != "bitmapstore";
      args->bitmapstore = std::string(v) != "nodestore";
      if (std::string(v) != "nodestore" && std::string(v) != "bitmapstore" &&
          std::string(v) != "both") {
        std::fprintf(stderr, "unknown engine: %s\n", v);
        return false;
      }
    } else if (const char* v = value_of("--users=")) {
      args->users = std::strtoull(v, nullptr, 10);
      if (args->users < 10) args->users = 10;
    } else if (const char* v = value_of("--max-issues=")) {
      args->max_issues = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--corrupt=")) {
      args->corrupt = v;
      if (args->corrupt != "rel-chain" && args->corrupt != "type-count" &&
          args->corrupt != "adjacency" && args->corrupt != "wal-tail") {
        std::fprintf(stderr, "unknown fault: %s\n", v);
        return false;
      }
    } else if (const char* v = value_of("--serve=")) {
      char* end = nullptr;
      unsigned long port = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || port > 65535) {
        std::fprintf(stderr, "bad --serve port: %s\n", v);
        return false;
      }
      args->serve = true;
      args->serve_port = static_cast<uint16_t>(port);
    } else if (arg == "--serve") {
      args->serve = true;
    } else if (arg == "--partitioned") {
      args->partitioned = true;
    } else if (arg == "--no-writes") {
      args->write_path = false;
    } else if (arg == "--metrics") {
      args->metrics = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Points an in-use relationship's src_next at its own record: the chain
// walk cycles and the doubly-linked invariant breaks.
mbq::Status BreakRelChain(mbq::nodestore::GraphDb* db) {
  mbq::nodestore::RelId victim = mbq::nodestore::kInvalidRel;
  mbq::nodestore::RelRecord victim_rec;
  MBQ_RETURN_IF_ERROR(db->ForEachRawRel(
      [&](mbq::nodestore::RelId id, const mbq::nodestore::RelRecord& rec) {
        if (!rec.in_use || rec.src == rec.dst) return true;
        victim = id;
        victim_rec = rec;
        return false;
      }));
  if (victim == mbq::nodestore::kInvalidRel) {
    return mbq::Status::NotFound("no relationship to corrupt");
  }
  victim_rec.src_next = victim;
  std::printf("injected fault: rel %llu src_next -> itself\n",
              static_cast<unsigned long long>(victim));
  return db->RawPutRelRecord(victim, victim_rec);
}

// Adds an existing follows edge to its head's *outgoing* adjacency — the
// edge's tail is someone else, so the mutual-agreement pass flags it.
mbq::Status BreakAdjacency(mbq::bitmapstore::Graph* graph,
                           mbq::bitmapstore::TypeId follows) {
  MBQ_ASSIGN_OR_RETURN(mbq::bitmapstore::Objects edges,
                       graph->Select(follows));
  for (mbq::bitmapstore::Oid edge : edges.ToVector()) {
    mbq::bitmapstore::Oid tail = mbq::bitmapstore::kInvalidOid;
    mbq::bitmapstore::Oid head = mbq::bitmapstore::kInvalidOid;
    graph->RawEdgeEndpoints(edge, &tail, &head);
    if (tail == head) continue;
    graph->CorruptAdjacencyForTest(follows, head, edge);
    std::printf("injected fault: edge %u added to node %u's outgoing "
                "adjacency\n",
                edge, head);
    return mbq::Status::OK();
  }
  return mbq::Status::NotFound("no edge to corrupt");
}

// Scripted churn for the write-path section: every op kind, including
// tombstones over both freshly created and bulk-loaded follows edges,
// plus one packed batch — deterministic, so reruns check the same graph.
mbq::Status DriveScriptedChurn(mbq::core::WritableEngine* writer,
                               const mbq::twitter::Dataset& dataset) {
  const int64_t users = static_cast<int64_t>(dataset.users.size());
  const int64_t tweets = static_cast<int64_t>(dataset.tweets.size());
  auto pair = [users](int64_t i) {
    int64_t src = i % users;
    int64_t dst = (i * 7 + 1) % users;
    if (dst == src) dst = (dst + 1) % users;
    return std::make_pair(src, dst);
  };
  for (int64_t i = 0; i < 40; ++i) {
    auto [src, dst] = pair(i);
    MBQ_RETURN_IF_ERROR(writer->Follow(src, dst));
  }
  for (int64_t i = 0; i < 10; ++i) {
    MBQ_RETURN_IF_ERROR(
        writer->PostTweet(i % users, "checkdb tweet " + std::to_string(i)));
    if (tweets > 0) {
      MBQ_RETURN_IF_ERROR(writer->AddMention(i % tweets, (i * 3 + 2) % users));
    }
  }
  for (int64_t i = 0; i < 10; ++i) {  // tombstone just-created edges
    auto [src, dst] = pair(i);
    MBQ_RETURN_IF_ERROR(writer->Unfollow(src, dst));
  }
  for (size_t i = 0; i < 5 && i < dataset.follows.size(); ++i) {
    MBQ_RETURN_IF_ERROR(  // tombstone bulk-loaded edges
        writer->Unfollow(dataset.follows[i].first, dataset.follows[i].second));
  }
  // A packed batch: group commits share the single-op path.
  mbq::store::WriteBatch batch;
  batch.PostTweet(0, "checkdb group commit").Follow(0, 1 % users);
  return writer->Commit(std::move(batch));
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  std::unique_ptr<mbq::obs::StatsServer> stats;
  if (args.serve) {
    mbq::obs::ServeOptions serve_options;
    serve_options.port = args.serve_port;
    auto server = mbq::obs::StatsServer::Start(serve_options);
    if (!server.ok()) {
      std::fprintf(stderr, "stats server failed to start: %s\n",
                   server.status().message().c_str());
      return 2;
    }
    stats = std::move(server).value();
    std::fprintf(stderr, "stats server listening on http://%s:%u/\n",
                 stats->bind_address().c_str(),
                 static_cast<unsigned>(stats->port()));
  } else {
    stats = mbq::obs::MaybeServeFromEnv();
  }

  std::printf("generating a %llu-user microblog graph...\n",
              static_cast<unsigned long long>(args.users));
  mbq::twitter::DatasetSpec spec;
  spec.num_users = args.users;
  spec.retweet_fraction = 0.15;
  auto dataset = mbq::twitter::GenerateDataset(spec);

  mbq::core::CheckOptions options;
  options.max_issues = args.max_issues;
  int corrupt_stores = 0;

  if (args.nodestore) {
    mbq::nodestore::GraphDbOptions db_options;
    db_options.semantic_partitioning = args.partitioned;
    mbq::nodestore::GraphDb db(db_options);
    auto handles = mbq::twitter::LoadIntoNodestore(dataset, &db);
    if (!handles.ok()) {
      std::fprintf(stderr, "nodestore load failed: %s\n",
                   handles.status().ToString().c_str());
      return 2;
    }
    if (args.corrupt == "rel-chain") {
      auto st = BreakRelChain(&db);
      if (!st.ok()) {
        std::fprintf(stderr, "fault injection failed: %s\n",
                     st.ToString().c_str());
        return 2;
      }
    }
    auto report = mbq::core::CheckNodestore(&db, options);
    if (!report.ok()) {
      std::fprintf(stderr, "nodestore check failed: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    std::printf("--- nodestore%s ---\n%s",
                args.partitioned ? " (partitioned)" : "",
                report->ToText().c_str());
    if (!report->ok()) ++corrupt_stores;
  }

  if (args.bitmapstore) {
    mbq::bitmapstore::Graph graph;
    auto handles = mbq::twitter::LoadIntoBitmapstore(dataset, &graph);
    if (!handles.ok()) {
      std::fprintf(stderr, "bitmapstore load failed: %s\n",
                   handles.status().ToString().c_str());
      return 2;
    }
    if (args.corrupt == "type-count") {
      graph.CorruptTypeCountForTest(handles->user, 3);
      std::printf("injected fault: user type count skewed by +3\n");
    } else if (args.corrupt == "adjacency") {
      auto st = BreakAdjacency(&graph, handles->follows);
      if (!st.ok()) {
        std::fprintf(stderr, "fault injection failed: %s\n",
                     st.ToString().c_str());
        return 2;
      }
    }
    auto report = mbq::core::CheckBitmapstore(&graph, options);
    if (!report.ok()) {
      std::fprintf(stderr, "bitmapstore check failed: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    std::printf("--- bitmapstore ---\n%s", report->ToText().c_str());
    if (!report->ok()) ++corrupt_stores;
  }

  if (args.write_path) {
    char wal_template[] = "/tmp/checkdb-wal-XXXXXX";
    char* wal_dir = ::mkdtemp(wal_template);
    if (wal_dir == nullptr) {
      std::fprintf(stderr, "cannot create a WAL scratch directory\n");
      return 2;
    }
    const std::string wal_path = std::string(wal_dir) + "/delta.wal";
    auto cleanup = [&] {
      ::unlink(wal_path.c_str());
      ::rmdir(wal_dir);
    };
    mbq::nodestore::GraphDb db;
    auto handles = mbq::twitter::LoadIntoNodestore(dataset, &db);
    if (!handles.ok()) {
      std::fprintf(stderr, "write-path load failed: %s\n",
                   handles.status().ToString().c_str());
      cleanup();
      return 2;
    }
    mbq::core::EngineOptions engine_options;
    engine_options.db = &db;
    engine_options.enable_writes = true;
    engine_options.dataset = &dataset;
    engine_options.wal_dir = wal_dir;
    auto engine = mbq::core::OpenEngine(mbq::core::EngineKind::kNodestore,
                                        engine_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "write-path engine failed: %s\n",
                   engine.status().ToString().c_str());
      cleanup();
      return 2;
    }
    auto churned = DriveScriptedChurn((*engine)->AsWritable(), dataset);
    if (!churned.ok()) {
      std::fprintf(stderr, "write-path churn failed: %s\n",
                   churned.ToString().c_str());
      cleanup();
      return 2;
    }
    if (args.corrupt == "wal-tail") {
      std::ofstream tail(wal_path, std::ios::binary | std::ios::app);
      tail << "garbage: not a wal record";
      std::printf("injected fault: garbage bytes appended to the WAL tail\n");
    }
    auto report = mbq::core::CheckWritePath(**engine, dataset, wal_path,
                                            options);
    if (!report.ok()) {
      std::fprintf(stderr, "write-path check failed: %s\n",
                   report.status().ToString().c_str());
      cleanup();
      return 2;
    }
    std::printf("--- write path (delta over nodestore) ---\n%s",
                report->ToText().c_str());
    if (!report->ok()) ++corrupt_stores;
    cleanup();
  }

  if (args.metrics) {
    std::printf("%s",
                mbq::obs::MetricsRegistry::Default().Snapshot().ToText()
                    .c_str());
  }
  return corrupt_stores > 0 ? 1 : 0;
}
