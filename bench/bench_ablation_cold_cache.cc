// Ablation A4 (paper §4, "Problems with the cold cache"): first-run
// versus warmed-up execution times on the record store. The paper notes
// (1) the first run is significant even for small neighborhoods, (2) it
// grows dramatically with the source node's degree (a large portion of
// the graph is pulled into memory), and (3) disabling execution-plan
// caching makes the cold time worse still (recompilation).

#include <cstdio>

#include "bench/bench_common.h"
#include "util/clock.h"
#include "util/logging.h"

namespace mbq::bench {
namespace {

void Run() {
  uint64_t users = BenchUsers();
  std::printf("Ablation A4 — cold vs warm cache (%s users)\n\n",
              FormatCount(users).c_str());
  Testbed bed = BuildTestbed(users);
  uint32_t runs = BenchRuns();

  auto by_followees = core::UsersByFolloweeCount(bed.dataset);
  // Low-, mid- and high-degree sources.
  std::vector<std::pair<const char*, int64_t>> sources{
      {"low degree", by_followees[by_followees.size() / 10].second},
      {"mid degree", by_followees[by_followees.size() / 2].second},
      {"high degree", by_followees[by_followees.size() - 1].second},
  };

  std::vector<int> widths{14, 10, 14, 14, 14};
  PrintRow({"source", "degree", "cold (1st run)", "warm avg", "cold/warm"},
           widths);
  PrintRule(widths);

  for (const auto& [label, uid] : sources) {
    int64_t degree = 0;
    for (const auto& [metric, id] : by_followees) {
      if (id == uid) {
        degree = metric;
        break;
      }
    }
    // Cold: drop page caches, run once (plan already cached).
    MBQ_CHECK(bed.nodestore_engine->DropCaches().ok());
    auto timing = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(
              auto rows,
              bed.nodestore_engine->RecommendFolloweesOfFollowees(uid, 10));
          return rows.size();
        },
        /*warmup=*/1, runs, [&] { return bed.db->SimulatedIoNanos(); });
    MBQ_CHECK(timing.ok());
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  timing->avg_millis > 0
                      ? timing->first_run_millis / timing->avg_millis
                      : 0.0);
    PrintRow({label, FormatCount(degree),
              FormatMillis(timing->first_run_millis),
              FormatMillis(timing->avg_millis), ratio},
             widths);
  }

  // Warm-result-cache arm: the repeat-run latency of a Table 2 query with
  // the result cache off versus on. With the cache on, every measured run
  // after the first is a memoized hit — zero db hits, no simulated I/O —
  // which is the steady state of a read-mostly microblogging workload.
  std::printf("\nWarm repeat runs — Q4.1, high-degree source, result cache:\n");
  int64_t hot_uid = sources.back().second;
  auto repeat_avg_millis = [&](bool enabled) -> double {
    cypher::SessionOptions so;
    so.threads = 0;  // leave the thread setting alone
    so.result_cache = enabled;
    bed.nodestore()->Configure(so);
    auto timing = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(
              auto rows,
              bed.nodestore_engine->RecommendFolloweesOfFollowees(hot_uid, 10));
          return rows.size();
        },
        /*warmup=*/1, runs, [&] { return bed.db->SimulatedIoNanos(); });
    MBQ_CHECK(timing.ok());
    return timing->avg_millis;
  };
  double rc_off_ms = repeat_avg_millis(false);
  double rc_on_ms = repeat_avg_millis(true);
  auto rc_stats = bed.nodestore()->session().result_cache_stats();
  std::printf("  result cache off: %s/run\n",
              FormatMillis(rc_off_ms).c_str());
  std::printf("  result cache on : %s/run (%.1fx faster; %s hits, %s misses)\n",
              FormatMillis(rc_on_ms).c_str(),
              rc_on_ms > 0 ? rc_off_ms / rc_on_ms : 0.0,
              FormatCount(rc_stats.hits).c_str(),
              FormatCount(rc_stats.misses).c_str());
  // Back to the no-cache baseline for the compile-step measurement below.
  bed.nodestore()->Configure(cypher::SessionOptions{});

  // Plan-cache contribution, measured at the compile step itself: fetch
  // from cache versus lex+parse+plan from scratch.
  std::printf("\nPlan cache (compile step, 2000 preparations):\n");
  auto& session = bed.nodestore()->session();
  const std::string query = core::NodestoreEngine::kRecommendVariantB;
  const int kPrepares = 2000;
  auto prepare_cost_millis = [&](bool cached) -> double {
    session.SetPlanCacheEnabled(true);
    session.ClearPlanCache();
    MBQ_CHECK(session.Prepare(query).ok());  // populate once
    WallClock wall;
    uint64_t t0 = wall.NowNanos();
    for (int i = 0; i < kPrepares; ++i) {
      if (!cached) session.ClearPlanCache();
      MBQ_CHECK(session.Prepare(query).ok());
    }
    return static_cast<double>(wall.NowNanos() - t0) / 1e6;
  };
  double cached_ms = prepare_cost_millis(true);
  double fresh_ms = prepare_cost_millis(false);
  std::printf("  cache hit      : %.3f us/query\n",
              cached_ms * 1000.0 / kPrepares);
  std::printf("  full recompile : %.3f us/query (%.1fx)\n",
              fresh_ms * 1000.0 / kPrepares,
              cached_ms > 0 ? fresh_ms / cached_ms : 0.0);

  std::printf(
      "\nshape: the first (cold) run costs orders of magnitude more than "
      "warm runs, and the absolute warm-up time grows steeply with the "
      "source node's degree ('the time it takes to warm the cache "
      "dramatically increases'); skipping the plan cache adds the "
      "recompilation tax on every execution.\n");
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run();
  return 0;
}
