// Extension E2 (the paper's future work, §5): "a semantic-aware strategy
// to speed up the queries ... how semantically related nodes can be
// stored/partitioned when the queries are known." The record store can
// keep one relationship store file per relationship type; a chain walk
// over `follows` then reads pages holding only follows records instead
// of pages interleaving all five types. The win shows under a cold page
// cache, where wasted bytes per page translate directly into extra disk
// reads.

#include <cstdio>

#include "bench/bench_common.h"
#include <unordered_map>

#include "core/nodestore_engine.h"
#include "util/rng.h"
#include "util/logging.h"

namespace mbq::bench {
namespace {

struct Setup {
  std::unique_ptr<nodestore::GraphDb> db;
  std::unique_ptr<core::NodestoreEngine> engine;
};

/// Loads the dataset with relationships in *arrival order*: all edge
/// types shuffled together, as a live system would ingest them (a user's
/// posts, mentions and follows interleave in time). The stock bulk
/// loader ingests type by type, which accidentally pre-clusters the
/// shared store and hides the layout effect this experiment isolates.
Setup Build(const twitter::Dataset& dataset, bool partitioned) {
  Setup s;
  nodestore::GraphDbOptions options;
  options.wal_enabled = false;
  options.cache_bytes = 256ull << 20;
  options.semantic_partitioning = partitioned;
  s.db = std::make_unique<nodestore::GraphDb>(options);
  nodestore::GraphDb* db = s.db.get();
  auto h = *twitter::ResolveNodestoreHandles(db);

  using common::Value;
  std::unordered_map<int64_t, nodestore::NodeId> users, tweets, hashtags;
  for (const auto& u : dataset.users) {
    nodestore::NodeId id = *db->CreateNode(h.user);
    MBQ_CHECK(db->SetNodeProperty(id, h.uid, Value::Int(u.uid)).ok());
    MBQ_CHECK(db->SetNodeProperty(id, h.followers_count,
                                  Value::Int(u.followers_count))
                  .ok());
    users[u.uid] = id;
  }
  for (const auto& t : dataset.tweets) {
    nodestore::NodeId id = *db->CreateNode(h.tweet);
    MBQ_CHECK(db->SetNodeProperty(id, h.tid, Value::Int(t.tid)).ok());
    MBQ_CHECK(db->SetNodeProperty(id, h.text, Value::String(t.text)).ok());
    tweets[t.tid] = id;
  }
  for (const auto& ht : dataset.hashtags) {
    nodestore::NodeId id = *db->CreateNode(h.hashtag);
    MBQ_CHECK(db->SetNodeProperty(id, h.hid, Value::Int(ht.hid)).ok());
    hashtags[ht.hid] = id;
  }

  // Arrival order: tweets arrive in tid order, each carrying its posts /
  // mentions / tags / retweets edges, with the follow stream interleaved
  // between them — the temporal structure a live system ingests.
  struct Edge {
    nodestore::RelTypeId type;
    nodestore::NodeId src;
    nodestore::NodeId dst;
  };
  std::vector<Edge> edges;
  edges.reserve(dataset.NumEdges());
  std::unordered_map<int64_t, std::vector<int64_t>> mentions_of, tags_of,
      retweets_of;
  for (const auto& [tid, uid] : dataset.mentions) {
    mentions_of[tid].push_back(uid);
  }
  for (const auto& [tid, hid] : dataset.tags) tags_of[tid].push_back(hid);
  for (const auto& [re, orig] : dataset.retweets) {
    retweets_of[re].push_back(orig);
  }
  std::vector<std::pair<int64_t, int64_t>> follow_queue = dataset.follows;
  Rng rng(4242);  // identical arrival order for both layouts
  rng.Shuffle(follow_queue);
  size_t follows_per_tweet =
      dataset.tweets.empty()
          ? follow_queue.size()
          : (follow_queue.size() + dataset.tweets.size() - 1) /
                dataset.tweets.size();
  size_t next_follow = 0;
  for (const auto& t : dataset.tweets) {
    for (size_t k = 0; k < follows_per_tweet && next_follow < follow_queue.size();
         ++k, ++next_follow) {
      const auto& [a, b] = follow_queue[next_follow];
      edges.push_back({h.follows, users[a], users[b]});
    }
    edges.push_back({h.posts, users[t.poster_uid], tweets[t.tid]});
    for (int64_t uid : mentions_of[t.tid]) {
      edges.push_back({h.mentions, tweets[t.tid], users[uid]});
    }
    for (int64_t hid : tags_of[t.tid]) {
      edges.push_back({h.tags, tweets[t.tid], hashtags[hid]});
    }
    for (int64_t orig : retweets_of[t.tid]) {
      edges.push_back({h.retweets, tweets[t.tid], tweets[orig]});
    }
  }
  for (; next_follow < follow_queue.size(); ++next_follow) {
    const auto& [a, b] = follow_queue[next_follow];
    edges.push_back({h.follows, users[a], users[b]});
  }
  for (const Edge& e : edges) {
    MBQ_CHECK(db->CreateRelationship(e.type, e.src, e.dst).ok());
  }

  MBQ_CHECK(db->CreateIndex(h.user, h.uid, true).ok());
  MBQ_CHECK(db->CreateIndex(h.tweet, h.tid, true).ok());
  MBQ_CHECK(db->Flush().ok());
  s.engine = std::make_unique<core::NodestoreEngine>(s.db.get());
  return s;
}

void Run() {
  uint64_t users = BenchUsers();
  std::printf("Extension E2 — semantic-aware relationship partitioning "
              "(%s users)\n\n",
              FormatCount(users).c_str());
  twitter::Dataset dataset = twitter::GenerateDataset(BenchSpec(users));
  uint32_t runs = BenchRuns();

  Setup mixed = Build(dataset, /*partitioned=*/false);
  Setup split = Build(dataset, /*partitioned=*/true);

  auto by_followees = core::UsersByFolloweeCount(dataset);
  std::vector<int64_t> sample;
  for (double q : {0.5, 0.8, 0.95, 0.999}) {
    sample.push_back(
        by_followees[static_cast<size_t>(
                         static_cast<double>(by_followees.size() - 1) * q)]
            .second);
  }

  std::vector<int> widths{26, 14, 14, 10};
  PrintRow({"query (cold cache)", "mixed store", "per-type", "speedup"},
           widths);
  PrintRule(widths);

  auto measure_cold = [&](Setup& setup, const core::TimedQuery& q) {
    MBQ_CHECK(setup.engine->DropCaches().ok());
    auto timing = core::MeasureQuery(
        q, /*warmup=*/0, 1, [&] { return setup.db->SimulatedIoNanos(); });
    MBQ_CHECK(timing.ok());
    return timing->avg_millis;
  };

  // Q3.1 walks mention chains — mentions are ~3.5% of all relationships,
  // so in the shared store every cold page read returns ~96% irrelevant
  // records; the per-type store packs mentions densely. This is where
  // semantic partitioning pays.
  auto by_mentions = core::UsersByMentionCount(dataset);
  std::vector<int64_t> mention_sample;
  for (double q : {0.7, 0.9, 0.99, 1.0}) {
    mention_sample.push_back(
        by_mentions[std::min(by_mentions.size() - 1,
                             static_cast<size_t>(
                                 static_cast<double>(by_mentions.size() - 1) *
                                 q))]
            .second);
  }
  double mixed_total = 0;
  double split_total = 0;
  for (int64_t uid : mention_sample) {
    double mixed_ms = measure_cold(mixed, [&]() -> Result<uint64_t> {
      MBQ_ASSIGN_OR_RETURN(auto rows,
                           mixed.engine->TopCoMentionedUsers(uid, 1 << 30));
      return rows.size();
    });
    double split_ms = measure_cold(split, [&]() -> Result<uint64_t> {
      MBQ_ASSIGN_OR_RETURN(auto rows,
                           split.engine->TopCoMentionedUsers(uid, 1 << 30));
      return rows.size();
    });
    mixed_total += mixed_ms;
    split_total += split_ms;
    char label[64];
    std::snprintf(label, sizeof(label), "Q3.1 uid=%lld",
                  static_cast<long long>(uid));
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  split_ms > 0 ? mixed_ms / split_ms : 0.0);
    PrintRow({label, FormatMillis(mixed_ms), FormatMillis(split_ms), speedup},
             widths);
  }
  std::printf("\ncold-cache Q3.1 total: mixed %s vs per-type %s (%.2fx)\n",
              FormatMillis(mixed_total).c_str(),
              FormatMillis(split_total).c_str(),
              split_total > 0 ? mixed_total / split_total : 0.0);

  // Counterpoint: Q2.2 (follows + posts, both high-volume types, and the
  // arrival order gives the shared store *temporal* locality a user's
  // follows and posts share). Partitioning should NOT help here — the
  // "when the queries are known" qualifier in the paper's future work is
  // doing real work.
  double q22_mixed = 0;
  double q22_split = 0;
  for (int64_t uid : sample) {
    q22_mixed += measure_cold(mixed, [&]() -> Result<uint64_t> {
      MBQ_ASSIGN_OR_RETURN(auto rows, mixed.engine->TweetsOfFollowees(uid));
      return rows.size();
    });
    q22_split += measure_cold(split, [&]() -> Result<uint64_t> {
      MBQ_ASSIGN_OR_RETURN(auto rows, split.engine->TweetsOfFollowees(uid));
      return rows.size();
    });
  }
  double q22_ratio = q22_split > 0 ? q22_mixed / q22_split : 0.0;
  std::printf("cold-cache Q2.2 total: mixed %s vs per-type %s (%.2fx) — "
              "%s\n",
              FormatMillis(q22_mixed).c_str(),
              FormatMillis(q22_split).c_str(), q22_ratio,
              q22_ratio >= 1.0
                  ? "typed-chain selectivity outweighs the shared store's "
                    "temporal locality at this scale"
                  : "the shared store's temporal locality (a user's "
                    "follows and posts arrive together) wins at this "
                    "scale");

  // Warm behaviour: typed chain walks skip every other type's records in
  // the partitioned layout, so the record-access count (db hits)
  // collapses — the core benefit of relationship groups.
  auto warm = [&](Setup& setup, double* millis, uint64_t* hits) {
    setup.db->ResetDbHits();
    auto timing = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(auto rows,
                               setup.engine->TweetsOfFollowees(sample[1]));
          return rows.size();
        },
        2, runs, [&] { return setup.db->SimulatedIoNanos(); });
    MBQ_CHECK(timing.ok());
    *millis = timing->avg_millis;
    *hits = setup.db->db_hits() / (runs + 2);
  };
  double mixed_warm, split_warm;
  uint64_t mixed_hits, split_hits;
  warm(mixed, &mixed_warm, &mixed_hits);
  warm(split, &split_warm, &split_hits);
  std::printf("warm Q2.2: mixed %s (%s db hits) vs per-type %s (%s db "
              "hits) — typed chains skip the other types' records\n",
              FormatMillis(mixed_warm).c_str(),
              FormatCount(mixed_hits).c_str(),
              FormatMillis(split_warm).c_str(),
              FormatCount(split_hits).c_str());
  std::printf(
      "\nshape: partitioned chains win whenever the walk is type-"
      "selective (big db-hit and warm-time cuts); cold low-degree nodes "
      "pay one extra group-record read — the reason Neo4j applies "
      "relationship groups to dense nodes only.\n");

  // Results must agree regardless of layout.
  auto a = mixed.engine->RecommendFolloweesOfFollowees(sample[2], 1 << 30);
  auto b = split.engine->RecommendFolloweesOfFollowees(sample[2], 1 << 30);
  MBQ_CHECK(a.ok() && b.ok());
  std::printf("layouts agree on Q4.1: %s\n", *a == *b ? "yes" : "NO");
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run();
  return 0;
}
