// Ablation A3 (paper §4, "Overhead for aggregate operations"): the cost
// of the top-n machinery. On the declarative engine, "removing ordering,
// deduplication and limiting the number of results returned are all
// factors that contribute to performance gains". On the bitmap store,
// limiting cannot be pushed down at all: "the entire result set must be
// retrieved and filtered programmatically to display only the top-n
// rows", so top-10 costs the same as top-everything.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/logging.h"

namespace mbq::bench {
namespace {

void Run() {
  uint64_t users = BenchUsers();
  std::printf("Ablation A3 — top-n / ordering overhead (%s users)\n\n",
              FormatCount(users).c_str());
  Testbed bed = BuildTestbed(users);
  uint32_t runs = BenchRuns();

  auto by_mentions = core::UsersByMentionCount(bed.dataset);
  int64_t uid = by_mentions.back().second;  // most-mentioned user
  cypher::Params params{{"uid", common::Value::Int(uid)}};

  std::vector<int> widths{52, 14, 12};
  PrintRow({"variant", "avg time", "rows"}, widths);
  PrintRule(widths);

  auto report_cypher = [&](const char* name, const std::string& query) {
    auto timing = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(cypher::QueryResult result,
                               bed.nodestore()->session().Run(query,
                                                                   params));
          return result.rows.size();
        },
        2, runs, [&] { return bed.db->SimulatedIoNanos(); });
    MBQ_CHECK(timing.ok());
    PrintRow({name, FormatMillis(timing->avg_millis),
              FormatCount(timing->rows)},
             widths);
  };

  const std::string match =
      "MATCH (a:user {uid: $uid})<-[:mentions]-(t:tweet)-[:mentions]->"
      "(b:user) WHERE b.uid <> $uid ";
  report_cypher("Cypher: count + ORDER BY + LIMIT 10",
                match + "RETURN b.uid, count(t) AS c ORDER BY c DESC "
                        "LIMIT 10");
  report_cypher("Cypher: count + ORDER BY (no LIMIT)",
                match + "RETURN b.uid, count(t) AS c ORDER BY c DESC");
  report_cypher("Cypher: count only (no ORDER BY, no LIMIT)",
                match + "RETURN b.uid, count(t) AS c");
  report_cypher("Cypher: DISTINCT only (no aggregation)",
                match + "RETURN DISTINCT b.uid");
  report_cypher("Cypher: bare rows (no dedup, no aggregation)",
                match + "RETURN b.uid");
  report_cypher("Cypher: bare rows + LIMIT 10 (early exit)",
                match + "RETURN b.uid LIMIT 10");

  // Bitmap store: the API has no limit push-down — top-10 and
  // top-everything both materialize and sort the full counted set.
  auto report_bitmap = [&](const char* name, int64_t n) {
    auto timing = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(auto rows,
                               bed.bitmap_engine->TopCoMentionedUsers(uid, n));
          return rows.size();
        },
        2, runs, [&] { return bed.graph->SimulatedIoNanos(); });
    MBQ_CHECK(timing.ok());
    PrintRow({name, FormatMillis(timing->avg_millis),
              FormatCount(timing->rows)},
             widths);
  };
  report_bitmap("Bitmap API: top-10 (client-side sort of everything)", 10);
  report_bitmap("Bitmap API: top-everything", 1 << 30);

  std::printf(
      "\nshape: each removed clause cheapens the Cypher query, and the "
      "early-exit LIMIT without ORDER BY is the cheapest; the bitmap "
      "store's top-10 costs the same as returning everything.\n");
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run();
  return 0;
}
