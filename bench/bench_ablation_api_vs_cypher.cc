// Ablation A1 (paper §4, "Alternate Solutions"): the same queries written
// declaratively in mini-Cypher versus hand-written against the record
// store's core API / traversal framework. The paper observed "a slight
// improvement in performance compared to the Cypher queries version" for
// the hand-translated queries, at the cost of losing the declarative
// surface.

#include <cstdio>
#include <unordered_map>

#include "bench/bench_common.h"
#include "util/logging.h"
#include "nodestore/traversal.h"

namespace mbq::bench {
namespace {

using nodestore::Direction;
using nodestore::GraphDb;
using nodestore::NodeId;

/// Q2.1 via the traversal framework.
Result<uint64_t> FolloweesViaTraversal(Testbed& bed, NodeId start) {
  nodestore::TraversalDescription td(bed.db.get());
  td.BreadthFirst()
      .Relationships(bed.ndb_handles.follows, Direction::kOutgoing)
      .MaxDepth(1)
      .EvaluateAtDepth(1);
  uint64_t rows = 0;
  MBQ_RETURN_IF_ERROR(td.Traverse(start, [&](const nodestore::TraversalPath&) {
    ++rows;
    return true;
  }));
  return rows;
}

/// Q4.1 via the core API: two chain walks plus a membership check.
Result<uint64_t> RecommendViaCoreApi(Testbed& bed, NodeId start) {
  GraphDb* db = bed.db.get();
  auto follows = bed.ndb_handles.follows;
  std::vector<NodeId> followees;
  MBQ_RETURN_IF_ERROR(db->ForEachRelationship(
      start, Direction::kOutgoing, follows,
      [&](const GraphDb::RelInfo& rel) {
        followees.push_back(rel.other);
        return true;
      }));
  std::unordered_map<NodeId, int64_t> counts;
  for (NodeId f : followees) {
    MBQ_RETURN_IF_ERROR(db->ForEachRelationship(
        f, Direction::kOutgoing, follows, [&](const GraphDb::RelInfo& rel) {
          ++counts[rel.other];
          return true;
        }));
  }
  counts.erase(start);
  for (NodeId f : followees) counts.erase(f);
  return counts.size();
}

void Run() {
  uint64_t users = BenchUsers();
  std::printf("Ablation A1 — Cypher vs core API / traversal framework "
              "(%s users)\n\n",
              FormatCount(users).c_str());
  Testbed bed = BuildTestbed(users);
  uint32_t runs = BenchRuns();

  auto by_followees = core::UsersByFolloweeCount(bed.dataset);
  int64_t uid = by_followees[by_followees.size() * 9 / 10].second;
  auto start = bed.db->IndexSeek(bed.ndb_handles.user, bed.ndb_handles.uid,
                                 common::Value::Int(uid));
  MBQ_CHECK(start.ok() && *start != nodestore::kInvalidNode);

  std::vector<int> widths{34, 14, 14};
  PrintRow({"query / surface", "avg time", "rows"}, widths);
  PrintRule(widths);

  auto report = [&](const char* name, const core::TimedQuery& q) {
    auto timing = core::MeasureQuery(
        q, 2, runs, [&] { return bed.db->SimulatedIoNanos(); });
    MBQ_CHECK(timing.ok());
    PrintRow({name, FormatMillis(timing->avg_millis),
              FormatCount(timing->rows)},
             widths);
  };

  report("Q2.1 Cypher", [&]() -> Result<uint64_t> {
    MBQ_ASSIGN_OR_RETURN(auto rows, bed.nodestore_engine->FolloweesOf(uid));
    return rows.size();
  });
  report("Q2.1 traversal framework",
         [&]() { return FolloweesViaTraversal(bed, *start); });
  report("Q4.1 Cypher", [&]() -> Result<uint64_t> {
    MBQ_ASSIGN_OR_RETURN(
        auto rows,
        bed.nodestore_engine->RecommendFolloweesOfFollowees(uid, 1 << 30));
    return rows.size();
  });
  report("Q4.1 core API",
         [&]() { return RecommendViaCoreApi(bed, *start); });

  std::printf(
      "\nshape: the imperative translations shave the declarative "
      "overhead (operator pipeline, expression evaluation), matching the "
      "paper's 'slight improvement ... but the benefit of a declarative "
      "language is lost'.\n");
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run();
  return 0;
}
