// Google-benchmark microbenchmarks of the primitives both engines are
// built on: compressed bitmap algebra, record-file access, and the two
// engines' single-hop expansion. These are the atomic costs behind every
// number in the Table 2 / Figure 4 reproductions.

#include <benchmark/benchmark.h>

#include "bitmapstore/bitmap.h"
#include "bitmapstore/graph.h"
#include "nodestore/graph_db.h"
#include "nodestore/record_file.h"
#include "util/rng.h"

namespace mbq {
namespace {

using bitmapstore::Bitmap;

Bitmap MakeBitmap(uint64_t seed, uint32_t universe, size_t count) {
  Rng rng(seed);
  Bitmap bm;
  for (size_t i = 0; i < count; ++i) {
    bm.Add(static_cast<uint32_t>(rng.NextBounded(universe)));
  }
  return bm;
}

void BM_BitmapAdd(benchmark::State& state) {
  const uint32_t universe = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    Bitmap bm;
    for (int i = 0; i < 1000; ++i) {
      bm.Add(static_cast<uint32_t>(rng.NextBounded(universe)));
    }
    benchmark::DoNotOptimize(bm.Cardinality());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BitmapAdd)->Arg(1 << 12)->Arg(1 << 20)->Arg(1 << 28);

void BM_BitmapAnd(benchmark::State& state) {
  const uint32_t universe = 1 << 22;
  Bitmap a = MakeBitmap(1, universe, static_cast<size_t>(state.range(0)));
  Bitmap b = MakeBitmap(2, universe, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitmap::And(a, b).Cardinality());
  }
}
BENCHMARK(BM_BitmapAnd)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_BitmapOr(benchmark::State& state) {
  const uint32_t universe = 1 << 22;
  Bitmap a = MakeBitmap(3, universe, static_cast<size_t>(state.range(0)));
  Bitmap b = MakeBitmap(4, universe, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitmap::Or(a, b).Cardinality());
  }
}
BENCHMARK(BM_BitmapOr)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_BitmapIterate(benchmark::State& state) {
  Bitmap bm = MakeBitmap(5, 1 << 22, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    uint64_t sum = 0;
    bm.ForEach([&sum](uint32_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitmapIterate)->Arg(10000)->Arg(1000000);

void BM_RecordFileRead(benchmark::State& state) {
  VirtualClock clock;
  storage::SimulatedDisk disk(storage::DiskProfile::Instant(), &clock);
  storage::BufferCacheOptions options;
  options.capacity_pages = 1 << 14;
  storage::BufferCache cache(&disk, options);
  nodestore::RecordFile file("bench", &cache, 64, nullptr);
  const int kRecords = 100000;
  uint8_t buf[64] = {};
  for (int i = 0; i < kRecords; ++i) {
    auto id = file.Allocate();
    (void)file.Write(*id, buf);
  }
  Rng rng(6);
  for (auto _ : state) {
    (void)file.Read(rng.NextBounded(kRecords), buf);
    benchmark::DoNotOptimize(buf[0]);
  }
}
BENCHMARK(BM_RecordFileRead);

void BM_NodestoreExpand(benchmark::State& state) {
  nodestore::GraphDbOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  options.wal_enabled = false;
  nodestore::GraphDb db(options);
  auto user = *db.Label("user");
  auto follows = *db.RelType("follows");
  const int64_t kFanOut = state.range(0);
  auto hub = *db.CreateNode(user);
  for (int64_t i = 0; i < kFanOut; ++i) {
    auto spoke = *db.CreateNode(user);
    (void)db.CreateRelationship(follows, hub, spoke);
  }
  for (auto _ : state) {
    uint64_t count = 0;
    (void)db.ForEachRelationship(hub, nodestore::Direction::kOutgoing,
                                 follows,
                                 [&](const nodestore::GraphDb::RelInfo&) {
                                   ++count;
                                   return true;
                                 });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kFanOut);
}
BENCHMARK(BM_NodestoreExpand)->Arg(10)->Arg(1000)->Arg(100000);

void BM_BitmapstoreNeighbors(benchmark::State& state) {
  bitmapstore::GraphOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  bitmapstore::Graph graph(options);
  auto user = *graph.NewNodeType("user");
  auto follows = *graph.NewEdgeType("follows");
  const int64_t kFanOut = state.range(0);
  auto hub = *graph.NewNode(user);
  for (int64_t i = 0; i < kFanOut; ++i) {
    auto spoke = *graph.NewNode(user);
    (void)graph.NewEdge(follows, hub, spoke);
  }
  for (auto _ : state) {
    auto nbrs = graph.Neighbors(hub, follows,
                                bitmapstore::EdgesDirection::kOutgoing);
    benchmark::DoNotOptimize(nbrs->Count());
  }
  state.SetItemsProcessed(state.iterations() * kFanOut);
}
BENCHMARK(BM_BitmapstoreNeighbors)->Arg(10)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace mbq

BENCHMARK_MAIN();
