// Reproduces Table 2 of the paper: the six-category query workload.
// Every exemplar query (Q1.1 .. Q6.1) is executed on both engines with
// the paper's timing protocol (warm the cache, then average 10 runs) and
// cross-checked for result agreement.

#include <cstdio>

#include "bench/bench_common.h"

namespace mbq::bench {
namespace {

using core::MeasureQuery;
using core::TimingResult;
using core::ValueRows;

struct QueryRun {
  const char* id;
  const char* category;
  const char* description;
};

void Run(const BenchOptions& options) {
  uint64_t users = BenchUsers();
  std::printf("Building testbed (%s users)...\n", FormatCount(users).c_str());
  Testbed bed = BuildTestbed(users);
  ApplyBenchOptions(bed, options);
  if (options.threads > 1) {
    std::printf("Threads: %u\n", options.threads);
  }
  uint32_t runs = BenchRuns();

  // Representative parameters: a well-connected user, a popular hashtag,
  // a random pair for the path query.
  auto by_mentions = core::UsersByMentionCount(bed.dataset);
  auto by_followees = core::UsersByFolloweeCount(bed.dataset);
  auto tags = core::HashtagsByUse(bed.dataset);
  int64_t user_a = by_followees[by_followees.size() * 3 / 4].second;
  int64_t mentioned_user =
      by_mentions.empty() ? user_a : by_mentions.back().second;
  std::string hot_tag = tags.back().second;
  int64_t user_b = by_followees[by_followees.size() / 3].second;
  int64_t follower_threshold = 50;
  int64_t top_n = 10;

  std::printf(
      "Parameters: A=uid %lld (mentions target uid %lld), H='%s', "
      "B=uid %lld, threshold=%lld, n=%lld, runs=%u\n\n",
      static_cast<long long>(user_a), static_cast<long long>(mentioned_user),
      hot_tag.c_str(), static_cast<long long>(user_b),
      static_cast<long long>(follower_threshold),
      static_cast<long long>(top_n), runs);

  std::vector<int> widths{6, 16, 44, 12, 12, 8};
  PrintRow({"Query", "Category", "Example", "nodestore", "bitmapstore",
            "agree"},
           widths);
  PrintRule(widths);

  auto measure_pair =
      [&](const char* id, const char* category, const char* example,
          const std::function<Result<ValueRows>(core::MicroblogEngine*)>&
              query) {
        ValueRows ns_rows;
        ValueRows bm_rows;
        auto ns_timing = MeasureQuery(
            [&]() -> Result<uint64_t> {
              MBQ_ASSIGN_OR_RETURN(ns_rows,
                                   query(bed.nodestore_engine.get()));
              return ns_rows.size();
            },
            /*warmup=*/2, runs, [&] { return bed.db->SimulatedIoNanos(); });
        auto bm_timing = MeasureQuery(
            [&]() -> Result<uint64_t> {
              MBQ_ASSIGN_OR_RETURN(bm_rows, query(bed.bitmap_engine.get()));
              return bm_rows.size();
            },
            /*warmup=*/2, runs,
            [&] { return bed.graph->SimulatedIoNanos(); });
        std::string ns_cell =
            ns_timing.ok() ? FormatMillis(ns_timing->avg_millis)
                           : std::string("ERROR");
        std::string bm_cell =
            bm_timing.ok() ? FormatMillis(bm_timing->avg_millis)
                           : std::string("ERROR");
        core::SortRows(&ns_rows);
        core::SortRows(&bm_rows);
        bool agree = ns_rows == bm_rows;
        PrintRow({id, category, example, ns_cell, bm_cell,
                  agree ? "yes" : "NO"},
                 widths);
      };

  measure_pair("Q1.1", "Select", "users with follower count > threshold",
               [&](core::MicroblogEngine* e) {
                 return e->SelectUsersByFollowerCount(follower_threshold);
               });
  measure_pair("Q2.1", "Adjacency (1)", "all followees of A",
               [&](core::MicroblogEngine* e) {
                 return e->FolloweesOf(user_a);
               });
  measure_pair("Q2.2", "Adjacency (2)", "tweets posted by followees of A",
               [&](core::MicroblogEngine* e) {
                 return e->TweetsOfFollowees(user_a);
               });
  measure_pair("Q2.3", "Adjacency (3)", "hashtags used by followees of A",
               [&](core::MicroblogEngine* e) {
                 return e->HashtagsUsedByFollowees(user_a);
               });
  measure_pair("Q3.1", "Co-occurrence", "top-n users most mentioned with A",
               [&](core::MicroblogEngine* e) {
                 return e->TopCoMentionedUsers(mentioned_user, top_n);
               });
  measure_pair("Q3.2", "Co-occurrence", "top-n hashtags co-occurring with H",
               [&](core::MicroblogEngine* e) {
                 return e->TopCoOccurringHashtags(hot_tag, top_n);
               });
  measure_pair("Q4.1", "Recommendation", "top-n followees of A's followees",
               [&](core::MicroblogEngine* e) {
                 return e->RecommendFolloweesOfFollowees(user_a, top_n);
               });
  measure_pair("Q4.2", "Recommendation", "top-n followers of A's followees",
               [&](core::MicroblogEngine* e) {
                 return e->RecommendFollowersOfFollowees(user_a, top_n);
               });
  measure_pair("Q5.1", "Influence", "mentioners of A who follow A",
               [&](core::MicroblogEngine* e) {
                 return e->CurrentInfluence(mentioned_user, top_n);
               });
  measure_pair("Q5.2", "Influence", "mentioners of A not following A",
               [&](core::MicroblogEngine* e) {
                 return e->PotentialInfluence(mentioned_user, top_n);
               });

  // Q6.1 returns a scalar, measured separately.
  {
    int64_t ns_len = -2;
    int64_t bm_len = -2;
    auto ns_timing = MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(
              ns_len, bed.nodestore_engine->ShortestPathLength(user_a, user_b,
                                                               3));
          return 1;
        },
        2, runs, [&] { return bed.db->SimulatedIoNanos(); });
    auto bm_timing = MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(
              bm_len,
              bed.bitmap_engine->ShortestPathLength(user_a, user_b, 3));
          return 1;
        },
        2, runs, [&] { return bed.graph->SimulatedIoNanos(); });
    PrintRow({"Q6.1", "Shortest path", "follows-path between two users",
              ns_timing.ok() ? FormatMillis(ns_timing->avg_millis) : "ERROR",
              bm_timing.ok() ? FormatMillis(bm_timing->avg_millis) : "ERROR",
              ns_len == bm_len ? "yes" : "NO"},
             widths);
  }
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run(mbq::bench::ParseBenchOptionsOrDie(argc, argv));
  return 0;
}
