// Reproduces Table 1 of the paper: characteristics of the data set —
// node and relationship counts per type. The paper reports the Li et al.
// (KDD'12) crawl; we print our synthetic crawl at the configured scale
// next to the paper's numbers so the per-type *mix* can be compared.

#include <cstdio>

#include "bench/bench_common.h"
#include "twitter/dataset.h"

namespace mbq::bench {
namespace {

struct PaperCounts {
  // Paper Table 1 (Li et al. crawl).
  static constexpr uint64_t kUsers = 24'789'792;
  static constexpr uint64_t kTweets = 24'000'230;
  static constexpr uint64_t kHashtags = 616'109;
  static constexpr uint64_t kFollows = 284'000'284;
  static constexpr uint64_t kPosts = 24'000'230;
  static constexpr uint64_t kMentions = 11'100'547;
  static constexpr uint64_t kTags = 7'137'992;
  static constexpr uint64_t kTotalNodes = 49'405'924;  // as printed
  static constexpr uint64_t kTotalEdges = 326'238'000;
};

double Share(uint64_t part, uint64_t total) {
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(total);
}

void Run() {
  uint64_t users = BenchUsers();
  twitter::DatasetSpec spec = BenchSpec(users);
  spec.retweet_fraction = 0;  // paper parity: no retweets reconstructible
  twitter::Dataset dataset = twitter::GenerateDataset(spec);
  twitter::DatasetCounts c = twitter::CountDataset(dataset);

  std::printf("Table 1: Characteristics of the data set\n");
  std::printf("(synthetic crawl, %s users; paper = Li et al. KDD'12)\n\n",
              FormatCount(users).c_str());
  std::vector<int> widths{12, 14, 8, 16, 8};
  PrintRow({"Node", "ours", "ours %", "paper", "paper %"}, widths);
  PrintRule(widths);
  auto node_row = [&](const char* name, uint64_t ours, uint64_t paper) {
    char ours_pct[16];
    char paper_pct[16];
    std::snprintf(ours_pct, sizeof(ours_pct), "%.1f%%",
                  Share(ours, c.total_nodes));
    std::snprintf(paper_pct, sizeof(paper_pct), "%.1f%%",
                  Share(paper, PaperCounts::kTotalNodes));
    PrintRow({name, FormatCount(ours), ours_pct, FormatCount(paper),
              paper_pct},
             widths);
  };
  node_row("user", c.users, PaperCounts::kUsers);
  node_row("tweet", c.tweets, PaperCounts::kTweets);
  node_row("hashtag", c.hashtags, PaperCounts::kHashtags);
  PrintRow({"Total", FormatCount(c.total_nodes), "100%",
            FormatCount(PaperCounts::kTotalNodes), "100%"},
           widths);

  std::printf("\n");
  PrintRow({"Relationship", "ours", "ours %", "paper", "paper %"}, widths);
  PrintRule(widths);
  auto edge_row = [&](const char* name, uint64_t ours, uint64_t paper) {
    char ours_pct[16];
    char paper_pct[16];
    std::snprintf(ours_pct, sizeof(ours_pct), "%.1f%%",
                  Share(ours, c.total_edges));
    std::snprintf(paper_pct, sizeof(paper_pct), "%.1f%%",
                  Share(paper, PaperCounts::kTotalEdges));
    PrintRow({name, FormatCount(ours), ours_pct, FormatCount(paper),
              paper_pct},
             widths);
  };
  edge_row("follows", c.follows, PaperCounts::kFollows);
  edge_row("posts", c.posts, PaperCounts::kPosts);
  edge_row("mentions", c.mentions, PaperCounts::kMentions);
  edge_row("tags", c.tags, PaperCounts::kTags);
  PrintRow({"Total", FormatCount(c.total_edges), "100%",
            FormatCount(PaperCounts::kTotalEdges), "100%"},
           widths);

  std::printf("\nShape checks (should track the paper):\n");
  std::printf("  follows per user : %6.2f (paper 11.46)\n",
              static_cast<double>(c.follows) / static_cast<double>(c.users));
  std::printf("  tweets per user  : %6.2f (paper 0.97)\n",
              static_cast<double>(c.tweets) / static_cast<double>(c.users));
  std::printf("  mentions / tweet : %6.2f (paper 0.46)\n",
              static_cast<double>(c.mentions) / static_cast<double>(c.tweets));
  std::printf("  tags / tweet     : %6.2f (paper 0.30)\n",
              static_cast<double>(c.tags) / static_cast<double>(c.tweets));
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run();
  return 0;
}
