// Reproduces Figure 4(c)/(d): the recommendation query Q4.1 (top-n
// followees of A's followees whom A is not following yet) on both
// engines, average time vs rows returned. Expected shape (paper): both
// engines grow with the 2-step neighborhood; the record store shows a
// spike when the source's direct degree is much higher than the returned
// rows (large intermediate result in memory), while the bitmap store
// fluctuates less once the graph is cached.

#include <cstdio>

#include "bench/bench_common.h"

namespace mbq::bench {
namespace {

void Run(const BenchOptions& options) {
  uint32_t threads = options.threads;
  uint64_t users = BenchUsers();
  std::printf("Figure 4(c,d) — Q4.1 recommendation, %s users, %u thread%s\n\n",
              FormatCount(users).c_str(), threads, threads == 1 ? "" : "s");
  std::printf("caches: result=%s adjacency=%s\n\n",
              options.result_cache ? "on" : "off",
              options.adj_cache ? "on" : "off");
  Testbed bed = BuildTestbed(users);
  ApplyBenchOptions(bed, options);
  uint32_t runs = BenchRuns();

  auto by_followees = core::UsersByFolloweeCount(bed.dataset);
  std::vector<int64_t> sample;
  const size_t kPoints = 12;
  for (size_t i = 0; i < kPoints && !by_followees.empty(); ++i) {
    size_t idx = i * (by_followees.size() - 1) / (kPoints - 1);
    sample.push_back(by_followees[idx].second);
  }

  std::vector<int> widths{10, 10, 12, 14, 14};
  PrintRow({"uid", "degree", "rows", "nodestore", "bitmapstore"}, widths);
  PrintRule(widths);

  struct Point {
    int64_t uid;
    int64_t degree;
    uint64_t rows;
    double ns;
    double bm;
  };
  std::vector<Point> points;
  for (size_t i = 0; i < sample.size(); ++i) {
    int64_t uid = sample[i];
    int64_t degree = 0;
    for (const auto& [metric, id] : by_followees) {
      if (id == uid) {
        degree = metric;
        break;
      }
    }
    uint64_t rows = 0;
    auto ns = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(
              auto r, bed.nodestore_engine->RecommendFolloweesOfFollowees(
                          uid, 1 << 30));
          rows = r.size();
          return rows;
        },
        1, runs, [&] { return bed.db->SimulatedIoNanos(); });
    auto bm = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(
              auto r, bed.bitmap_engine->RecommendFolloweesOfFollowees(
                          uid, 1 << 30));
          return r.size();
        },
        1, runs, [&] { return bed.graph->SimulatedIoNanos(); });
    if (!ns.ok() || !bm.ok()) continue;
    points.push_back({uid, degree, rows, ns->avg_millis, bm->avg_millis});
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.rows < b.rows; });
  double ns_max_over_min = 0;
  double bm_max_over_min = 0;
  double ns_min = 1e300, ns_max = 0, bm_min = 1e300, bm_max = 0;
  for (const Point& p : points) {
    PrintRow({std::to_string(p.uid), FormatCount(p.degree),
              FormatCount(p.rows), FormatMillis(p.ns), FormatMillis(p.bm)},
             widths);
    ns_min = std::min(ns_min, p.ns);
    ns_max = std::max(ns_max, p.ns);
    bm_min = std::min(bm_min, p.bm);
    bm_max = std::max(bm_max, p.bm);
  }
  if (!points.empty() && ns_min > 0 && bm_min > 0) {
    ns_max_over_min = ns_max / ns_min;
    bm_max_over_min = bm_max / bm_min;
    std::printf(
        "\nshape: spread across the sweep — nodestore %.0fx, bitmapstore "
        "%.0fx (the paper sees larger swings on Neo4j: big intermediate "
        "results degrade it)\n",
        ns_max_over_min, bm_max_over_min);
  }
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run(mbq::bench::ParseBenchOptionsOrDie(argc, argv));
  return 0;
}
