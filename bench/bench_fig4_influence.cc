// Reproduces Figure 4(e)/(f): the potential-influence query Q5.2 (top-n
// users who mention A without being direct followers) on both engines,
// average time against the "degree of a user mention" — how many times A
// is mentioned in the collection. Expected shape (paper): degrees are low
// compared to the co-occurrence query, and the curve resembles the first
// (noisy, slowly rising) portion of the Q3.1 plots.

#include <cstdio>

#include "bench/bench_common.h"

namespace mbq::bench {
namespace {

void Run(const BenchOptions& options) {
  uint32_t threads = options.threads;
  uint64_t users = BenchUsers();
  std::printf("Figure 4(e,f) — Q5.2 potential influence, %s users, %u thread%s\n\n",
              FormatCount(users).c_str(), threads, threads == 1 ? "" : "s");
  std::printf("caches: result=%s adjacency=%s\n\n",
              options.result_cache ? "on" : "off",
              options.adj_cache ? "on" : "off");
  Testbed bed = BuildTestbed(users);
  ApplyBenchOptions(bed, options);
  uint32_t runs = BenchRuns();

  // Spread the sample across *distinct* mention degrees (the raw rank
  // distribution is dominated by degree-1 users).
  auto by_mentions = core::UsersByMentionCount(bed.dataset);
  std::vector<std::pair<int64_t, int64_t>> distinct;  // (degree, uid)
  for (const auto& [degree, uid] : by_mentions) {
    if (distinct.empty() || distinct.back().first != degree) {
      distinct.push_back({degree, uid});
    }
  }
  std::vector<std::pair<int64_t, int64_t>> sample;
  const size_t kPoints = 14;
  for (size_t i = 0; i < kPoints && !distinct.empty(); ++i) {
    size_t idx = i * (distinct.size() - 1) / (kPoints - 1);
    if (!sample.empty() && sample.back() == distinct[idx]) continue;
    sample.push_back(distinct[idx]);
  }

  std::vector<int> widths{10, 12, 12, 14, 14};
  PrintRow({"uid", "degree", "rows", "nodestore", "bitmapstore"}, widths);
  PrintRule(widths);

  for (const auto& [degree, uid] : sample) {
    uint64_t rows = 0;
    int64_t u = uid;
    auto ns = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(
              auto r, bed.nodestore_engine->PotentialInfluence(u, 1 << 30));
          rows = r.size();
          return rows;
        },
        1, runs, [&] { return bed.db->SimulatedIoNanos(); });
    auto bm = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(
              auto r, bed.bitmap_engine->PotentialInfluence(u, 1 << 30));
          return r.size();
        },
        1, runs, [&] { return bed.graph->SimulatedIoNanos(); });
    if (!ns.ok() || !bm.ok()) continue;
    PrintRow({std::to_string(uid), FormatCount(degree), FormatCount(rows),
              FormatMillis(ns->avg_millis), FormatMillis(bm->avg_millis)},
             widths);
  }
  std::printf(
      "\nshape: mention degrees stay low (long tail), resembling the left "
      "portion of the Q3.1 plots.\n");
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run(mbq::bench::ParseBenchOptionsOrDie(argc, argv));
  return 0;
}
