// Reproduces Figure 4(a)/(b): the co-occurrence query Q3.1 (top-n users
// most mentioned together with user A) on both engines, with average
// execution time plotted against the number of rows the query returns.
// Expected shape (paper): a straightforward increasing trend, noisy at
// small row counts where random disk accesses dominate.

#include <cstdio>

#include "bench/bench_common.h"

namespace mbq::bench {
namespace {

void Run(const BenchOptions& options) {
  uint32_t threads = options.threads;
  uint64_t users = BenchUsers();
  std::printf("Figure 4(a,b) — Q3.1 co-occurrence, %s users, %u thread%s\n\n",
              FormatCount(users).c_str(), threads, threads == 1 ? "" : "s");
  std::printf("caches: result=%s adjacency=%s\n\n",
              options.result_cache ? "on" : "off",
              options.adj_cache ? "on" : "off");
  Testbed bed = BuildTestbed(users);
  ApplyBenchOptions(bed, options);
  uint32_t runs = BenchRuns();

  // Sample users across the mention-count spectrum (the paper's x-axis is
  // rows returned, which tracks how often A is co-mentioned).
  auto by_mentions = core::UsersByMentionCount(bed.dataset);
  std::vector<int64_t> sample;
  const size_t kPoints = 14;
  for (size_t i = 0; i < kPoints && !by_mentions.empty(); ++i) {
    size_t idx = i * (by_mentions.size() - 1) / (kPoints - 1);
    sample.push_back(by_mentions[idx].second);
  }

  std::vector<int> widths{10, 12, 14, 14};
  PrintRow({"uid", "rows", "nodestore", "bitmapstore"}, widths);
  PrintRule(widths);

  struct Point {
    uint64_t rows;
    double ns;
    double bm;
    int64_t uid;
  };
  std::vector<Point> points;
  for (int64_t uid : sample) {
    uint64_t rows = 0;
    auto ns = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(
              auto r, bed.nodestore_engine->TopCoMentionedUsers(uid, 1 << 30));
          rows = r.size();
          return rows;
        },
        1, runs, [&] { return bed.db->SimulatedIoNanos(); });
    auto bm = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(
              auto r, bed.bitmap_engine->TopCoMentionedUsers(uid, 1 << 30));
          return r.size();
        },
        1, runs, [&] { return bed.graph->SimulatedIoNanos(); });
    if (!ns.ok() || !bm.ok()) continue;
    points.push_back({rows, ns->avg_millis, bm->avg_millis, uid});
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.rows < b.rows; });
  for (const Point& p : points) {
    PrintRow({std::to_string(p.uid), FormatCount(p.rows), FormatMillis(p.ns),
              FormatMillis(p.bm)},
             widths);
  }

  // Shape check: time at the largest row count should exceed time at the
  // smallest on both engines.
  if (points.size() >= 2) {
    const Point& lo = points.front();
    const Point& hi = points.back();
    std::printf(
        "\nshape: increasing trend — nodestore %s -> %s, bitmapstore "
        "%s -> %s (rows %s -> %s)\n",
        FormatMillis(lo.ns).c_str(), FormatMillis(hi.ns).c_str(),
        FormatMillis(lo.bm).c_str(), FormatMillis(hi.bm).c_str(),
        FormatCount(lo.rows).c_str(), FormatCount(hi.rows).c_str());
  }

  // Scaling curve: re-run the heaviest sampled point at 1..threads workers
  // and report the speedup over the sequential baseline. Wall-clock gains
  // require real cores; on a single-core host the interesting number is
  // that the parallel plan returns identical rows at no modelled-I/O cost.
  if (threads > 1 && !points.empty()) {
    int64_t uid = points.back().uid;
    std::printf("\nscaling (uid %lld, rows %s):\n",
                static_cast<long long>(uid),
                FormatCount(points.back().rows).c_str());
    std::vector<int> swidths{8, 14, 14, 10, 10};
    PrintRow({"threads", "nodestore", "bitmapstore", "ns x", "bm x"}, swidths);
    PrintRule(swidths);
    double base_ns = 0.0, base_bm = 0.0;
    for (uint32_t t = 1; t <= threads; t *= 2) {
      ApplyThreads(bed, t);
      auto ns = core::MeasureQuery(
          [&]() -> Result<uint64_t> {
            MBQ_ASSIGN_OR_RETURN(
                auto r, bed.nodestore_engine->TopCoMentionedUsers(uid, 1 << 30));
            return r.size();
          },
          1, runs, [&] { return bed.db->SimulatedIoNanos(); });
      auto bm = core::MeasureQuery(
          [&]() -> Result<uint64_t> {
            MBQ_ASSIGN_OR_RETURN(
                auto r, bed.bitmap_engine->TopCoMentionedUsers(uid, 1 << 30));
            return r.size();
          },
          1, runs, [&] { return bed.graph->SimulatedIoNanos(); });
      if (!ns.ok() || !bm.ok()) continue;
      if (t == 1) {
        base_ns = ns->avg_millis;
        base_bm = bm->avg_millis;
      }
      char ns_x[32], bm_x[32];
      std::snprintf(ns_x, sizeof(ns_x), "%.2fx",
                    ns->avg_millis > 0 ? base_ns / ns->avg_millis : 0.0);
      std::snprintf(bm_x, sizeof(bm_x), "%.2fx",
                    bm->avg_millis > 0 ? base_bm / bm->avg_millis : 0.0);
      PrintRow({std::to_string(t), FormatMillis(ns->avg_millis),
                FormatMillis(bm->avg_millis), ns_x, bm_x},
               swidths);
    }
    ApplyThreads(bed, threads);
  }
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run(mbq::bench::ParseBenchOptionsOrDie(argc, argv));
  return 0;
}
