// Reproduces Figure 4(g)/(h): the shortest-path query Q6.1 between two
// randomly selected users over follows edges (bounded at 3 hops, as the
// paper configures Sparksee's SinglePairShortestPathBFS), averaged per
// found path length. Expected shape (paper): time grows with path length
// and "Neo4j seems to perform shortest path queries more efficiently" —
// here because the record store's Cypher shortestPath runs a
// bidirectional BFS while the bitmap store's native algorithm expands a
// single frontier.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "util/rng.h"

namespace mbq::bench {
namespace {

void Run(const BenchOptions& options) {
  uint64_t users = BenchUsers();
  std::printf("Figure 4(g,h) — Q6.1 shortest path (max 3 hops), %s users\n\n",
              FormatCount(users).c_str());
  std::printf("caches: result=%s adjacency=%s\n\n",
              options.result_cache ? "on" : "off",
              options.adj_cache ? "on" : "off");
  Testbed bed = BuildTestbed(users);
  ApplyBenchOptions(bed, options);
  uint32_t runs = BenchRuns();
  const uint32_t kMaxHops = 3;

  // Sample random pairs until each observed path length has enough pairs.
  Rng rng(424242);
  struct Bin {
    std::vector<std::pair<int64_t, int64_t>> pairs;
  };
  std::map<int64_t, Bin> bins;  // path length -> pairs (-1 = unreachable)
  const size_t kPerBin = 5;
  for (int attempts = 0; attempts < 4000; ++attempts) {
    int64_t a = static_cast<int64_t>(rng.NextBounded(users));
    int64_t b = static_cast<int64_t>(rng.NextBounded(users));
    if (a == b) continue;
    auto len = bed.bitmap_engine->ShortestPathLength(a, b, kMaxHops);
    if (!len.ok()) continue;
    Bin& bin = bins[*len];
    if (bin.pairs.size() < kPerBin) bin.pairs.emplace_back(a, b);
    bool full = true;
    for (int64_t l = 1; l <= kMaxHops; ++l) {
      if (bins[l].pairs.size() < kPerBin) full = false;
    }
    if (full && bins[-1].pairs.size() >= kPerBin) break;
  }

  std::vector<int> widths{12, 8, 14, 14};
  PrintRow({"path length", "pairs", "nodestore", "bitmapstore"}, widths);
  PrintRule(widths);

  for (const auto& [length, bin] : bins) {
    if (bin.pairs.empty()) continue;
    double ns_total = 0;
    double bm_total = 0;
    size_t measured = 0;
    for (const auto& [a, b] : bin.pairs) {
      auto ns = core::MeasureQuery(
          [&]() -> Result<uint64_t> {
            MBQ_RETURN_IF_ERROR(
                bed.nodestore_engine->ShortestPathLength(a, b, kMaxHops)
                    .status());
            return 1;
          },
          1, runs, [&] { return bed.db->SimulatedIoNanos(); });
      auto bm = core::MeasureQuery(
          [&]() -> Result<uint64_t> {
            MBQ_RETURN_IF_ERROR(
                bed.bitmap_engine->ShortestPathLength(a, b, kMaxHops)
                    .status());
            return 1;
          },
          1, runs, [&] { return bed.graph->SimulatedIoNanos(); });
      if (!ns.ok() || !bm.ok()) continue;
      ns_total += ns->avg_millis;
      bm_total += bm->avg_millis;
      ++measured;
    }
    if (measured == 0) continue;
    std::string label =
        length < 0 ? "none (<=3)" : std::to_string(length);
    PrintRow({label, std::to_string(measured),
              FormatMillis(ns_total / measured),
              FormatMillis(bm_total / measured)},
             widths);
  }
  std::printf(
      "\nshape: time rises with path length; the record store's "
      "bidirectional shortestPath beats the bitmap store's "
      "single-frontier BFS (the paper's Neo4j advantage).\n");
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run(mbq::bench::ParseBenchOptionsOrDie(argc, argv));
  return 0;
}
