// Ablation A2 (paper §4): three equivalent Cypher phrasings of the
// recommendation query Q4.1 —
//   (a) a depth-2 variable-length expansion [:follows*2..2],
//   (b) two explicit single hops with the depth-1 set checked against
//       depth 2 (the paper's fastest method),
//   (c) expanding [:follows*1..2] and removing the depth-1 friends after.
// The paper found (b) best and (c) unable to finish in reasonable time;
// it calls for a cost-based optimizer to normalize such phrasings.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/logging.h"

namespace mbq::bench {
namespace {

void Run() {
  uint64_t users = BenchUsers();
  std::printf("Ablation A2 — three phrasings of the recommendation query "
              "(%s users)\n\n",
              FormatCount(users).c_str());
  Testbed bed = BuildTestbed(users);
  uint32_t runs = BenchRuns();

  auto by_followees = core::UsersByFolloweeCount(bed.dataset);
  int64_t uid = by_followees[by_followees.size() * 9 / 10].second;
  cypher::Params params{{"uid", common::Value::Int(uid)},
                        {"n", common::Value::Int(10)}};

  std::vector<int> widths{44, 14, 14, 12};
  PrintRow({"phrasing", "avg time", "db hits", "rows"}, widths);
  PrintRule(widths);

  auto report = [&](const char* name, const char* query) {
    uint64_t db_hits = 0;
    uint64_t rows = 0;
    auto timing = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(cypher::QueryResult result,
                               bed.nodestore()->session().Run(query,
                                                                   params));
          db_hits = result.db_hits;
          rows = result.rows.size();
          return rows;
        },
        2, runs, [&] { return bed.db->SimulatedIoNanos(); });
    MBQ_CHECK(timing.ok());
    PrintRow({name, FormatMillis(timing->avg_millis), FormatCount(db_hits),
              FormatCount(rows)},
             widths);
  };

  report("(a) [:follows*2..2] var-length",
         core::NodestoreEngine::kRecommendVariantA);
  report("(b) two explicit hops (paper's best)",
         core::NodestoreEngine::kRecommendVariantB);
  report("(c) [:follows*1..2] then remove depth-1",
         core::NodestoreEngine::kRecommendVariantC);

  std::printf(
      "\nshape: (b) <= (a) < (c) — methods (a) and (b) reach similar "
      "database-access counts through different plans, while (c) pays for "
      "the depth-1 expansion it immediately discards.\n");
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run();
  return 0;
}
