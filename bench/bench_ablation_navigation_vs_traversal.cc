// Ablation A5 (paper §4): on the bitmap store, expressing a multi-hop
// query as raw navigation operations (neighbors/explode) versus the
// Traversal class. The paper's preliminary finding: "using the raw
// navigation operations ... are slightly more efficient than expressing
// the query as a series of traversal operations ... perhaps due to the
// overhead involved with the traversals".

#include <cstdio>

#include "bench/bench_common.h"
#include "util/logging.h"
#include "bitmapstore/traversal.h"

namespace mbq::bench {
namespace {

using bitmapstore::EdgesDirection;
using bitmapstore::Objects;
using bitmapstore::Oid;

/// 2-step followees via two raw Neighbors sweeps.
Result<uint64_t> TwoStepRaw(Testbed& bed, Oid start) {
  MBQ_ASSIGN_OR_RETURN(Objects step1,
                       bed.graph->Neighbors(start, bed.bm_handles.follows,
                                            EdgesDirection::kOutgoing));
  MBQ_ASSIGN_OR_RETURN(Objects step2,
                       bed.graph->Neighbors(step1, bed.bm_handles.follows,
                                            EdgesDirection::kOutgoing));
  return step2.Count();
}

/// The same set via the Traversal class (depth-tracking bookkeeping).
Result<uint64_t> TwoStepTraversal(Testbed& bed, Oid start) {
  bitmapstore::Traversal t(bed.graph.get(), start,
                           bitmapstore::TraversalOrder::kBreadthFirst);
  t.AddEdgeType(bed.bm_handles.follows, EdgesDirection::kOutgoing);
  t.SetMaximumHops(2);
  uint64_t count = 0;
  MBQ_RETURN_IF_ERROR(t.Run([&](Oid, uint32_t depth) {
    if (depth == 2) ++count;
    return true;
  }));
  return count;
}

void Run() {
  uint64_t users = BenchUsers();
  std::printf("Ablation A5 — raw navigation vs Traversal class "
              "(%s users)\n\n",
              FormatCount(users).c_str());
  Testbed bed = BuildTestbed(users);
  uint32_t runs = BenchRuns();

  auto by_followees = core::UsersByFolloweeCount(bed.dataset);
  std::vector<int> widths{12, 10, 16, 16};
  PrintRow({"source", "degree", "raw neighbors", "Traversal"}, widths);
  PrintRule(widths);

  for (double quantile : {0.5, 0.9, 0.999}) {
    size_t idx = static_cast<size_t>(
        static_cast<double>(by_followees.size() - 1) * quantile);
    auto [degree, uid] = by_followees[idx];
    auto start = bed.graph->FindObject(bed.bm_handles.uid,
                                       common::Value::Int(uid));
    MBQ_CHECK(start.ok() && *start != bitmapstore::kInvalidOid);
    auto raw = core::MeasureQuery(
        [&]() { return TwoStepRaw(bed, *start); }, 2, runs,
        [&] { return bed.graph->SimulatedIoNanos(); });
    auto trav = core::MeasureQuery(
        [&]() { return TwoStepTraversal(bed, *start); }, 2, runs,
        [&] { return bed.graph->SimulatedIoNanos(); });
    MBQ_CHECK(raw.ok() && trav.ok());
    char label[32];
    std::snprintf(label, sizeof(label), "p%.1f", quantile * 100);
    PrintRow({label, FormatCount(degree), FormatMillis(raw->avg_millis),
              FormatMillis(trav->avg_millis)},
             widths);
  }

  std::printf(
      "\nshape: raw set-at-a-time navigation edges out the node-at-a-time "
      "Traversal (visited-set updates, per-node callbacks), matching the "
      "paper's preliminary finding.\n");
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run();
  return 0;
}
