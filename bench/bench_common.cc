#include "bench/bench_common.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "exec/thread_pool.h"
#include "obs/httpd.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace mbq::bench {

uint64_t BenchUsers(uint64_t fallback) {
  const char* env = std::getenv("MBQ_BENCH_USERS");
  if (env != nullptr) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v >= 100) return v;
  }
  return fallback;
}

uint32_t BenchRuns() {
  const char* env = std::getenv("MBQ_BENCH_RUNS");
  if (env != nullptr) {
    uint32_t v = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
    if (v >= 1) return v;
  }
  return 10;  // the paper's protocol
}

twitter::DatasetSpec BenchSpec(uint64_t num_users) {
  twitter::DatasetSpec spec;  // defaults mirror the paper's ratios
  spec.num_users = num_users;
  spec.seed = 2015;  // GRADES'15
  return spec;
}

Testbed BuildTestbed(uint64_t num_users) {
  Testbed bed;
  bed.dataset = twitter::GenerateDataset(BenchSpec(num_users));

  nodestore::GraphDbOptions ndb_options;
  ndb_options.wal_enabled = false;  // loaded via the direct loader
  ndb_options.cache_bytes = 256ull << 20;
  bed.db = std::make_unique<nodestore::GraphDb>(ndb_options);
  auto nh = twitter::LoadIntoNodestore(bed.dataset, bed.db.get());
  MBQ_CHECK(nh.ok());
  bed.ndb_handles = *nh;

  bitmapstore::GraphOptions bg_options;
  bg_options.cache_bytes = 256ull << 20;
  bed.graph = std::make_unique<bitmapstore::Graph>(bg_options);
  auto bh = twitter::LoadIntoBitmapstore(bed.dataset, bed.graph.get());
  MBQ_CHECK(bh.ok());
  bed.bm_handles = *bh;

  core::EngineOptions ns_options;
  ns_options.db = bed.db.get();
  auto ns = core::OpenEngine(core::EngineKind::kNodestore, ns_options);
  MBQ_CHECK(ns.ok());
  bed.nodestore_engine = std::move(*ns);

  core::EngineOptions bm_options;
  bm_options.graph = bed.graph.get();
  bm_options.handles = &bed.bm_handles;
  auto bm = core::OpenEngine(core::EngineKind::kBitmap, bm_options);
  MBQ_CHECK(bm.ok());
  bed.bitmap_engine = std::move(*bm);
  return bed;
}

uint32_t BenchThreads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      value = argv[i] + 10;
    }
    if (value != nullptr) {
      uint32_t v = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
      if (v >= 1 && v <= 256) return v;
      std::fprintf(stderr, "ignoring bad --threads value: %s\n", value);
    }
  }
  const char* env = std::getenv("CYPHER_THREADS");
  if (env != nullptr) {
    uint32_t v = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
    if (v >= 1 && v <= 256) return v;
  }
  return 1;
}

void ApplyThreads(Testbed& bed, uint32_t threads) {
  if (threads < 1) threads = 1;
  bed.nodestore_engine->SetThreads(threads);
  bed.bitmap_engine->SetThreads(threads);
}

namespace {

bool IsOnOff(const char* value) {
  return std::strcmp(value, "on") == 0 || std::strcmp(value, "1") == 0 ||
         std::strcmp(value, "true") == 0 || std::strcmp(value, "off") == 0 ||
         std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0;
}

/// on/off/1/0/true/false; anything else keeps `fallback` and warns.
bool ParseOnOff(const char* flag, const char* value, bool fallback) {
  if (std::strcmp(value, "on") == 0 || std::strcmp(value, "1") == 0 ||
      std::strcmp(value, "true") == 0) {
    return true;
  }
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0 ||
      std::strcmp(value, "false") == 0) {
    return false;
  }
  std::fprintf(stderr, "ignoring bad %s value: %s\n", flag, value);
  return fallback;
}

/// Extracts the value of `--flag V` / `--flag=V` from argv, else null.
const char* FlagValue(int argc, char** argv, const char* flag) {
  size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

}  // namespace

namespace {

void MarkBad(BenchOptions* options, const char* flag, const char* value,
             const char* expected) {
  if (options->ok) {
    options->ok = false;
    options->error = std::string("bad ") + flag + " value '" + value +
                     "' (expected " + expected + ")";
  }
}

}  // namespace

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  options.threads = BenchThreads(argc, argv);
  // BenchThreads already fell back past a bad value; re-check it here so
  // strict callers can reject instead.
  if (const char* v = FlagValue(argc, argv, "--threads")) {
    char* end = nullptr;
    unsigned long t = std::strtoul(v, &end, 10);
    if (end == v || *end != '\0' || t < 1 || t > 256) {
      MarkBad(&options, "--threads", v, "an integer in [1, 256]");
      // BenchThreads may have accepted a numeric prefix ("4x" -> 4);
      // malformed values must leave the field at its default.
      options.threads = 1;
    }
  }
  if (const char* v = FlagValue(argc, argv, "--result-cache")) {
    if (!IsOnOff(v)) {
      MarkBad(&options, "--result-cache", v, "on|off");
    }
    options.result_cache = ParseOnOff("--result-cache", v, false);
  }
  if (const char* v = FlagValue(argc, argv, "--adj-cache")) {
    if (!IsOnOff(v)) {
      MarkBad(&options, "--adj-cache", v, "on|off");
    }
    options.adj_cache = ParseOnOff("--adj-cache", v, false);
  }
  return options;
}

BenchOptions ParseBenchOptionsOrDie(int argc, char** argv) {
  BenchOptions options = ParseBenchOptions(argc, argv);
  ServeFlag serve = ParseServeFlag(argc, argv);
  if (!serve.ok && options.ok) {
    options.ok = false;
    options.error = serve.error;
  }
  if (!options.ok) {
    std::fprintf(stderr,
                 "%s: %s\nusage: [--threads N] [--result-cache on|off] "
                 "[--adj-cache on|off] [--serve[=PORT]] "
                 "[--metrics-out FILE]\n",
                 argc > 0 ? argv[0] : "bench", options.error.c_str());
    std::exit(2);
  }
  return options;
}

ServeFlag ParseServeFlag(int argc, char** argv) {
  ServeFlag flag;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      flag.serve = true;
    } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      const char* value = argv[i] + 8;
      char* end = nullptr;
      unsigned long v = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || v > 65535) {
        flag.ok = false;
        flag.error = std::string("bad --serve value '") + value +
                     "' (expected a port in [0, 65535])";
      } else {
        flag.serve = true;
        flag.port = static_cast<uint16_t>(v);
      }
    }
  }
  return flag;
}

void ApplyBenchOptions(Testbed& bed, const BenchOptions& options) {
  ApplyThreads(bed, options.threads);
  cypher::SessionOptions session;
  session.threads = 0;  // keep what ApplyThreads just set
  session.result_cache = options.result_cache;
  session.result_cache_capacity = options.result_cache_capacity;
  session.adjacency_cache = options.adj_cache;
  session.adjacency_cache_capacity = options.adj_cache_capacity;
  bed.nodestore()->Configure(session);
  bed.bitmap()->EnableAdjacencyCache(
      options.adj_cache ? options.adj_cache_capacity : 0, /*min_degree=*/8);
}

MetricsExportGuard::MetricsExportGuard(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      path_ = argv[i + 1];
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      path_ = argv[i] + 14;
    }
  }
  ServeFlag serve_flag = ParseServeFlag(argc, argv);
  if (!serve_flag.ok) {
    std::fprintf(stderr, "%s\n", serve_flag.error.c_str());
    std::exit(2);
  }
  bool serve = serve_flag.serve;
  uint16_t serve_port = serve_flag.port;
  if (serve) {
    obs::ServeOptions options;
    options.port = serve_port;
    auto server = obs::StatsServer::Start(options);
    if (!server.ok()) {
      std::fprintf(stderr, "stats server failed to start: %s\n",
                   server.status().message().c_str());
    } else {
      server_ = std::move(server).value();
      linger_ = true;
      std::fprintf(stderr, "stats server listening on http://%s:%u/\n",
                   server_->bind_address().c_str(),
                   static_cast<unsigned>(server_->port()));
    }
  } else {
    server_ = obs::MaybeServeFromEnv();
  }
}

uint16_t MetricsExportGuard::serve_port() const {
  return server_ != nullptr ? server_->port() : 0;
}

MetricsExportGuard::~MetricsExportGuard() {
  if (!path_.empty()) {
    // Workers may still be folding their per-thread counters into the
    // registry; snapshotting before they finish loses the tail of the
    // last parallel query. Join in-flight pool work first.
    exec::ThreadPool::Default().Drain();
    std::ofstream out(path_);
    if (out) {
      out << obs::MetricsRegistry::Default().Snapshot().ToJson();
      std::fprintf(stderr, "metrics written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "could not open metrics output file: %s\n",
                   path_.c_str());
    }
  }
  if (linger_ && server_ != nullptr) {
    // --serve keeps the finished bench scrapeable: the results above are
    // printed, the server stays up, and the process waits to be killed.
    std::fprintf(stderr,
                 "workload done; stats server still on http://%s:%u/ "
                 "(kill the process to exit)\n",
                 server_->bind_address().c_str(),
                 static_cast<unsigned>(server_->port()));
    for (;;) pause();
  }
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  std::string line = "|";
  for (size_t i = 0; i < cells.size(); ++i) {
    int width = i < widths.size() ? widths[i] : 12;
    char buf[256];
    std::snprintf(buf, sizeof(buf), " %-*s |", width, cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

void PrintRule(const std::vector<int>& widths) {
  std::string line = "|";
  for (int width : widths) {
    line += std::string(static_cast<size_t>(width) + 2, '-') + "|";
  }
  std::printf("%s\n", line.c_str());
}

std::string FormatMillis(double millis) {
  char buf[64];
  if (millis < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", millis);
  } else if (millis < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", millis);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", millis / 1000.0);
  }
  return buf;
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c != 0 && c % 3 == 0) out += ',';
    out += *it;
    ++c;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  }
  return buf;
}

}  // namespace mbq::bench
