// Extension E1 (the paper's future work, §5): "it would be possible to
// test for the ability of systems to handle update workloads" by
// generating the graph on-the-fly with new incoming users, tweets and
// follow relationships. We stream live events into both engines —
// transactional batches on the record store, in-place updates on the
// bitmap store — measuring sustained update throughput and the query
// latency before and after the stream, and verifying the engines still
// agree afterwards.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/updates.h"
#include "twitter/stream.h"
#include "util/logging.h"

namespace mbq::bench {
namespace {

double ThroughputKeps(uint64_t events, double millis) {
  return millis > 0 ? static_cast<double>(events) / millis : 0;
}

void Run() {
  uint64_t users = BenchUsers();
  std::printf("Extension E1 — live update workload (%s base users)\n\n",
              FormatCount(users).c_str());
  Testbed bed = BuildTestbed(users);
  uint32_t runs = BenchRuns();

  auto by_followees = core::UsersByFolloweeCount(bed.dataset);
  int64_t probe_uid = by_followees[by_followees.size() * 3 / 4].second;

  auto query_latency = [&](core::MicroblogEngine* engine,
                           const std::function<uint64_t()>& io) -> double {
    auto timing = core::MeasureQuery(
        [&]() -> Result<uint64_t> {
          MBQ_ASSIGN_OR_RETURN(auto rows, engine->FolloweesOf(probe_uid));
          return rows.size();
        },
        1, runs, io);
    MBQ_CHECK(timing.ok());
    return timing->avg_millis;
  };
  double ns_before = query_latency(bed.nodestore_engine.get(),
                                   [&] { return bed.db->SimulatedIoNanos(); });
  double bm_before = query_latency(
      bed.bitmap_engine.get(), [&] { return bed.graph->SimulatedIoNanos(); });

  // One deterministic stream, applied identically to both engines.
  const size_t kBatches = 20;
  const size_t kBatchSize = 500;
  twitter::UpdateStream stream(bed.dataset, twitter::StreamMix{}, 77);
  std::vector<std::vector<twitter::StreamEvent>> batches;
  for (size_t b = 0; b < kBatches; ++b) batches.push_back(stream.Take(kBatchSize));

  core::NodestoreUpdateApplier ns_applier(bed.db.get(), bed.ndb_handles,
                                          bed.dataset);
  core::BitmapUpdateApplier bm_applier(bed.graph.get(), bed.bm_handles,
                                       bed.dataset);

  auto apply_all = [&](auto& applier, const std::function<uint64_t()>& io,
                       const char* name) {
    WallClock wall;
    uint64_t io0 = io();
    uint64_t wall0 = wall.NowNanos();
    for (const auto& batch : batches) {
      Status st = applier.ApplyBatch(batch);
      MBQ_CHECK(st.ok());
    }
    double millis = static_cast<double>(wall.NowNanos() - wall0) / 1e6 +
                    static_cast<double>(io() - io0) / 1e6;
    std::printf(
        "  %-12s %s events in %s  (%.1f events/ms)\n", name,
        FormatCount(kBatches * kBatchSize).c_str(),
        FormatMillis(millis).c_str(),
        ThroughputKeps(kBatches * kBatchSize, millis));
  };

  std::printf("update throughput (%zu batches x %zu events):\n", kBatches,
              kBatchSize);
  apply_all(ns_applier, [&] { return bed.db->SimulatedIoNanos(); },
            "nodestore");
  apply_all(bm_applier, [&] { return bed.graph->SimulatedIoNanos(); },
            "bitmapstore");

  double ns_after = query_latency(bed.nodestore_engine.get(),
                                  [&] { return bed.db->SimulatedIoNanos(); });
  double bm_after = query_latency(
      bed.bitmap_engine.get(), [&] { return bed.graph->SimulatedIoNanos(); });
  std::printf("\nquery latency (Q2.1 on uid %lld):\n",
              static_cast<long long>(probe_uid));
  std::printf("  nodestore   before %s -> after %s\n",
              FormatMillis(ns_before).c_str(), FormatMillis(ns_after).c_str());
  std::printf("  bitmapstore before %s -> after %s\n",
              FormatMillis(bm_before).c_str(), FormatMillis(bm_after).c_str());

  // Cross-engine agreement after the stream: both engines saw the same
  // events, so the workload queries must still coincide.
  auto ns_rows = bed.nodestore_engine->FolloweesOf(probe_uid);
  auto bm_rows = bed.bitmap_engine->FolloweesOf(probe_uid);
  MBQ_CHECK(ns_rows.ok() && bm_rows.ok());
  core::SortRows(&*ns_rows);
  core::SortRows(&*bm_rows);
  bool agree = *ns_rows == *bm_rows;
  auto ns_reco = bed.nodestore_engine->RecommendFolloweesOfFollowees(
      probe_uid, 1 << 30);
  auto bm_reco =
      bed.bitmap_engine->RecommendFolloweesOfFollowees(probe_uid, 1 << 30);
  MBQ_CHECK(ns_reco.ok() && bm_reco.ok());
  core::SortRows(&*ns_reco);
  core::SortRows(&*bm_reco);
  bool agree_reco = *ns_reco == *bm_reco;
  std::printf("\nengines agree after %s updates: Q2.1 %s, Q4.1 %s\n",
              FormatCount(kBatches * kBatchSize).c_str(),
              agree ? "yes" : "NO", agree_reco ? "yes" : "NO");
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run();
  return 0;
}
