#ifndef MBQ_BENCH_BENCH_COMMON_H_
#define MBQ_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/bitmap_engine.h"
#include "core/nodestore_engine.h"
#include "core/workload.h"
#include "twitter/dataset.h"
#include "twitter/loaders.h"

namespace mbq::obs {
class StatsServer;
}  // namespace mbq::obs

namespace mbq::bench {

/// One fully loaded experimental setup: the generated dataset plus both
/// engines carrying it, ready for the Table 2 workload. Engines are built
/// through core::OpenEngine and held by interface; the typed accessors
/// below recover the concrete engines for implementation-specific knobs
/// (the Cypher session, bitmap handles).
struct Testbed {
  twitter::Dataset dataset;
  std::unique_ptr<nodestore::GraphDb> db;
  std::unique_ptr<bitmapstore::Graph> graph;
  twitter::NodestoreHandles ndb_handles;
  twitter::BitmapHandles bm_handles;
  std::unique_ptr<core::MicroblogEngine> nodestore_engine;
  std::unique_ptr<core::MicroblogEngine> bitmap_engine;

  core::NodestoreEngine* nodestore() const {
    return static_cast<core::NodestoreEngine*>(nodestore_engine.get());
  }
  core::BitmapEngine* bitmap() const {
    return static_cast<core::BitmapEngine*>(bitmap_engine.get());
  }
};

/// The option surface shared by every bench binary: thread count plus the
/// read-cache toggles, parsed from one flag vocabulary (`--threads N`,
/// `--result-cache on|off`, `--adj-cache on|off`, `=`-forms accepted).
struct BenchOptions {
  uint32_t threads = 1;
  bool result_cache = false;
  bool adj_cache = false;
  size_t result_cache_capacity = 256;
  size_t adj_cache_capacity = 4096;
  /// False when a flag value was malformed; `error` names the first
  /// offender. Malformed values still leave the field at its default,
  /// so callers that ignore `ok` keep the old warn-and-continue
  /// behaviour.
  bool ok = true;
  std::string error;
};

/// Scale factor: number of users in the synthetic crawl. Overridable with
/// the MBQ_BENCH_USERS environment variable; the default keeps every bench
/// binary under a couple of minutes on one core while preserving the
/// paper's shape (the paper's crawl had 24.8M users; we default to 20k,
/// a ~1/1200 scale with identical per-user ratios).
uint64_t BenchUsers(uint64_t fallback = 20000);

/// Runs per measured point, after warm-up (paper: average of 10).
uint32_t BenchRuns();

/// The spec used by all benches at the given scale.
twitter::DatasetSpec BenchSpec(uint64_t num_users);

/// Generates the dataset and loads both engines (HDD-profile simulated
/// disks, warm after load unless DropCaches is called).
Testbed BuildTestbed(uint64_t num_users);

/// Parses `--threads N` (or `--threads=N`) from argv; falls back to the
/// CYPHER_THREADS environment variable, then to 1 (fully sequential).
uint32_t BenchThreads(int argc, char** argv);

/// Parses the whole shared bench flag surface (threads via BenchThreads,
/// `--result-cache` / `--adj-cache` with on/off/1/0/true/false values).
/// Unknown flags are left for the bench's own parsing. Malformed values
/// set `ok = false` and `error` but still return usable defaults.
BenchOptions ParseBenchOptions(int argc, char** argv);

/// ParseBenchOptions, but malformed values are fatal: prints the error
/// and a usage hint to stderr and exits with status 2 (the conventional
/// bad-usage code, distinct from a failed run's 1).
BenchOptions ParseBenchOptionsOrDie(int argc, char** argv);

/// The `--serve` / `--serve=PORT` flag, parsed on its own so the logic
/// is unit-testable away from MetricsExportGuard's side effects.
struct ServeFlag {
  bool serve = false;
  uint16_t port = 0;  ///< 0 = ephemeral
  bool ok = true;
  std::string error;
};
ServeFlag ParseServeFlag(int argc, char** argv);

/// Applies `options` to both engines: thread count everywhere, result +
/// adjacency caches on the Cypher session, adjacency cache on the bitmap
/// engine.
void ApplyBenchOptions(Testbed& bed, const BenchOptions& options);

/// Configures both engines of `bed` for `threads`-way parallel execution
/// (morsel-parallel Cypher pipelines on the nodestore side, fanned-out
/// Neighbors loops on the bitmap side). `threads == 1` restores the
/// sequential default. Workers come from exec::ThreadPool::Default().
void ApplyThreads(Testbed& bed, uint32_t threads);

/// Parses `--metrics-out <file>.json` from argv and, on destruction,
/// writes a JSON snapshot of the default metrics registry to that file.
/// Declare one at the top of a bench's main():
///
///   int main(int argc, char** argv) {
///     mbq::bench::MetricsExportGuard metrics(argc, argv);
///     ...
///   }
///
/// Without the flag the guard is inert. `--metrics-out=<file>` also works.
///
/// The guard also owns the embedded stats server: `--serve` (ephemeral
/// port) or `--serve=PORT` starts it before the workload runs, and on
/// destruction the process lingers — serving /metrics, /queries, /slow,
/// /trace — until killed, so scripts can scrape a finished bench. The
/// MBQ_STATS_PORT environment variable starts the same server without
/// the linger.
class MetricsExportGuard {
 public:
  MetricsExportGuard(int argc, char** argv);
  ~MetricsExportGuard();

  MetricsExportGuard(const MetricsExportGuard&) = delete;
  MetricsExportGuard& operator=(const MetricsExportGuard&) = delete;

  const std::string& path() const { return path_; }
  /// Bound stats-server port; 0 when not serving.
  uint16_t serve_port() const;

 private:
  std::string path_;
  bool linger_ = false;
  std::unique_ptr<obs::StatsServer> server_;
};

/// Prints a markdown-ish table row: fixed-width columns.
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);
void PrintRule(const std::vector<int>& widths);

std::string FormatMillis(double millis);
std::string FormatCount(uint64_t n);
std::string FormatBytes(uint64_t bytes);

}  // namespace mbq::bench

#endif  // MBQ_BENCH_BENCH_COMMON_H_
