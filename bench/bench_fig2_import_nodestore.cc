// Reproduces Figure 2 of the paper: import times for nodes and edges
// using the record-store (Neo4j-style) engine's batch importer, plus the
// narrative around it — the import tool writes continuously and
// concurrently to disk, runs "additional steps" (dense-node computation)
// after the data, and builds indexes strictly after import.
//
// Output: one progress sample per chunk (objects imported, elapsed time,
// per-chunk delta), separated into the node phase (Figure 2a) and the
// edge phase (Figure 2b), then the post-processing phases and totals.

#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "nodestore/batch_importer.h"
#include "twitter/csv_export.h"
#include "util/logging.h"

namespace mbq::bench {
namespace {

void Run() {
  uint64_t users = BenchUsers();
  twitter::DatasetSpec spec = BenchSpec(users);
  spec.retweet_fraction = 0;  // paper parity
  twitter::Dataset dataset = twitter::GenerateDataset(spec);

  auto dir = std::filesystem::temp_directory_path() /
             ("mbq_fig2_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  MBQ_CHECK(twitter::ExportCsv(dataset, dir.string()).ok());

  nodestore::GraphDbOptions options;
  options.wal_enabled = false;  // the import tool bypasses transactions
  // The paper's testbed had more RAM (8 GB) than the final Neo4j store
  // (2.8 GB); the import tool "effectively manages memory without
  // explicit configuration". Keep the same cache-exceeds-store regime
  // at our scale: pages stream out on flush, not under thrash.
  options.cache_bytes = (64ull << 20) + (static_cast<uint64_t>(users) << 12);
  // HDD-like latency model (the paper's non-SSD testbed).
  nodestore::GraphDb db(options);

  nodestore::BatchImporter importer(&db);
  uint64_t interval = std::max<uint64_t>(1000, dataset.NumNodes() / 25);

  struct Sample {
    std::string phase;
    uint64_t total;
    double elapsed;
    double delta = 0;
  };
  std::vector<Sample> samples;
  importer.SetProgressCallback(
      [&](const common::ImportProgress& p) {
        Sample s{p.phase, p.total_objects, p.elapsed_millis, 0};
        s.delta = samples.empty() ? s.elapsed
                                  : s.elapsed - samples.back().elapsed;
        samples.push_back(std::move(s));
      },
      interval);

  std::printf("Figure 2: importing %s nodes + %s edges (nodestore)\n\n",
              FormatCount(dataset.NumNodes()).c_str(),
              FormatCount(dataset.NumEdges()).c_str());
  Status st = importer.Run(twitter::BuildImportSpec(/*with_retweets=*/false),
                           dir.string());
  MBQ_CHECK(st.ok());
  std::filesystem::remove_all(dir);

  std::vector<int> widths{16, 14, 14, 12};
  auto print_phase = [&](const char* title, const char* prefix) {
    std::printf("%s\n", title);
    PrintRow({"phase", "objects", "elapsed", "delta"}, widths);
    PrintRule(widths);
    for (const Sample& s : samples) {
      if (s.phase.rfind(prefix, 0) != 0) continue;
      PrintRow({s.phase, FormatCount(s.total), FormatMillis(s.elapsed),
                FormatMillis(s.delta)},
               widths);
    }
    std::printf("\n");
  };
  print_phase("(a) node import", "nodes:");
  print_phase("(b) edge import", "rels:");
  print_phase("post-import steps (dense nodes, indexes)", "dense");
  print_phase("", "index:");

  double total = samples.empty() ? 0 : samples.back().elapsed;
  std::printf("Totals:\n");
  std::printf("  dense nodes marked : %s\n",
              FormatCount(importer.dense_nodes()).c_str());
  std::printf("  total import time  : %s (paper: 45 min at 1300x scale)\n",
              FormatMillis(total).c_str());
  std::printf("  store size on disk : %s (paper: 2.8 GB)\n",
              FormatBytes(db.DiskSizeBytes()).c_str());
  std::printf("  disk page writes   : %s\n",
              FormatCount(db.disk_stats().page_writes).c_str());
  std::printf("  disk seeks         : %s\n",
              FormatCount(db.disk_stats().seeks).c_str());
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run();
  return 0;
}
