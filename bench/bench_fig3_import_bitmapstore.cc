// Reproduces Figure 3 of the paper: import times for nodes and edges
// using the bitmap-store (Sparksee-style) engine's script loader, with
// the behaviours the paper reports:
//   - the three node regions (hashtag / tweet / user payload sizes),
//   - the vertical line where the follows edges (~86% of edges) end,
//   - sharp jumps where the cache fills and flushes to disk in one stall,
//   - the extent-size effect ("with lower extent sizes, insertions are
//     fast initially but slow down as the database size grows"),
//   - the neighbor-materialization blow-up that made the paper abort an
//     8-hour import.

#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "bitmapstore/script_loader.h"
#include "twitter/csv_export.h"
#include "util/logging.h"

namespace mbq::bench {
namespace {

struct Sample {
  std::string phase;
  uint64_t total;
  double elapsed;
  double delta = 0;
};

/// Runs one scripted import and returns the samples plus the graph stats.
struct ImportOutcome {
  std::vector<Sample> samples;
  double total_millis = 0;
  uint64_t disk_bytes = 0;
  uint64_t flush_stalls = 0;
  uint64_t seeks = 0;
};

ImportOutcome RunImport(const twitter::Dataset& dataset,
                        const std::string& dir,
                        bitmapstore::GraphOptions options) {
  bitmapstore::Graph graph(options);
  bitmapstore::ScriptLoader loader(&graph);
  ImportOutcome outcome;
  uint64_t interval =
      std::max<uint64_t>(1000, (dataset.NumNodes() + dataset.NumEdges()) / 40);
  loader.SetProgressCallback(
      [&](const common::ImportProgress& p) {
        Sample s{p.phase, p.total_objects, p.elapsed_millis, 0};
        s.delta = outcome.samples.empty()
                      ? s.elapsed
                      : s.elapsed - outcome.samples.back().elapsed;
        outcome.samples.push_back(std::move(s));
      },
      interval);
  Status st =
      loader.Execute(twitter::BuildLoadScript(/*with_retweets=*/false), dir);
  MBQ_CHECK(st.ok());
  outcome.total_millis =
      outcome.samples.empty() ? 0 : outcome.samples.back().elapsed;
  outcome.disk_bytes = graph.DiskSizeBytes();
  outcome.flush_stalls = graph.cache_stats().flush_stalls;
  outcome.seeks = graph.disk_stats().seeks;
  return outcome;
}

void PrintSeries(const ImportOutcome& outcome) {
  std::vector<int> widths{16, 14, 14, 12};
  auto print_phase = [&](const char* title, const char* prefix) {
    std::printf("%s\n", title);
    PrintRow({"phase", "objects", "elapsed", "delta"}, widths);
    PrintRule(widths);
    for (const Sample& s : outcome.samples) {
      if (s.phase.rfind(prefix, 0) != 0) continue;
      PrintRow({s.phase, FormatCount(s.total), FormatMillis(s.elapsed),
                FormatMillis(s.delta)},
               widths);
    }
    std::printf("\n");
  };
  print_phase("(a) node import — three payload regions", "nodes:");
  print_phase("(b) edge import — follows ends at the vertical line",
              "edges:");
  // The paper's vertical line: the last follows sample.
  for (auto it = outcome.samples.rbegin(); it != outcome.samples.rend();
       ++it) {
    if (it->phase == "edges:follows") {
      std::printf("vertical line (end of follows): %s objects at %s\n\n",
                  FormatCount(it->total).c_str(),
                  FormatMillis(it->elapsed).c_str());
      break;
    }
  }
}

void Run() {
  uint64_t users = BenchUsers();
  twitter::DatasetSpec spec = BenchSpec(users);
  spec.retweet_fraction = 0;
  twitter::Dataset dataset = twitter::GenerateDataset(spec);

  auto dir = std::filesystem::temp_directory_path() /
             ("mbq_fig3_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  MBQ_CHECK(twitter::ExportCsv(dataset, dir.string()).ok());

  std::printf("Figure 3: importing %s nodes + %s edges (bitmapstore)\n\n",
              FormatCount(dataset.NumNodes()).c_str(),
              FormatCount(dataset.NumEdges()).c_str());

  // Paper configuration: 64 KiB extents, recovery disabled, and a cache
  // about a third of the final database (the paper: 5 GB cache, 15.1 GB
  // store) so the flush-on-full stalls appear.
  bitmapstore::GraphOptions options;
  options.extent_pages = 8;  // 64 KiB
  options.cache_bytes =
      std::max<uint64_t>(4ull << 20, static_cast<uint64_t>(users) << 10);
  options.recovery_enabled = false;
  ImportOutcome base = RunImport(dataset, dir.string(), options);
  PrintSeries(base);

  std::printf("Totals (materialization OFF, the paper's working setup):\n");
  std::printf("  total import time : %s (paper: 72 min at scale)\n",
              FormatMillis(base.total_millis).c_str());
  std::printf("  store size on disk: %s (paper: 15.1 GB)\n",
              FormatBytes(base.disk_bytes).c_str());
  std::printf("  cache flush stalls: %s (the jumps in the plot)\n",
              FormatCount(base.flush_stalls).c_str());

  // Extent-size ablation.
  std::printf("\nExtent-size sweep (same data, cache 4 MiB):\n");
  std::vector<int> widths{14, 14, 14, 12};
  PrintRow({"extent", "import time", "disk seeks", "stalls"}, widths);
  PrintRule(widths);
  for (uint32_t extent_pages : {1u, 2u, 8u, 32u}) {
    bitmapstore::GraphOptions sweep = options;
    sweep.extent_pages = extent_pages;
    ImportOutcome outcome = RunImport(dataset, dir.string(), sweep);
    PrintRow({FormatBytes(uint64_t{extent_pages} * storage::kPageSize),
              FormatMillis(outcome.total_millis),
              FormatCount(outcome.seeks), FormatCount(outcome.flush_stalls)},
             widths);
  }

  // Neighbor materialization: run on a reduced prefix and extrapolate —
  // the paper aborted the full materialized import after 8 hours.
  std::printf("\nNeighbor materialization (paper: aborted after 8 h):\n");
  // Run at 1/4 scale with a proportionally scaled-down cache, keeping
  // the paper's cache-smaller-than-hot-set regime: the materialized
  // import rewrites each endpoint's whole neighbor structure per edge,
  // which thrashes once hub structures exceed the cache.
  twitter::DatasetSpec small_spec =
      BenchSpec(std::max<uint64_t>(500, users / 4));
  small_spec.retweet_fraction = 0;
  twitter::Dataset small = twitter::GenerateDataset(small_spec);
  auto small_dir = std::filesystem::temp_directory_path() /
                   ("mbq_fig3s_" + std::to_string(::getpid()));
  std::filesystem::create_directories(small_dir);
  MBQ_CHECK(twitter::ExportCsv(small, small_dir.string()).ok());
  bitmapstore::GraphOptions mat_off = options;
  mat_off.cache_bytes = 1ull << 20;
  ImportOutcome off = RunImport(small, small_dir.string(), mat_off);
  bitmapstore::GraphOptions mat_on = mat_off;
  mat_on.materialize_neighbors = true;
  ImportOutcome on = RunImport(small, small_dir.string(), mat_on);
  std::filesystem::remove_all(small_dir);
  std::filesystem::remove_all(dir);
  double slowdown = off.total_millis > 0 ? on.total_millis / off.total_millis
                                         : 0;
  std::printf("  at 1/4 scale: OFF %s vs ON %s -> %.1fx slower\n",
              FormatMillis(off.total_millis).c_str(),
              FormatMillis(on.total_millis).c_str(), slowdown);
  std::printf("  (the extra random read-modify-write per edge is what made\n"
              "   the paper's materialized import unfinishable)\n");
}

}  // namespace
}  // namespace mbq::bench

int main(int argc, char** argv) {
  mbq::bench::MetricsExportGuard metrics(argc, argv);
  mbq::bench::Run();
  return 0;
}
