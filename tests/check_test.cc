// Tests for the storage checker (core/check.h): clean stores report no
// issues on both engines and both nodestore layouts; injected
// corruption — broken relationship chains, skewed bitmap counts,
// disagreeing adjacency — is detected; loaders run the optional
// post-import verification hook.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "bitmapstore/graph.h"
#include "bitmapstore/script_loader.h"
#include "core/check.h"
#include "nodestore/graph_db.h"
#include "twitter/csv_export.h"
#include "twitter/dataset.h"
#include "twitter/loaders.h"
#include "util/logging.h"

namespace mbq::core {
namespace {

using bitmapstore::Graph;
using nodestore::GraphDb;
using nodestore::GraphDbOptions;
using nodestore::RelId;
using nodestore::RelRecord;

twitter::Dataset SmallDataset() {
  twitter::DatasetSpec spec;
  spec.num_users = 50;
  spec.retweet_fraction = 0.2;
  return twitter::GenerateDataset(spec);
}

GraphDbOptions FastOptions(bool partitioned) {
  GraphDbOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  options.wal_enabled = false;
  options.semantic_partitioning = partitioned;
  return options;
}

/// First in-use non-self-loop relationship.
RelId FirstRel(GraphDb* db, RelRecord* rec_out) {
  RelId found = nodestore::kInvalidRel;
  auto st = db->ForEachRawRel([&](RelId id, const RelRecord& rec) {
    if (!rec.in_use || rec.src == rec.dst) return true;
    found = id;
    *rec_out = rec;
    return false;
  });
  MBQ_CHECK(st.ok());
  MBQ_CHECK(found != nodestore::kInvalidRel);
  return found;
}

bool HasComponent(const CheckReport& report, const std::string& component) {
  for (const CheckIssue& issue : report.issues) {
    if (issue.component == component) return true;
  }
  return false;
}

// ----------------------------------------------------------- Nodestore

class NodestoreCheckTest : public ::testing::TestWithParam<bool> {};

TEST_P(NodestoreCheckTest, FreshImportIsClean) {
  GraphDb db(FastOptions(GetParam()));
  ASSERT_TRUE(twitter::LoadIntoNodestore(SmallDataset(), &db).ok());
  auto report = CheckNodestore(&db);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->ToText();
  EXPECT_GT(report->nodes_checked, 0u);
  EXPECT_GT(report->rels_checked, 0u);
  EXPECT_GT(report->indexes_checked, 0u);
}

TEST_P(NodestoreCheckTest, DetectsBrokenRelationshipChain) {
  GraphDb db(FastOptions(GetParam()));
  ASSERT_TRUE(twitter::LoadIntoNodestore(SmallDataset(), &db).ok());

  // Point the chain at the record itself: the walk cycles and the
  // doubly-linked invariant breaks.
  RelRecord rec;
  RelId victim = FirstRel(&db, &rec);
  rec.src_next = victim;
  ASSERT_TRUE(db.RawPutRelRecord(victim, rec).ok());

  auto report = CheckNodestore(&db);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_TRUE(HasComponent(*report, "rel-chain")) << report->ToText();
}

TEST_P(NodestoreCheckTest, DetectsDanglingChainPointer) {
  GraphDb db(FastOptions(GetParam()));
  ASSERT_TRUE(twitter::LoadIntoNodestore(SmallDataset(), &db).ok());

  RelRecord rec;
  RelId victim = FirstRel(&db, &rec);
  rec.dst_next = rec.dst_next == nodestore::kInvalidRel
                     ? victim + (1ull << 40)  // far past any store
                     : rec.dst_next + (1ull << 40);
  ASSERT_TRUE(db.RawPutRelRecord(victim, rec).ok());

  auto report = CheckNodestore(&db);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_TRUE(HasComponent(*report, "rel-record")) << report->ToText();
}

TEST_P(NodestoreCheckTest, MaxIssuesSuppressesButStillFails) {
  GraphDb db(FastOptions(GetParam()));
  ASSERT_TRUE(twitter::LoadIntoNodestore(SmallDataset(), &db).ok());

  RelRecord rec;
  RelId victim = FirstRel(&db, &rec);
  rec.src_next = victim;
  ASSERT_TRUE(db.RawPutRelRecord(victim, rec).ok());

  CheckOptions options;
  options.max_issues = 1;
  auto report = CheckNodestore(&db, options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_EQ(report->issues.size(), 1u);
  EXPECT_GT(report->suppressed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Layouts, NodestoreCheckTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Partitioned" : "Single";
                         });

// --------------------------------------------------------- Bitmapstore

TEST(BitmapstoreCheckTest, FreshLoadIsClean) {
  Graph graph;
  ASSERT_TRUE(twitter::LoadIntoBitmapstore(SmallDataset(), &graph).ok());
  auto report = CheckBitmapstore(&graph);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->ToText();
  EXPECT_GT(report->objects_checked, 0u);
  EXPECT_GT(report->attrs_checked, 0u);
}

TEST(BitmapstoreCheckTest, DetectsSkewedTypeCount) {
  Graph graph;
  auto handles = twitter::LoadIntoBitmapstore(SmallDataset(), &graph);
  ASSERT_TRUE(handles.ok());
  graph.CorruptTypeCountForTest(handles->user, 2);

  auto report = CheckBitmapstore(&graph);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_TRUE(HasComponent(*report, "type-count")) << report->ToText();
}

TEST(BitmapstoreCheckTest, DetectsAdjacencyDisagreement) {
  Graph graph;
  auto handles = twitter::LoadIntoBitmapstore(SmallDataset(), &graph);
  ASSERT_TRUE(handles.ok());

  // Plant an existing follows edge in a node that is not its tail.
  auto edges = graph.Select(handles->follows);
  ASSERT_TRUE(edges.ok());
  bitmapstore::Oid planted = bitmapstore::kInvalidOid;
  bitmapstore::Oid wrong_node = bitmapstore::kInvalidOid;
  for (bitmapstore::Oid edge : edges->ToVector()) {
    bitmapstore::Oid tail, head;
    graph.RawEdgeEndpoints(edge, &tail, &head);
    if (tail != head) {
      planted = edge;
      wrong_node = head;
      break;
    }
  }
  ASSERT_NE(planted, bitmapstore::kInvalidOid);
  graph.CorruptAdjacencyForTest(handles->follows, wrong_node, planted);

  auto report = CheckBitmapstore(&graph);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_TRUE(HasComponent(*report, "adjacency")) << report->ToText();
}

// ------------------------------------------------------ Loader hooks

TEST(PostImportCheckTest, ScriptLoaderRunsHookAndPropagatesFailure) {
  auto dataset = SmallDataset();
  std::string dir = ::testing::TempDir() + "/mbq_check_csv";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(twitter::ExportCsv(dataset, dir).ok());

  Graph graph;
  bitmapstore::ScriptLoader loader(&graph);
  bool hook_ran = false;
  loader.SetPostImportCheck([&]() -> Status {
    hook_ran = true;
    auto report = CheckBitmapstore(&graph);
    MBQ_RETURN_IF_ERROR(report.status());
    return report->ok() ? Status::OK()
                        : Status::Corruption("corrupt after import");
  });
  ASSERT_TRUE(loader.Execute(twitter::BuildLoadScript(true), dir).ok());
  EXPECT_TRUE(hook_ran);

  // A failing hook fails the load.
  bitmapstore::Graph graph2;
  bitmapstore::ScriptLoader loader2(&graph2);
  loader2.SetPostImportCheck(
      []() -> Status { return Status::Corruption("injected"); });
  EXPECT_FALSE(loader2.Execute(twitter::BuildLoadScript(true), dir).ok());
}

TEST(PostImportCheckTest, BatchImporterRunsHook) {
  auto dataset = SmallDataset();
  std::string dir = ::testing::TempDir() + "/mbq_check_csv2";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(twitter::ExportCsv(dataset, dir).ok());

  GraphDb db(FastOptions(false));
  nodestore::BatchImporter importer(&db);
  bool hook_ran = false;
  importer.SetPostImportCheck([&]() -> Status {
    hook_ran = true;
    auto report = CheckNodestore(&db);
    MBQ_RETURN_IF_ERROR(report.status());
    return report->ok() ? Status::OK()
                        : Status::Corruption("corrupt after import");
  });
  ASSERT_TRUE(importer.Run(twitter::BuildImportSpec(true), dir).ok());
  EXPECT_TRUE(hook_ran);
}

}  // namespace
}  // namespace mbq::core
