#include <gtest/gtest.h>

#include <memory>

#include "core/bitmap_engine.h"
#include "core/nodestore_engine.h"
#include "core/workload.h"
#include "twitter/loaders.h"

namespace mbq::core {
namespace {

using twitter::Dataset;
using twitter::DatasetSpec;

/// Loads the same generated dataset into both engines and checks that
/// every Table 2 query returns identical results — the strongest
/// correctness check in this reproduction (two independent storage
/// engines, two independent query implementations, one answer).
class EnginesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec;
    spec.num_users = 600;
    spec.follows_per_user = 9;
    spec.active_user_fraction = 0.3;
    spec.tweets_per_active_user = 6;
    spec.mentions_per_tweet = 1.2;
    spec.tags_per_tweet = 0.8;
    spec.retweet_fraction = 0.15;
    spec.seed = 7;
    dataset_ = new Dataset(twitter::GenerateDataset(spec));

    nodestore::GraphDbOptions ndb_options;
    ndb_options.disk_profile = storage::DiskProfile::Instant();
    ndb_options.wal_enabled = false;
    db_ = new nodestore::GraphDb(ndb_options);
    auto nh = twitter::LoadIntoNodestore(*dataset_, db_);
    ASSERT_TRUE(nh.ok()) << nh.status().ToString();

    bitmapstore::GraphOptions bg_options;
    bg_options.disk_profile = storage::DiskProfile::Instant();
    graph_ = new bitmapstore::Graph(bg_options);
    auto bh = twitter::LoadIntoBitmapstore(*dataset_, graph_);
    ASSERT_TRUE(bh.ok()) << bh.status().ToString();

    // Through the factory (the one construction surface benches and tests
    // share); the typed pointers are recovered for session()-level tests.
    EngineOptions ns_options;
    ns_options.db = db_;
    auto ns = OpenEngine(EngineKind::kNodestore, ns_options);
    ASSERT_TRUE(ns.ok()) << ns.status().ToString();
    ns_engine_ = static_cast<NodestoreEngine*>(ns->release());

    EngineOptions bm_options;
    bm_options.graph = graph_;
    bm_options.handles = &*bh;
    auto bm = OpenEngine(EngineKind::kBitmap, bm_options);
    ASSERT_TRUE(bm.ok()) << bm.status().ToString();
    bm_engine_ = static_cast<BitmapEngine*>(bm->release());
  }

  static void TearDownTestSuite() {
    delete ns_engine_;
    delete bm_engine_;
    delete db_;
    delete graph_;
    delete dataset_;
    ns_engine_ = nullptr;
    bm_engine_ = nullptr;
    db_ = nullptr;
    graph_ = nullptr;
    dataset_ = nullptr;
  }

  static void ExpectSameRows(Result<ValueRows> a, Result<ValueRows> b,
                             const std::string& what) {
    ASSERT_TRUE(a.ok()) << what << " nodestore: " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << what << " bitmapstore: " << b.status().ToString();
    ValueRows ra = *a;
    ValueRows rb = *b;
    SortRows(&ra);
    SortRows(&rb);
    ASSERT_EQ(ra.size(), rb.size()) << what;
    for (size_t i = 0; i < ra.size(); ++i) {
      ASSERT_EQ(ra[i].size(), rb[i].size()) << what << " row " << i;
      for (size_t j = 0; j < ra[i].size(); ++j) {
        EXPECT_EQ(ra[i][j].Compare(rb[i][j]), 0)
            << what << " row " << i << " col " << j << ": "
            << ra[i][j].ToString() << " vs " << rb[i][j].ToString();
      }
    }
  }

  static Dataset* dataset_;
  static nodestore::GraphDb* db_;
  static bitmapstore::Graph* graph_;
  static NodestoreEngine* ns_engine_;
  static BitmapEngine* bm_engine_;
};

Dataset* EnginesTest::dataset_ = nullptr;
nodestore::GraphDb* EnginesTest::db_ = nullptr;
bitmapstore::Graph* EnginesTest::graph_ = nullptr;
NodestoreEngine* EnginesTest::ns_engine_ = nullptr;
BitmapEngine* EnginesTest::bm_engine_ = nullptr;

TEST_F(EnginesTest, Q11SelectAgrees) {
  for (int64_t threshold : {0, 5, 20, 100}) {
    ExpectSameRows(ns_engine_->SelectUsersByFollowerCount(threshold),
                   bm_engine_->SelectUsersByFollowerCount(threshold),
                   "Q1.1 t=" + std::to_string(threshold));
  }
}

TEST_F(EnginesTest, Q21FolloweesAgree) {
  for (int64_t uid : {0, 7, 42, 599}) {
    ExpectSameRows(ns_engine_->FolloweesOf(uid), bm_engine_->FolloweesOf(uid),
                   "Q2.1 uid=" + std::to_string(uid));
  }
}

TEST_F(EnginesTest, Q22FolloweeTweetsAgree) {
  for (int64_t uid : {3, 77, 200}) {
    ExpectSameRows(ns_engine_->TweetsOfFollowees(uid),
                   bm_engine_->TweetsOfFollowees(uid),
                   "Q2.2 uid=" + std::to_string(uid));
  }
}

TEST_F(EnginesTest, Q23FolloweeHashtagsAgree) {
  for (int64_t uid : {3, 77, 200}) {
    ExpectSameRows(ns_engine_->HashtagsUsedByFollowees(uid),
                   bm_engine_->HashtagsUsedByFollowees(uid),
                   "Q2.3 uid=" + std::to_string(uid));
  }
}

TEST_F(EnginesTest, Q31CoMentionsAgree) {
  auto by_mentions = UsersByMentionCount(*dataset_);
  ASSERT_FALSE(by_mentions.empty());
  // Most-mentioned user plus a mid-range one.
  int64_t hot = by_mentions.back().second;
  int64_t mid = by_mentions[by_mentions.size() / 2].second;
  for (int64_t uid : {hot, mid}) {
    ExpectSameRows(ns_engine_->TopCoMentionedUsers(uid, 1000000),
                   bm_engine_->TopCoMentionedUsers(uid, 1000000),
                   "Q3.1 uid=" + std::to_string(uid));
  }
}

TEST_F(EnginesTest, Q32CoHashtagsAgree) {
  auto tags = HashtagsByUse(*dataset_);
  ASSERT_FALSE(tags.empty());
  std::string hot = tags.back().second;
  ExpectSameRows(ns_engine_->TopCoOccurringHashtags(hot, 1000000),
                 bm_engine_->TopCoOccurringHashtags(hot, 1000000),
                 "Q3.2 tag=" + hot);
}

TEST_F(EnginesTest, Q41RecommendationAgrees) {
  for (int64_t uid : {0, 42, 300}) {
    ExpectSameRows(ns_engine_->RecommendFolloweesOfFollowees(uid, 1000000),
                   bm_engine_->RecommendFolloweesOfFollowees(uid, 1000000),
                   "Q4.1 uid=" + std::to_string(uid));
  }
}

TEST_F(EnginesTest, Q42RecommendationAgrees) {
  for (int64_t uid : {0, 42, 300}) {
    ExpectSameRows(ns_engine_->RecommendFollowersOfFollowees(uid, 1000000),
                   bm_engine_->RecommendFollowersOfFollowees(uid, 1000000),
                   "Q4.2 uid=" + std::to_string(uid));
  }
}

TEST_F(EnginesTest, Q51CurrentInfluenceAgrees) {
  auto by_mentions = UsersByMentionCount(*dataset_);
  int64_t hot = by_mentions.back().second;
  ExpectSameRows(ns_engine_->CurrentInfluence(hot, 1000000),
                 bm_engine_->CurrentInfluence(hot, 1000000),
                 "Q5.1 uid=" + std::to_string(hot));
}

TEST_F(EnginesTest, Q52PotentialInfluenceAgrees) {
  auto by_mentions = UsersByMentionCount(*dataset_);
  int64_t hot = by_mentions.back().second;
  int64_t mid = by_mentions[by_mentions.size() / 2].second;
  for (int64_t uid : {hot, mid}) {
    ExpectSameRows(ns_engine_->PotentialInfluence(uid, 1000000),
                   bm_engine_->PotentialInfluence(uid, 1000000),
                   "Q5.2 uid=" + std::to_string(uid));
  }
}

TEST_F(EnginesTest, Q61ShortestPathAgrees) {
  Rng rng(99);
  int agreements = 0;
  for (int trial = 0; trial < 25; ++trial) {
    int64_t a = static_cast<int64_t>(rng.NextBounded(600));
    int64_t b = static_cast<int64_t>(rng.NextBounded(600));
    auto la = ns_engine_->ShortestPathLength(a, b, 3);
    auto lb = bm_engine_->ShortestPathLength(a, b, 3);
    ASSERT_TRUE(la.ok()) << la.status().ToString();
    ASSERT_TRUE(lb.ok()) << lb.status().ToString();
    EXPECT_EQ(*la, *lb) << "pair " << a << "->" << b;
    if (*la >= 0) ++agreements;
  }
  // The follows graph is dense enough that some pairs connect within 3.
  EXPECT_GT(agreements, 0);
}

TEST_F(EnginesTest, TopNLimitsConsistently) {
  auto by_mentions = UsersByMentionCount(*dataset_);
  int64_t hot = by_mentions.back().second;
  auto full = bm_engine_->TopCoMentionedUsers(hot, 1000000);
  auto top5_ns = ns_engine_->TopCoMentionedUsers(hot, 5);
  auto top5_bm = bm_engine_->TopCoMentionedUsers(hot, 5);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(top5_ns.ok());
  ASSERT_TRUE(top5_bm.ok());
  if (full->size() >= 5) {
    EXPECT_EQ(top5_ns->size(), 5u);
    EXPECT_EQ(top5_bm->size(), 5u);
  }
  // Both top-5 lists are prefixes of the same total order.
  for (size_t i = 0; i < std::min(top5_ns->size(), top5_bm->size()); ++i) {
    EXPECT_EQ((*top5_ns)[i][0].Compare((*top5_bm)[i][0]), 0) << "rank " << i;
    EXPECT_EQ((*top5_ns)[i][1].Compare((*top5_bm)[i][1]), 0) << "rank " << i;
  }
}

TEST_F(EnginesTest, RecommendationVariantsAgree) {
  // The three Cypher phrasings of Q4.1 (§4) must return the same rows.
  cypher::Params params{{"uid", common::Value::Int(42)},
                        {"n", common::Value::Int(1000000)}};
  auto a = ns_engine_->session().Run(NodestoreEngine::kRecommendVariantA,
                                     params);
  auto b = ns_engine_->session().Run(NodestoreEngine::kRecommendVariantB,
                                     params);
  auto c = ns_engine_->session().Run(NodestoreEngine::kRecommendVariantC,
                                     params);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ(a->rows.size(), b->rows.size());
  for (size_t i = 0; i < a->rows.size(); ++i) {
    EXPECT_TRUE(a->rows[i][0].Equals(b->rows[i][0])) << "rank " << i;
    EXPECT_TRUE(a->rows[i][1].Equals(b->rows[i][1])) << "rank " << i;
  }
  // Variant C includes depth-1 reachability, but after removing direct
  // followees the surviving candidate set matches; counts include the
  // extra depth-1 paths only for nodes that are not direct followees —
  // for those candidates no depth-1 path exists, so counts match too.
  ASSERT_EQ(c->rows.size(), b->rows.size());
  for (size_t i = 0; i < c->rows.size(); ++i) {
    EXPECT_TRUE(c->rows[i][0].Equals(b->rows[i][0])) << "rank " << i;
  }
}

}  // namespace
}  // namespace mbq::core
