#include "bench/driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/hist.h"
#include "bench/mix.h"
#include "core/calls.h"
#include "core/engine.h"
#include "twitter/dataset.h"
#include "util/rng.h"

namespace mbq::bench::driver {
namespace {

using core::CallSpec;
using core::MicroblogEngine;
using core::ParamUniverse;
using core::ValueRows;

// ---------------------------------------------------------------------
// Fixtures: a fake engine whose service time is charged to the fake
// clock, making every schedule and latency in these tests exact.

class FakeEngine : public MicroblogEngine {
 public:
  /// `service_nanos(seq)` is the service time of the seq-th dispatched
  /// call (a process-wide sequence over all clients).
  FakeEngine(FakeDriverClock* clock,
             std::function<uint64_t(uint64_t seq)> service_nanos,
             bool fail = false)
      : clock_(clock), service_nanos_(std::move(service_nanos)), fail_(fail) {}

  std::string name() const override { return "fake"; }

  Result<ValueRows> SelectUsersByFollowerCount(int64_t) override {
    return Serve();
  }
  Result<ValueRows> FolloweesOf(int64_t) override { return Serve(); }
  Result<ValueRows> TweetsOfFollowees(int64_t) override { return Serve(); }
  Result<ValueRows> HashtagsUsedByFollowees(int64_t) override {
    return Serve();
  }
  Result<ValueRows> TopCoMentionedUsers(int64_t, int64_t) override {
    return Serve();
  }
  Result<ValueRows> TopCoOccurringHashtags(const std::string&,
                                           int64_t) override {
    return Serve();
  }
  Result<ValueRows> RecommendFolloweesOfFollowees(int64_t, int64_t) override {
    return Serve();
  }
  Result<ValueRows> RecommendFollowersOfFollowees(int64_t, int64_t) override {
    return Serve();
  }
  Result<ValueRows> CurrentInfluence(int64_t, int64_t) override {
    return Serve();
  }
  Result<ValueRows> PotentialInfluence(int64_t, int64_t) override {
    return Serve();
  }
  Result<int64_t> ShortestPathLength(int64_t, int64_t, uint32_t) override {
    Result<ValueRows> rows = Serve();
    if (!rows.ok()) return rows.status();
    return int64_t{1};
  }
  Status DropCaches() override { return Status::OK(); }

  uint64_t calls() const { return seq_.load(); }

 private:
  Result<ValueRows> Serve() {
    uint64_t seq = seq_.fetch_add(1);
    if (clock_ != nullptr) clock_->AdvanceNanos(service_nanos_(seq));
    if (fail_) return Status::Internal("fake engine failure");
    return ValueRows{};
  }

  FakeDriverClock* clock_;
  std::function<uint64_t(uint64_t)> service_nanos_;
  bool fail_;
  std::atomic<uint64_t> seq_{0};
};

WorkloadMix OneTemplateMix() {
  WorkloadMix mix;
  mix.name = "unit";
  MixEntry entry;
  entry.template_name = "followees";
  mix.entries.push_back(entry);
  return mix;
}

/// A tiny dataset is enough: these tests exercise scheduling, not
/// queries. Shared across tests to keep the suite fast.
const ParamUniverse& TestUniverse() {
  static const twitter::Dataset* dataset = [] {
    twitter::DatasetSpec spec;
    spec.num_users = 200;
    spec.seed = 7;
    return new twitter::Dataset(twitter::GenerateDataset(spec));
  }();
  static const ParamUniverse* universe = new ParamUniverse(*dataset);
  return *universe;
}

DriverOptions BaseOptions() {
  DriverOptions options;
  options.rate_qps = 1000;  // 1ms mean gap
  options.clients = 1;
  options.duration_seconds = 0.1;
  options.arrival = Arrival::kUniform;
  options.seed = 3;
  return options;
}

// ---------------------------------------------------------------------
// Pacing.

TEST(DriverPacingTest, UniformScheduleIssuesExactlyOnSchedule) {
  FakeDriverClock clock;
  FakeEngine engine(&clock, [](uint64_t) { return 0; });
  DriverOptions options = BaseOptions();  // 1000 qps for 0.1s
  LoadDriver driver(&engine, OneTemplateMix(), TestUniverse(), options,
                    &clock);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Intended times 0ms, 1ms, ..., 99ms all fall inside the horizon.
  EXPECT_EQ(report->requests, 100u);
  EXPECT_EQ(report->late, 0u);
  EXPECT_EQ(report->errors, 0u);
  // Zero service time on a fake clock: every sample is exactly 0.
  EXPECT_EQ(report->latency_micros.count(), 100u);
  EXPECT_EQ(report->latency_micros.max(), 0u);
}

TEST(DriverPacingTest, UniformClientsSplitTheRate) {
  FakeDriverClock clock;
  FakeEngine engine(&clock, [](uint64_t) { return 0; });
  DriverOptions options = BaseOptions();
  options.clients = 4;
  LoadDriver driver(&engine, OneTemplateMix(), TestUniverse(), options,
                    &clock);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // 4 clients at 250 qps each over 0.1s = 25 requests per client.
  EXPECT_EQ(report->requests, 100u);
}

TEST(DriverPacingTest, PoissonScheduleHitsTheTargetRateOnAverage) {
  FakeDriverClock clock;
  FakeEngine engine(&clock, [](uint64_t) { return 0; });
  DriverOptions options = BaseOptions();
  options.arrival = Arrival::kPoisson;
  options.duration_seconds = 10;
  LoadDriver driver(&engine, OneTemplateMix(), TestUniverse(), options,
                    &clock);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // 10s at 1000 qps: expectation 10000, sd = sqrt(10000) = 100. A ±5%
  // band is ~5 sigma — deterministic given the seed anyway.
  EXPECT_GT(report->requests, 9500u);
  EXPECT_LT(report->requests, 10500u);
}

TEST(DriverPacingTest, PoissonScheduleIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FakeDriverClock clock;
    FakeEngine engine(&clock, [](uint64_t) { return 0; });
    DriverOptions options = BaseOptions();
    options.arrival = Arrival::kPoisson;
    options.seed = seed;
    options.record_outcomes = true;
    LoadDriver driver(&engine, OneTemplateMix(), TestUniverse(), options,
                      &clock);
    Result<DriverReport> report = driver.Run();
    EXPECT_TRUE(report.ok());
    return std::move(*report);
  };
  auto uids = [](const DriverReport& r) {
    std::vector<int64_t> out;
    for (const RecordedCall& call : r.calls) out.push_back(call.spec.a);
    return out;
  };
  DriverReport a = run(11), b = run(11), c = run(12);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(uids(a), uids(b));
  EXPECT_NE(uids(a), uids(c));  // different seed, different draws
}

TEST(DriverPacingTest, RequestCapSplitsAcrossClientsExactly) {
  FakeDriverClock clock;
  FakeEngine engine(&clock, [](uint64_t) { return 0; });
  DriverOptions options = BaseOptions();
  options.clients = 4;
  options.duration_seconds = 1000;  // cap binds long before the horizon
  options.max_requests = 10;
  LoadDriver driver(&engine, OneTemplateMix(), TestUniverse(), options,
                    &clock);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->requests, 10u);  // 3 + 3 + 2 + 2
  EXPECT_EQ(engine.calls(), 10u);
}

TEST(DriverPacingTest, CallStreamIsIndependentOfEngineTiming) {
  // The same seed must issue the same calls whether the engine is
  // instant or stalling: parameter draws never depend on timing.
  auto specs = [](uint64_t stall_nanos) {
    FakeDriverClock clock;
    FakeEngine engine(&clock, [=](uint64_t) { return stall_nanos; });
    DriverOptions options = BaseOptions();
    options.record_outcomes = true;
    LoadDriver driver(&engine, OneTemplateMix(), TestUniverse(), options,
                      &clock);
    Result<DriverReport> report = driver.Run();
    EXPECT_TRUE(report.ok());
    std::vector<int64_t> uids;
    for (const RecordedCall& call : report->calls) uids.push_back(call.spec.a);
    return uids;
  };
  std::vector<int64_t> fast = specs(0);
  std::vector<int64_t> slow = specs(3 * 1000 * 1000);  // 3ms per call
  // The slow run issues fewer or equal requests (the horizon still cuts
  // at intended times; both runs issue the same 100) — and every issued
  // call matches.
  ASSERT_EQ(fast.size(), slow.size());
  EXPECT_EQ(fast, slow);
}

// ---------------------------------------------------------------------
// Coordinated omission.

TEST(DriverCoordinatedOmissionTest, StalledEngineChargesQueueingDelay) {
  FakeDriverClock clock;
  // Call #10 stalls for 50ms; every other call is instant.
  FakeEngine engine(&clock, [](uint64_t seq) {
    return seq == 10 ? uint64_t{50} * 1000 * 1000 : uint64_t{0};
  });
  DriverOptions options = BaseOptions();  // uniform 1000 qps, 0.1s, 1 client
  LoadDriver driver(&engine, OneTemplateMix(), TestUniverse(), options,
                    &clock);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // All 100 intended sends are inside the horizon: a coordinated-omission
  // -safe driver issues every one of them even though the engine stalled.
  EXPECT_EQ(report->requests, 100u);
  EXPECT_EQ(report->latency_micros.count(), 100u);

  // The stalled call itself: 50ms, charged in full.
  EXPECT_EQ(report->latency_micros.max(), 50000u);

  // Requests 11..59 were queued behind the stall; their latency is
  // charged from the *intended* send time, so request k records
  // (60ms - k ms). Requests 11..58 are late beyond the 1ms slack.
  EXPECT_EQ(report->late, 48u);

  // Exact sum: 50ms (the stall) + 49+48+...+1 ms (the queue drain).
  EXPECT_EQ(report->latency_micros.sum(), 50000u + 1225u * 1000u);

  // The tail exposes the stall: without the CO correction every sample
  // but one would be ~0 and p95 would read 0.
  EXPECT_GT(report->latency_micros.Quantile(0.95), 30000.0);
  // Median untouched: half the requests ran before the stall or after
  // the drain.
  EXPECT_LT(report->latency_micros.Quantile(0.50), 10000.0);
}

TEST(DriverCoordinatedOmissionTest, SaturatedEngineOverrunsTheHorizon) {
  FakeDriverClock clock;
  // 3ms of service per request against a 1ms schedule: the engine can
  // only do ~333 qps of the 1000 offered.
  FakeEngine engine(&clock,
                    [](uint64_t) { return uint64_t{3} * 1000 * 1000; });
  DriverOptions options = BaseOptions();
  LoadDriver driver(&engine, OneTemplateMix(), TestUniverse(), options,
                    &clock);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Open loop: all 100 intended sends issue; the run takes ~300ms of
  // (fake) wall time instead of silently shedding load.
  EXPECT_EQ(report->requests, 100u);
  EXPECT_GT(report->wall_seconds, 0.29);
  // Later requests queue ~2ms more each; the last one waits ~200ms.
  EXPECT_GT(report->latency_micros.Quantile(0.99), 150000.0);
  EXPECT_GT(report->late, 90u);
}

// ---------------------------------------------------------------------
// Error accounting and validation.

TEST(DriverTest, ErrorsAreCountedAndExcludedFromLatency) {
  FakeDriverClock clock;
  FakeEngine engine(&clock, [](uint64_t) { return 0; }, /*fail=*/true);
  DriverOptions options = BaseOptions();
  LoadDriver driver(&engine, OneTemplateMix(), TestUniverse(), options,
                    &clock);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->requests, 100u);
  EXPECT_EQ(report->errors, 100u);
  EXPECT_EQ(report->latency_micros.count(), 0u);
}

TEST(DriverTest, RejectsNonsenseOptions) {
  FakeDriverClock clock;
  FakeEngine engine(&clock, [](uint64_t) { return 0; });
  WorkloadMix mix = OneTemplateMix();

  DriverOptions zero_rate = BaseOptions();
  zero_rate.rate_qps = 0;
  EXPECT_FALSE(
      LoadDriver(&engine, mix, TestUniverse(), zero_rate, &clock).Run().ok());

  DriverOptions no_clients = BaseOptions();
  no_clients.clients = 0;
  EXPECT_FALSE(
      LoadDriver(&engine, mix, TestUniverse(), no_clients, &clock).Run().ok());

  DriverOptions no_bound = BaseOptions();
  no_bound.duration_seconds = 0;
  no_bound.max_requests = 0;
  EXPECT_FALSE(
      LoadDriver(&engine, mix, TestUniverse(), no_bound, &clock).Run().ok());

  WorkloadMix empty;
  EXPECT_FALSE(
      LoadDriver(&engine, empty, TestUniverse(), BaseOptions(), &clock)
          .Run()
          .ok());
}

// ---------------------------------------------------------------------
// Histogram merge.

TEST(LatencyHistogramTest, MergeEqualsRecordingEverythingInOne) {
  Rng rng(99);
  LatencyHistogram parts[3];
  LatencyHistogram reference;
  for (int i = 0; i < 30000; ++i) {
    // Heavy-tailed values spanning many power-of-two segments.
    uint64_t value = rng.Next() >> (rng.NextBounded(50) + 14);
    parts[i % 3].Record(value);
    reference.Record(value);
  }
  LatencyHistogram merged;
  for (const LatencyHistogram& part : parts) merged.Merge(part);
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_EQ(merged.sum(), reference.sum());
  EXPECT_EQ(merged.min(), reference.min());
  EXPECT_EQ(merged.max(), reference.max());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    // Bucket-exact merge: quantiles agree exactly, not approximately.
    EXPECT_DOUBLE_EQ(merged.Quantile(q), reference.Quantile(q)) << q;
  }
}

TEST(LatencyHistogramTest, PerClientMergeMatchesTotalsInDriverReport) {
  FakeDriverClock clock;
  FakeEngine engine(&clock, [](uint64_t seq) { return seq % 7 * 100000; });
  WorkloadMix mix = OneTemplateMix();
  MixEntry second;
  second.template_name = "obj_get";
  mix.entries.push_back(second);
  DriverOptions options = BaseOptions();
  options.clients = 4;
  LoadDriver driver(&engine, mix, TestUniverse(), options, &clock);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  uint64_t template_requests = 0, template_count = 0;
  for (const TemplateReport& tr : report->templates) {
    template_requests += tr.requests;
    template_count += tr.latency_micros.count();
  }
  EXPECT_EQ(template_requests, report->requests);
  EXPECT_EQ(template_count, report->latency_micros.count());
  EXPECT_EQ(report->requests, engine.calls());
}

// ---------------------------------------------------------------------
// Mix parsing: round trips and hostile inputs.

TEST(MixParseTest, BuiltinSuitesRoundTripThroughTheTextFormat) {
  for (const std::string& name : BuiltinSuiteNames()) {
    Result<WorkloadMix> suite = BuiltinSuite(name);
    ASSERT_TRUE(suite.ok()) << name;
    Result<WorkloadMix> reparsed = ParseMix(FormatMix(*suite), name);
    ASSERT_TRUE(reparsed.ok()) << name << ": "
                               << reparsed.status().message();
    ASSERT_EQ(suite->entries.size(), reparsed->entries.size()) << name;
    for (size_t i = 0; i < suite->entries.size(); ++i) {
      const MixEntry& a = suite->entries[i];
      const MixEntry& b = reparsed->entries[i];
      EXPECT_EQ(a.template_name, b.template_name);
      EXPECT_DOUBLE_EQ(a.weight, b.weight);
      EXPECT_EQ(a.uid_dist, b.uid_dist);
      EXPECT_EQ(a.tag_dist, b.tag_dist);
      EXPECT_EQ(a.n, b.n);
      EXPECT_EQ(a.threshold, b.threshold);
      EXPECT_EQ(a.max_hops, b.max_hops);
    }
  }
}

TEST(MixParseTest, ParsesCommentsBlanksAndKeyValues) {
  Result<WorkloadMix> mix = ParseMix(
      "# a comment\n"
      "\n"
      "followees 3 uid=zipf   # trailing comment\n"
      "co_tags 1.5 tag=uniform n=25\n"
      "shortest_path 0.5 hops=2\n"
      "select_users 1 threshold=40\n",
      "test");
  ASSERT_TRUE(mix.ok()) << mix.status().message();
  ASSERT_EQ(mix->entries.size(), 4u);
  EXPECT_EQ(mix->entries[0].uid_dist, Dist::kZipf);
  EXPECT_DOUBLE_EQ(mix->entries[1].weight, 1.5);
  EXPECT_EQ(mix->entries[1].tag_dist, Dist::kUniform);
  EXPECT_EQ(mix->entries[1].n, 25);
  EXPECT_EQ(mix->entries[2].max_hops, 2u);
  EXPECT_EQ(mix->entries[3].threshold, 40);
}

TEST(MixParseTest, HostileInputsFailWithTheOffendingLine) {
  struct Case {
    const char* text;
    const char* expect;  // substring of the error message
  };
  const Case cases[] = {
      {"nonsense 5\n", "unknown template"},
      {"followees\n", "missing weight"},
      {"followees 0\n", "bad weight"},
      {"followees -3\n", "bad weight"},
      {"followees abc\n", "bad weight"},
      {"followees 12x\n", "bad weight"},
      {"followees 1e99\n", "bad weight"},
      {"followees 2 uid=banana\n", "uniform|zipf"},
      {"co_tags 2 tag=\n", "uniform|zipf"},
      {"co_mentioned 2 n=0\n", "n must be >= 1"},
      {"co_mentioned 2 n=abc\n", "integer"},
      {"shortest_path 2 hops=0\n", "hops"},
      {"shortest_path 2 hops=17\n", "hops"},
      {"shortest_path 2 hops=two\n", "integer"},
      {"followees 2 bogus=1\n", "unknown key"},
      {"followees 2 noequals\n", "key=value"},
      {"", "no entries"},
      {"# only a comment\n", "no entries"},
  };
  for (const Case& c : cases) {
    Result<WorkloadMix> mix = ParseMix(c.text, "hostile");
    ASSERT_FALSE(mix.ok()) << "accepted: " << c.text;
    EXPECT_NE(mix.status().message().find(c.expect), std::string::npos)
        << "input " << c.text << " produced: " << mix.status().message();
  }
  // Line numbers name the offender, not line 1.
  Result<WorkloadMix> mix =
      ParseMix("followees 1\n# fine\nfollowees bad\n", "hostile");
  ASSERT_FALSE(mix.ok());
  EXPECT_NE(mix.status().message().find("line 3"), std::string::npos)
      << mix.status().message();
}

TEST(MixParseTest, UnknownSuiteIsRejected) {
  EXPECT_FALSE(BuiltinSuite("linkbench-z").ok());
  EXPECT_TRUE(BuiltinSuite("tao").ok());
  EXPECT_TRUE(BuiltinSuite("ldbc").ok());
}

// ---------------------------------------------------------------------
// Parameter generation invariants.

TEST(ParamUniverseTest, UidPairsAreAlwaysDistinct) {
  const ParamUniverse& universe = TestUniverse();
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    auto [a, b] = universe.SampleUidPair(rng, i % 2 == 0);
    EXPECT_NE(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, universe.num_users());
    EXPECT_GE(b, 0);
    EXPECT_LT(b, universe.num_users());
  }
}

TEST(ParamUniverseTest, MaterializedCallsRespectTemplateShapes) {
  const ParamUniverse& universe = TestUniverse();
  Rng rng(6);
  for (const TemplateInfo& info : Templates()) {
    MixEntry entry;
    entry.template_name = info.name;
    entry.n = 17;
    CallSpec spec = MaterializeCall(entry, universe, rng);
    EXPECT_EQ(spec.kind, info.kind) << info.name;
    if (info.uses_pair) EXPECT_NE(spec.a, spec.b) << info.name;
    if (info.uses_n) EXPECT_EQ(spec.n, 17) << info.name;
    if (info.uses_tag) EXPECT_FALSE(spec.tag.empty()) << info.name;
    if (info.fixed_hops != 0) {
      EXPECT_EQ(spec.max_hops, info.fixed_hops) << info.name;
    }
  }
}

}  // namespace
}  // namespace mbq::bench::driver
