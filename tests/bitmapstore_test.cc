#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bitmapstore/graph.h"
#include "bitmapstore/script_loader.h"
#include "bitmapstore/snapshot.h"
#include "bitmapstore/shortest_path.h"
#include "bitmapstore/traversal.h"

namespace mbq::bitmapstore {
namespace {

using common::Value;
using common::ValueType;

GraphOptions FastOptions() {
  GraphOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  return options;
}

class BitmapGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<Graph>(FastOptions());
    user_ = *graph_->NewNodeType("user");
    follows_ = *graph_->NewEdgeType("follows");
    uid_ = *graph_->NewAttribute(user_, "uid", ValueType::kInt,
                                 AttributeKind::kUnique);
    name_ = *graph_->NewAttribute(user_, "name", ValueType::kString,
                                  AttributeKind::kBasic);
    score_ = *graph_->NewAttribute(user_, "score", ValueType::kInt,
                                   AttributeKind::kIndexed);
    for (int i = 0; i < 6; ++i) {
      Oid node = *graph_->NewNode(user_);
      nodes_.push_back(node);
      EXPECT_TRUE(graph_->SetAttribute(node, uid_, Value::Int(i)).ok());
      EXPECT_TRUE(graph_
                      ->SetAttribute(node, name_,
                                     Value::String("u" + std::to_string(i)))
                      .ok());
      EXPECT_TRUE(
          graph_->SetAttribute(node, score_, Value::Int(i * 10)).ok());
    }
    // 0->1, 0->2, 1->2, 2->3, 3->4, 4->5
    for (auto [a, b] : std::vector<std::pair<int, int>>{
             {0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}) {
      edges_.push_back(*graph_->NewEdge(follows_, nodes_[a], nodes_[b]));
    }
  }

  std::unique_ptr<Graph> graph_;
  TypeId user_, follows_;
  AttrId uid_, name_, score_;
  std::vector<Oid> nodes_;
  std::vector<Oid> edges_;
};

TEST_F(BitmapGraphTest, SchemaRegistries) {
  EXPECT_EQ(*graph_->FindType("user"), user_);
  EXPECT_EQ(*graph_->FindType("follows"), follows_);
  EXPECT_FALSE(graph_->FindType("ghost").ok());
  EXPECT_EQ(*graph_->FindAttribute(user_, "uid"), uid_);
  EXPECT_FALSE(graph_->FindAttribute(user_, "ghost").ok());
  EXPECT_TRUE(graph_->NewNodeType("user").status().IsAlreadyExists());
  EXPECT_EQ(graph_->TypeKind(user_), ObjectKind::kNode);
  EXPECT_EQ(graph_->TypeKind(follows_), ObjectKind::kEdge);
  EXPECT_EQ(graph_->AttributeType(uid_), ValueType::kInt);
  EXPECT_EQ(graph_->GetAttributeKind(score_), AttributeKind::kIndexed);
  EXPECT_EQ(graph_->NodeTypes().size(), 1u);
  EXPECT_EQ(graph_->EdgeTypes().size(), 1u);
}

TEST_F(BitmapGraphTest, CountsAndSelect) {
  EXPECT_EQ(graph_->CountObjects(user_), 6u);
  EXPECT_EQ(graph_->CountObjects(follows_), 6u);
  EXPECT_EQ(graph_->NumNodes(), 6u);
  EXPECT_EQ(graph_->NumEdges(), 6u);
  auto all = graph_->Select(user_);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->Count(), 6u);
}

TEST_F(BitmapGraphTest, AttributeRoundTrip) {
  auto v = graph_->GetAttribute(nodes_[3], name_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "u3");
  // Overwrite.
  ASSERT_TRUE(
      graph_->SetAttribute(nodes_[3], name_, Value::String("renamed")).ok());
  EXPECT_EQ(graph_->GetAttribute(nodes_[3], name_)->AsString(), "renamed");
  // Clear via null.
  ASSERT_TRUE(graph_->SetAttribute(nodes_[3], name_, Value::Null()).ok());
  EXPECT_TRUE(graph_->GetAttribute(nodes_[3], name_)->is_null());
}

TEST_F(BitmapGraphTest, AttributeTypeChecking) {
  EXPECT_TRUE(graph_->SetAttribute(nodes_[0], uid_, Value::String("x"))
                  .IsInvalidArgument());
}

TEST_F(BitmapGraphTest, UniqueAttributeEnforced) {
  EXPECT_TRUE(graph_->SetAttribute(nodes_[0], uid_, Value::Int(1))
                  .IsAlreadyExists());
  // Re-setting the same value on the same node is fine.
  EXPECT_TRUE(graph_->SetAttribute(nodes_[1], uid_, Value::Int(1)).ok());
}

TEST_F(BitmapGraphTest, FindObjectByUniqueAttribute) {
  auto found = graph_->FindObject(uid_, Value::Int(4));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, nodes_[4]);
  EXPECT_EQ(*graph_->FindObject(uid_, Value::Int(99)), kInvalidOid);
  // Basic attributes don't support FindObject.
  EXPECT_TRUE(graph_->FindObject(name_, Value::String("u1"))
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(BitmapGraphTest, SelectWithConditions) {
  auto gt = graph_->Select(score_, Condition::kGreater, Value::Int(20));
  ASSERT_TRUE(gt.ok());
  EXPECT_EQ(gt->Count(), 3u);  // 30, 40, 50
  auto le = graph_->Select(score_, Condition::kLessEqual, Value::Int(20));
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(le->Count(), 3u);  // 0, 10, 20
  auto eq = graph_->Select(score_, Condition::kEqual, Value::Int(30));
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq->Contains(nodes_[3]));
  auto ne = graph_->Select(score_, Condition::kNotEqual, Value::Int(30));
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->Count(), 5u);
  // Conjunctions are done client-side with Objects algebra.
  auto both = Objects::CombineIntersection(*gt, *ne);
  EXPECT_EQ(both.Count(), 2u);
}

TEST_F(BitmapGraphTest, SelectOnBasicAttributeScans) {
  auto r = graph_->Select(name_, Condition::kEqual, Value::String("u2"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Count(), 1u);
  EXPECT_TRUE(r->Contains(nodes_[2]));
}

TEST_F(BitmapGraphTest, NeighborsAndExplode) {
  auto out = graph_->Neighbors(nodes_[0], follows_, EdgesDirection::kOutgoing);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Count(), 2u);
  EXPECT_TRUE(out->Contains(nodes_[1]));
  EXPECT_TRUE(out->Contains(nodes_[2]));

  auto in = graph_->Neighbors(nodes_[2], follows_, EdgesDirection::kIngoing);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in->Count(), 2u);

  auto any = graph_->Neighbors(nodes_[2], follows_, EdgesDirection::kAny);
  ASSERT_TRUE(any.ok());
  EXPECT_EQ(any->Count(), 3u);  // 0, 1 in; 3 out

  auto edges = graph_->Explode(nodes_[2], follows_, EdgesDirection::kAny);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->Count(), 3u);
  EXPECT_EQ(*graph_->Degree(nodes_[2], follows_, EdgesDirection::kAny), 3u);
  EXPECT_EQ(*graph_->Degree(nodes_[2], follows_, EdgesDirection::kOutgoing),
            1u);
}

TEST_F(BitmapGraphTest, NeighborsOfSet) {
  Objects sources;
  sources.Add(nodes_[0]);
  sources.Add(nodes_[1]);
  auto out = graph_->Neighbors(sources, follows_, EdgesDirection::kOutgoing);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Count(), 2u);  // {1, 2}
}

TEST_F(BitmapGraphTest, EdgeData) {
  auto data = graph_->GetEdgeData(edges_[0]);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->tail, nodes_[0]);
  EXPECT_EQ(data->head, nodes_[1]);
  EXPECT_EQ(data->type, follows_);
  EXPECT_EQ(*graph_->GetEdgePeer(edges_[0], nodes_[0]), nodes_[1]);
  EXPECT_EQ(*graph_->GetEdgePeer(edges_[0], nodes_[1]), nodes_[0]);
  EXPECT_FALSE(graph_->GetEdgePeer(edges_[0], nodes_[5]).ok());
  EXPECT_FALSE(graph_->GetEdgeData(nodes_[0]).ok());  // not an edge
}

TEST_F(BitmapGraphTest, MultigraphAllowsParallelEdges) {
  Oid e1 = *graph_->NewEdge(follows_, nodes_[0], nodes_[1]);
  EXPECT_NE(e1, edges_[0]);
  EXPECT_EQ(*graph_->Degree(nodes_[0], follows_, EdgesDirection::kOutgoing),
            3u);
  // Neighbors still dedupes to node set.
  auto out = graph_->Neighbors(nodes_[0], follows_, EdgesDirection::kOutgoing);
  EXPECT_EQ(out->Count(), 2u);
}

TEST_F(BitmapGraphTest, DropEdge) {
  ASSERT_TRUE(graph_->Drop(edges_[0]).ok());
  EXPECT_EQ(graph_->NumEdges(), 5u);
  auto out = graph_->Neighbors(nodes_[0], follows_, EdgesDirection::kOutgoing);
  EXPECT_FALSE(out->Contains(nodes_[1]));
  EXPECT_FALSE(graph_->GetObjectType(edges_[0]).ok());
}

TEST_F(BitmapGraphTest, DropNodeCascades) {
  ASSERT_TRUE(graph_->Drop(nodes_[2]).ok());
  EXPECT_EQ(graph_->NumNodes(), 5u);
  // Edges 0->2, 1->2, 2->3 are gone.
  EXPECT_EQ(graph_->NumEdges(), 3u);
  EXPECT_EQ(*graph_->Degree(nodes_[0], follows_, EdgesDirection::kOutgoing),
            1u);
  // Index entry removed too.
  EXPECT_EQ(*graph_->FindObject(uid_, Value::Int(2)), kInvalidOid);
}

TEST_F(BitmapGraphTest, MaterializedNeighborsAgree) {
  GraphOptions options = FastOptions();
  options.materialize_neighbors = true;
  Graph mat(options);
  TypeId user = *mat.NewNodeType("user");
  TypeId follows = *mat.NewEdgeType("follows");
  std::vector<Oid> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(*mat.NewNode(user));
  for (auto [a, b] : std::vector<std::pair<int, int>>{
           {0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}) {
    ASSERT_TRUE(mat.NewEdge(follows, nodes[a], nodes[b]).ok());
  }
  for (int i = 0; i < 6; ++i) {
    auto expected =
        graph_->Neighbors(nodes_[i], follows_, EdgesDirection::kOutgoing);
    auto actual = mat.Neighbors(nodes[i], follows, EdgesDirection::kOutgoing);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(expected->Count(), actual->Count()) << i;
  }
}

TEST_F(BitmapGraphTest, ShortestPathBasic) {
  SinglePairShortestPathBFS bfs(graph_.get(), nodes_[0], nodes_[5]);
  bfs.AddEdgeType(follows_, EdgesDirection::kOutgoing);
  ASSERT_TRUE(bfs.Run().ok());
  ASSERT_TRUE(bfs.Exists());
  EXPECT_EQ(bfs.GetCost(), 4u);  // 0->2->3->4->5
  const auto& path = bfs.GetPathAsNodes();
  EXPECT_EQ(path.front(), nodes_[0]);
  EXPECT_EQ(path.back(), nodes_[5]);
  EXPECT_EQ(path.size(), 5u);
}

TEST_F(BitmapGraphTest, ShortestPathHopBound) {
  SinglePairShortestPathBFS bfs(graph_.get(), nodes_[0], nodes_[5]);
  bfs.AddEdgeType(follows_, EdgesDirection::kOutgoing);
  bfs.SetMaximumHops(3);
  ASSERT_TRUE(bfs.Run().ok());
  EXPECT_FALSE(bfs.Exists());
}

TEST_F(BitmapGraphTest, ShortestPathSelfAndMissing) {
  SinglePairShortestPathBFS self(graph_.get(), nodes_[1], nodes_[1]);
  self.AddEdgeType(follows_, EdgesDirection::kOutgoing);
  ASSERT_TRUE(self.Run().ok());
  EXPECT_TRUE(self.Exists());
  EXPECT_EQ(self.GetCost(), 0u);

  SinglePairShortestPathBFS none(graph_.get(), nodes_[5], nodes_[0]);
  none.AddEdgeType(follows_, EdgesDirection::kOutgoing);
  ASSERT_TRUE(none.Run().ok());
  EXPECT_FALSE(none.Exists());  // graph is a DAG in this direction
}

TEST_F(BitmapGraphTest, TraversalBFSDepths) {
  Traversal t(graph_.get(), nodes_[0], TraversalOrder::kBreadthFirst);
  t.AddEdgeType(follows_, EdgesDirection::kOutgoing);
  t.SetMaximumHops(2);
  std::vector<std::pair<Oid, uint32_t>> visits;
  ASSERT_TRUE(t.Run([&](Oid node, uint32_t depth) {
                 visits.emplace_back(node, depth);
                 return true;
               })
                  .ok());
  // 0 at depth 0; 1,2 at depth 1; 3 at depth 2.
  ASSERT_EQ(visits.size(), 4u);
  EXPECT_EQ(visits[0].second, 0u);
  EXPECT_EQ(visits[3].second, 2u);
}

TEST_F(BitmapGraphTest, TraversalCollectNodes) {
  Traversal t(graph_.get(), nodes_[0], TraversalOrder::kDepthFirst);
  t.AddEdgeType(follows_, EdgesDirection::kOutgoing);
  auto nodes = t.CollectNodes();
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->Count(), 6u);  // everything reachable
}

TEST_F(BitmapGraphTest, StatsCount) {
  graph_->ResetStats();
  ASSERT_TRUE(
      graph_->Neighbors(nodes_[0], follows_, EdgesDirection::kOutgoing).ok());
  ASSERT_TRUE(graph_->GetAttribute(nodes_[0], uid_).ok());
  EXPECT_EQ(graph_->stats().neighbors_calls, 1u);
  EXPECT_EQ(graph_->stats().attribute_reads, 1u);
}

TEST_F(BitmapGraphTest, DiskFootprintGrows) {
  uint64_t before = graph_->DiskSizeBytes();
  // Enough volume to outgrow the slack in already-allocated extents.
  for (int i = 0; i < 20000; ++i) {
    Oid n = *graph_->NewNode(user_);
    ASSERT_TRUE(
        graph_->SetAttribute(n, uid_, Value::Int(1000 + i)).ok());
  }
  EXPECT_GT(graph_->DiskSizeBytes(), before);
}

// ------------------------------------------------------------ ScriptLoader

class ScriptLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mbq_script_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    Write("users.csv", "uid,name\n1,alice\n2,bob\n3,carol\n");
    Write("follows.csv", "src,dst\n1,2\n2,3\n1,3\n");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void Write(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(ScriptLoaderTest, LoadsSchemaAndData) {
  Graph graph(FastOptions());
  ScriptLoader loader(&graph);
  std::string script =
      "# schema\n"
      "CREATE NODE user\n"
      "CREATE EDGE follows\n"
      "ATTRIBUTE user.uid INT UNIQUE\n"
      "ATTRIBUTE user.name STRING BASIC\n"
      "LOAD NODES \"users.csv\" INTO user COLUMNS uid, name\n"
      "LOAD EDGES \"follows.csv\" INTO follows FROM user.uid TO user.uid\n";
  ASSERT_TRUE(loader.Execute(script, dir_.string()).ok());
  EXPECT_EQ(loader.nodes_loaded(), 3u);
  EXPECT_EQ(loader.edges_loaded(), 3u);
  TypeId user = *graph.FindType("user");
  TypeId follows = *graph.FindType("follows");
  AttrId uid = *graph.FindAttribute(user, "uid");
  Oid alice = *graph.FindObject(uid, Value::Int(1));
  ASSERT_NE(alice, kInvalidOid);
  auto out = graph.Neighbors(alice, follows, EdgesDirection::kOutgoing);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Count(), 2u);
}

TEST_F(ScriptLoaderTest, ReportsProgress) {
  Graph graph(FastOptions());
  ScriptLoader loader(&graph);
  std::vector<ImportProgress> reports;
  loader.SetProgressCallback(
      [&](const ImportProgress& p) { reports.push_back(p); }, 1);
  std::string script =
      "CREATE NODE user\n"
      "ATTRIBUTE user.uid INT UNIQUE\n"
      "LOAD NODES \"users.csv\" INTO user COLUMNS uid\n";
  ASSERT_TRUE(loader.Execute(script, dir_.string()).ok());
  ASSERT_GE(reports.size(), 3u);
  EXPECT_EQ(reports.back().total_objects, 3u);
  EXPECT_EQ(reports.back().phase, "nodes:user");
}

TEST_F(ScriptLoaderTest, RejectsBadStatements) {
  Graph graph(FastOptions());
  ScriptLoader loader(&graph);
  EXPECT_FALSE(loader.Execute("FROB x\n", dir_.string()).ok());
  EXPECT_FALSE(loader.Execute("CREATE NODE\n", dir_.string()).ok());
  EXPECT_FALSE(
      loader.Execute("ATTRIBUTE user.uid WEIRD UNIQUE\n", dir_.string()).ok());
  EXPECT_FALSE(loader
                   .Execute("CREATE NODE user\n"
                            "LOAD NODES \"missing.csv\" INTO user COLUMNS x\n",
                            dir_.string())
                   .ok());
}

TEST_F(ScriptLoaderTest, RejectsUnresolvedEndpoints) {
  Graph graph(FastOptions());
  ScriptLoader loader(&graph);
  Write("bad_edges.csv", "src,dst\n1,99\n");
  std::string script =
      "CREATE NODE user\n"
      "CREATE EDGE follows\n"
      "ATTRIBUTE user.uid INT UNIQUE\n"
      "LOAD NODES \"users.csv\" INTO user COLUMNS uid\n"
      "LOAD EDGES \"bad_edges.csv\" INTO follows FROM user.uid TO user.uid\n";
  EXPECT_TRUE(loader.Execute(script, dir_.string()).IsNotFound());
}

}  // namespace
}  // namespace mbq::bitmapstore

namespace mbq::bitmapstore {
namespace {

// --------------------------------------------------------------- Snapshots

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("mbq_snap_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(SnapshotTest, RoundTripsGraph) {
  GraphOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  Graph original(options);
  TypeId user = *original.NewNodeType("user");
  TypeId follows = *original.NewEdgeType("follows");
  AttrId uid = *original.NewAttribute(user, "uid", common::ValueType::kInt,
                                      AttributeKind::kUnique);
  AttrId name = *original.NewAttribute(user, "name",
                                       common::ValueType::kString,
                                       AttributeKind::kBasic);
  std::vector<Oid> nodes;
  for (int i = 0; i < 20; ++i) {
    Oid n = *original.NewNode(user);
    ASSERT_TRUE(original.SetAttribute(n, uid, Value::Int(i)).ok());
    ASSERT_TRUE(original
                    .SetAttribute(n, name,
                                  Value::String("u" + std::to_string(i)))
                    .ok());
    nodes.push_back(n);
  }
  for (int i = 0; i < 19; ++i) {
    ASSERT_TRUE(original.NewEdge(follows, nodes[i], nodes[i + 1]).ok());
  }
  // Exercise the freed-slot path too.
  ASSERT_TRUE(original.Drop(nodes[7]).ok());

  ASSERT_TRUE(SaveSnapshot(original, path_).ok());

  Graph restored(options);
  ASSERT_TRUE(LoadSnapshot(path_, &restored).ok());
  EXPECT_EQ(restored.NumNodes(), original.NumNodes());
  EXPECT_EQ(restored.NumEdges(), original.NumEdges());
  TypeId r_user = *restored.FindType("user");
  TypeId r_follows = *restored.FindType("follows");
  AttrId r_uid = *restored.FindAttribute(r_user, "uid");
  AttrId r_name = *restored.FindAttribute(r_user, "name");
  EXPECT_EQ(restored.GetAttributeKind(r_uid), AttributeKind::kUnique);

  // Every surviving node keeps its oid, attributes and adjacency.
  for (int i = 0; i < 20; ++i) {
    if (i == 7) {
      EXPECT_FALSE(restored.GetObjectType(nodes[7]).ok());
      continue;
    }
    auto found = restored.FindObject(r_uid, Value::Int(i));
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(*found, nodes[i]) << i;
    EXPECT_EQ(restored.GetAttribute(nodes[i], r_name)->AsString(),
              "u" + std::to_string(i));
    auto expected =
        original.Neighbors(nodes[i], follows, EdgesDirection::kOutgoing);
    auto actual =
        restored.Neighbors(nodes[i], r_follows, EdgesDirection::kOutgoing);
    ASSERT_TRUE(expected.ok() && actual.ok());
    EXPECT_TRUE(*expected == *actual) << i;
  }
}

TEST_F(SnapshotTest, RejectsNonEmptyTarget) {
  GraphOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  Graph g(options);
  ASSERT_TRUE(g.NewNodeType("user").ok());
  ASSERT_TRUE(SaveSnapshot(g, path_).ok());
  EXPECT_TRUE(LoadSnapshot(path_, &g).IsFailedPrecondition());
}

TEST_F(SnapshotTest, RejectsCorruptFiles) {
  GraphOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  {
    std::ofstream out(path_, std::ios::binary);
    out << "definitely not a snapshot";
  }
  Graph g(options);
  EXPECT_TRUE(LoadSnapshot(path_, &g).IsCorruption());

  Graph src(options);
  ASSERT_TRUE(src.NewNodeType("user").ok());
  ASSERT_TRUE(src.NewNode(0).ok());
  ASSERT_TRUE(SaveSnapshot(src, path_).ok());
  // Truncate the tail and expect a clean error.
  auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 3);
  Graph g2(options);
  EXPECT_FALSE(LoadSnapshot(path_, &g2).ok());
}

TEST_F(SnapshotTest, MissingFileIsIoError) {
  GraphOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  Graph g(options);
  EXPECT_TRUE(LoadSnapshot("/nonexistent/snap.bin", &g).IsIoError());
}

}  // namespace
}  // namespace mbq::bitmapstore
