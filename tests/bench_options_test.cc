#include "bench/bench_common.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace mbq::bench {
namespace {

/// argv builder: keeps the strings alive and hands out char** the way
/// main() would receive it.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "bench_under_test");
    for (std::string& s : strings_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

/// CYPHER_THREADS leaks between tests otherwise; scope it.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~EnvGuard() { unsetenv(name_); }

 private:
  const char* name_;
};

TEST(BenchOptionsTest, DefaultsWhenNoFlagsGiven) {
  EnvGuard env("CYPHER_THREADS", nullptr);
  Argv args({});
  BenchOptions options = ParseBenchOptions(args.argc(), args.argv());
  EXPECT_TRUE(options.ok) << options.error;
  EXPECT_EQ(options.threads, 1u);
  EXPECT_FALSE(options.result_cache);
  EXPECT_FALSE(options.adj_cache);
}

TEST(BenchOptionsTest, ThreadsAcceptsBothFlagForms) {
  EnvGuard env("CYPHER_THREADS", nullptr);
  Argv detached({"--threads", "7"});
  EXPECT_EQ(ParseBenchOptions(detached.argc(), detached.argv()).threads, 7u);
  Argv inline_form({"--threads=5"});
  EXPECT_EQ(ParseBenchOptions(inline_form.argc(), inline_form.argv()).threads,
            5u);
}

TEST(BenchOptionsTest, ThreadsFlagBeatsEnvironment) {
  EnvGuard env("CYPHER_THREADS", "3");
  Argv with_flag({"--threads=7"});
  EXPECT_EQ(ParseBenchOptions(with_flag.argc(), with_flag.argv()).threads, 7u);
  Argv without_flag({});
  EXPECT_EQ(ParseBenchOptions(without_flag.argc(), without_flag.argv()).threads,
            3u);
}

TEST(BenchOptionsTest, CacheFlagsParseOnOffSpellings) {
  for (const char* yes : {"on", "1", "true"}) {
    Argv args({std::string("--result-cache=") + yes, "--adj-cache", yes});
    BenchOptions options = ParseBenchOptions(args.argc(), args.argv());
    EXPECT_TRUE(options.ok) << yes << ": " << options.error;
    EXPECT_TRUE(options.result_cache) << yes;
    EXPECT_TRUE(options.adj_cache) << yes;
  }
  for (const char* no : {"off", "0", "false"}) {
    Argv args({std::string("--result-cache=") + no});
    BenchOptions options = ParseBenchOptions(args.argc(), args.argv());
    EXPECT_TRUE(options.ok) << no << ": " << options.error;
    EXPECT_FALSE(options.result_cache) << no;
  }
}

TEST(BenchOptionsTest, MalformedValuesAreFlaggedNotSilentlyDropped) {
  EnvGuard env("CYPHER_THREADS", nullptr);
  struct Case {
    std::vector<std::string> args;
    const char* expect;  // substring of the error
  };
  const Case cases[] = {
      {{"--threads=0"}, "--threads"},
      {{"--threads=257"}, "--threads"},
      {{"--threads=abc"}, "--threads"},
      {{"--threads", "4x"}, "--threads"},
      {{"--result-cache=sometimes"}, "--result-cache"},
      {{"--adj-cache=2"}, "--adj-cache"},
  };
  for (const Case& c : cases) {
    Argv args(c.args);
    BenchOptions options = ParseBenchOptions(args.argc(), args.argv());
    EXPECT_FALSE(options.ok) << c.args[0];
    EXPECT_NE(options.error.find(c.expect), std::string::npos)
        << c.args[0] << " produced: " << options.error;
    // Defaults survive, so non-strict callers keep working.
    EXPECT_EQ(options.threads, 1u);
  }
}

TEST(BenchOptionsTest, FirstErrorWins) {
  Argv args({"--threads=bad", "--result-cache=worse"});
  BenchOptions options = ParseBenchOptions(args.argc(), args.argv());
  EXPECT_FALSE(options.ok);
  EXPECT_NE(options.error.find("--threads"), std::string::npos)
      << options.error;
}

TEST(BenchOptionsTest, OrDieExitsWithStatus2OnMalformedValues) {
  EnvGuard env("CYPHER_THREADS", nullptr);
  Argv bad({"--threads=abc"});
  EXPECT_EXIT(ParseBenchOptionsOrDie(bad.argc(), bad.argv()),
              ::testing::ExitedWithCode(2), "bad --threads value");
  Argv bad_serve({"--serve=notaport"});
  EXPECT_EXIT(ParseBenchOptionsOrDie(bad_serve.argc(), bad_serve.argv()),
              ::testing::ExitedWithCode(2), "bad --serve value");
}

TEST(BenchOptionsTest, OrDieReturnsParsedOptionsWhenValid) {
  EnvGuard env("CYPHER_THREADS", nullptr);
  Argv args({"--threads=2", "--result-cache=on"});
  BenchOptions options = ParseBenchOptionsOrDie(args.argc(), args.argv());
  EXPECT_TRUE(options.ok);
  EXPECT_EQ(options.threads, 2u);
  EXPECT_TRUE(options.result_cache);
}

TEST(ServeFlagTest, ParsesAbsentBareAndPortForms) {
  Argv none({});
  ServeFlag flag = ParseServeFlag(none.argc(), none.argv());
  EXPECT_TRUE(flag.ok);
  EXPECT_FALSE(flag.serve);

  Argv bare({"--serve"});
  flag = ParseServeFlag(bare.argc(), bare.argv());
  EXPECT_TRUE(flag.ok);
  EXPECT_TRUE(flag.serve);
  EXPECT_EQ(flag.port, 0u);  // ephemeral

  Argv with_port({"--serve=8081"});
  flag = ParseServeFlag(with_port.argc(), with_port.argv());
  EXPECT_TRUE(flag.ok);
  EXPECT_TRUE(flag.serve);
  EXPECT_EQ(flag.port, 8081u);
}

TEST(ServeFlagTest, RejectsMalformedPorts) {
  for (const char* bad : {"--serve=abc", "--serve=70000", "--serve=",
                          "--serve=80x"}) {
    Argv args({bad});
    ServeFlag flag = ParseServeFlag(args.argc(), args.argv());
    EXPECT_FALSE(flag.ok) << bad;
    EXPECT_FALSE(flag.error.empty()) << bad;
  }
}

}  // namespace
}  // namespace mbq::bench
