// Tests for the runtime lock-rank checker (util/lock_rank.h): in-order
// acquisition is silent, a rank inversion traps with both site names, a
// shared-mode reacquisition of a held mutex is a violation, and the
// RankedMutex/RankedSharedMutex wrappers are clean under TSan.

#include "util/lock_rank.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mbq::util {
namespace {

// Every test runs with checking forced ON (the default can be overridden
// by the MBQ_LOCK_RANK environment variable) and abort-on-violation
// restored to its default afterwards, so test order does not matter.
class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLockRankChecksEnabled(true); }
  void TearDown() override {
    SetLockRankChecksEnabled(true);
    SetLockRankAbortOnViolation(true);
  }
};

TEST_F(LockRankTest, RankNamesAreSpecNames) {
  EXPECT_STREQ(LockRankName(LockRank::kRing), "kRing");
  EXPECT_STREQ(LockRankName(LockRank::kWal), "kWal");
  EXPECT_STREQ(LockRankName(LockRank::kRpc), "kRpc");
}

TEST_F(LockRankTest, DescendingAcquisitionPasses) {
  RankedMutex outer(LockRank::kRpc, "test.outer");
  RankedMutex middle(LockRank::kSession, "test.middle");
  RankedMutex inner(LockRank::kRing, "test.inner");

  uint64_t checks_before = LockRankChecks();
  uint64_t violations_before = LockRankViolations();
  EXPECT_EQ(LockRankHeldDepth(), 0u);
  {
    ScopedLock a(outer);
    EXPECT_EQ(LockRankHeldDepth(), 1u);
    ScopedLock b(middle);
    EXPECT_EQ(LockRankHeldDepth(), 2u);
    ScopedLock c(inner);
    EXPECT_EQ(LockRankHeldDepth(), 3u);
  }
  EXPECT_EQ(LockRankHeldDepth(), 0u);
  EXPECT_EQ(LockRankChecks(), checks_before + 3);
  EXPECT_EQ(LockRankViolations(), violations_before);
}

TEST_F(LockRankTest, ReleaseOrderNeedNotBeLifo) {
  // unique_lock-style guards may release out of stack order; the held
  // set must still drain to empty.
  RankedMutex outer(LockRank::kSnapshot, "test.outer");
  RankedMutex inner(LockRank::kStore, "test.inner");
  RankedLock a(outer);
  RankedLock b(inner);
  a.unlock();
  EXPECT_EQ(LockRankHeldDepth(), 1u);
  b.unlock();
  EXPECT_EQ(LockRankHeldDepth(), 0u);
}

using LockRankDeathTest = LockRankTest;

TEST_F(LockRankDeathTest, AscendingAcquisitionAborts) {
  RankedMutex inner(LockRank::kDisk, "test.disk");
  RankedMutex outer(LockRank::kWal, "test.wal");
  ASSERT_DEATH(
      {
        SetLockRankChecksEnabled(true);
        ScopedLock a(inner);
        ScopedLock b(outer);  // kWal above kDisk: inversion
      },
      "lock-rank violation: acquiring \"test.wal\".*while holding "
      "\"test.disk\"");
}

TEST_F(LockRankDeathTest, SameRankReacquisitionAborts) {
  // Two different mutexes of equal rank still deadlock pairwise; the
  // strict-descent rule forbids holding both.
  RankedMutex a(LockRank::kCache, "test.shard_a");
  RankedMutex b(LockRank::kCache, "test.shard_b");
  ASSERT_DEATH(
      {
        SetLockRankChecksEnabled(true);
        ScopedLock la(a);
        ScopedLock lb(b);
      },
      "lock-rank violation");
}

TEST_F(LockRankTest, SharedThenExclusiveReacquisitionIsAViolation) {
  // shared-then-exclusive on the same mutex self-deadlocks; count the
  // violation instead of aborting so the test can observe it. The
  // would-be relock is driven through the bookkeeping hooks directly —
  // calling mu.lock() for real would deadlock the test.
  SetLockRankAbortOnViolation(false);
  RankedSharedMutex mu(LockRank::kSnapshot, "test.snapshot");
  uint64_t before = LockRankViolations();
  mu.lock_shared();
  lockrank_internal::OnAcquire(mu.rank(), mu.name());  // would-be relock
  EXPECT_EQ(LockRankViolations(), before + 1);
  lockrank_internal::OnRelease(mu.rank(), mu.name());
  mu.unlock_shared();
  EXPECT_EQ(LockRankHeldDepth(), 0u);
}

TEST_F(LockRankTest, SharedModeStillDescends) {
  // Shared acquisitions obey the same hierarchy as exclusive ones.
  SetLockRankAbortOnViolation(false);
  RankedSharedMutex low(LockRank::kBufferCache, "test.low");
  RankedSharedMutex high(LockRank::kSnapshot, "test.high");
  uint64_t before = LockRankViolations();
  {
    SharedScopedLock a(high);
    SharedScopedLock b(low);  // descending: fine
  }
  EXPECT_EQ(LockRankViolations(), before);
  {
    SharedScopedLock a(low);
    lockrank_internal::OnAcquire(high.rank(), high.name());  // ascending
    lockrank_internal::OnRelease(high.rank(), high.name());
  }
  EXPECT_EQ(LockRankViolations(), before + 1);
}

TEST_F(LockRankTest, DisabledCheckingCountsNothing) {
  SetLockRankChecksEnabled(false);
  RankedMutex inner(LockRank::kDisk, "test.disk");
  RankedMutex outer(LockRank::kWal, "test.wal");
  uint64_t checks_before = LockRankChecks();
  uint64_t violations_before = LockRankViolations();
  {
    ScopedLock a(inner);
    ScopedLock b(outer);  // inversion, but checking is off
    EXPECT_EQ(LockRankHeldDepth(), 0u);
  }
  EXPECT_EQ(LockRankChecks(), checks_before);
  EXPECT_EQ(LockRankViolations(), violations_before);
}

TEST_F(LockRankTest, GuardMigrationAcrossThreadsIsTolerated) {
  // Snapshot/commit guards may be created on one thread and released on
  // another; the releasing thread's held set simply has no matching
  // entry and the release is ignored.
  RankedSharedMutex mu(LockRank::kSnapshot, "test.migrating");
  mu.lock_shared();
  std::thread releaser([&] {
    EXPECT_EQ(LockRankHeldDepth(), 0u);
    mu.unlock_shared();
    EXPECT_EQ(LockRankHeldDepth(), 0u);
  });
  releaser.join();
  // The acquiring thread's stale entry is cleaned up lazily; it must not
  // block a fresh acquisition after an explicit release of the record.
  lockrank_internal::OnRelease(mu.rank(), mu.name());
  EXPECT_EQ(LockRankHeldDepth(), 0u);
}

TEST_F(LockRankTest, ConcurrentlyCleanUnderContention) {
  // TSan exercise: many threads hammer a small hierarchy through every
  // wrapper type. Any data race inside the checker's bookkeeping (the
  // thread-local held stacks, the global counters) shows up here.
  RankedMutex outer(LockRank::kSession, "test.mt.outer");
  RankedSharedMutex mid(LockRank::kSnapshot, "test.mt.mid");
  RankedMutex inner(LockRank::kRing, "test.mt.inner");
  std::atomic<uint64_t> total{0};
  uint64_t violations_before = LockRankViolations();

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t local = 0;
      for (int i = 0; i < kIters; ++i) {
        switch ((t + i) % 3) {
          case 0: {
            ScopedLock a(outer);
            SharedScopedLock b(mid);
            ScopedLock c(inner);
            ++local;
            break;
          }
          case 1: {
            ExclusiveScopedLock b(mid);
            ScopedLock c(inner);
            ++local;
            break;
          }
          case 2: {
            RankedLock a(outer);
            a.unlock();
            a.lock();
            ScopedLock c(inner);
            ++local;
            break;
          }
        }
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(total.load(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(LockRankHeldDepth(), 0u);
  EXPECT_EQ(LockRankViolations(), violations_before);
}

}  // namespace
}  // namespace mbq::util
