// Distributed-tracing plane: context minting and scoping
// (src/obs/trace_context.*), the kTracedEnvelope wire frame
// (src/rpc/messages.*) and span tagging in the recorder ring
// (src/obs/introspect.*). The cross-process stitch itself is exercised
// by scripts/trace_smoke.sh against real daemons.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "rpc/messages.h"

namespace mbq::obs {
namespace {

// ------------------------------------------------------------- the context

TEST(TraceContextTest, MintedRootsAreValidSampledAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    TraceContext ctx = MintTraceContext();
    ASSERT_TRUE(ctx.valid());
    EXPECT_TRUE(ctx.sampled);  // MBQ_TRACE_SAMPLE defaults to 1
    EXPECT_EQ(ctx.parent_span_id, 0u);
    EXPECT_TRUE(seen.insert(TraceIdHex(ctx)).second)
        << "trace id minted twice";
  }
}

TEST(TraceContextTest, HexFormsAreFixedWidthLowercase) {
  TraceContext ctx;
  ctx.trace_hi = 0xABCDEF0102030405ull;
  ctx.trace_lo = 0x1ull;
  EXPECT_EQ(TraceIdHex(ctx), "abcdef01020304050000000000000001");
  EXPECT_EQ(SpanIdHex(0x2aull), "000000000000002a");
  EXPECT_EQ(TraceIdHex(ctx).size(), 32u);
  EXPECT_EQ(SpanIdHex(NextSpanId()).size(), 16u);
}

TEST(TraceContextTest, ScopedInstallAndRestore) {
  ASSERT_FALSE(CurrentTraceContext().valid()) << "leaked context";
  TraceContext root = MintTraceContext();
  {
    ScopedTraceContext scope(root);
    EXPECT_TRUE(scope.active());
    EXPECT_EQ(CurrentTraceContext().trace_lo, root.trace_lo);
    EXPECT_EQ(CurrentTraceContext().span_id, root.span_id);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST(TraceContextTest, ChildScopeDerivesFromTheCurrentContext) {
  TraceContext root = MintTraceContext();
  ScopedTraceContext outer(root);
  ScopedTraceContext child;  // default = child mode
  ASSERT_TRUE(child.active());
  const TraceContext& current = CurrentTraceContext();
  EXPECT_EQ(current.trace_hi, root.trace_hi);
  EXPECT_EQ(current.trace_lo, root.trace_lo);
  EXPECT_EQ(current.parent_span_id, root.span_id);
  EXPECT_NE(current.span_id, root.span_id);
  EXPECT_EQ(current.sampled, root.sampled);
}

TEST(TraceContextTest, ChildScopeIsInertWithoutATrace) {
  ASSERT_FALSE(CurrentTraceContext().valid());
  {
    ScopedTraceContext child;
    EXPECT_FALSE(child.active());
    EXPECT_FALSE(CurrentTraceContext().valid());
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST(TraceContextTest, ChildOrRootMintsOrDerives) {
  // No trace active: a fresh root.
  TraceContext root = ChildOrRootContext();
  ASSERT_TRUE(root.valid());
  EXPECT_EQ(root.parent_span_id, 0u);
  // Under a scope: same trace, nested span.
  ScopedTraceContext scope(root);
  TraceContext child = ChildOrRootContext();
  EXPECT_EQ(child.trace_hi, root.trace_hi);
  EXPECT_EQ(child.trace_lo, root.trace_lo);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
}

TEST(TraceContextTest, ProcessRoleRoundTrips) {
  std::string before = ProcessRole();
  SetProcessRole("test-role");
  EXPECT_EQ(ProcessRole(), "test-role");
  SetProcessRole(before);
  EXPECT_EQ(ProcessRole(), before);
}

// ----------------------------------------------------- span ring tagging

TEST(TraceSpanRingTest, SpansAreStampedWithTheActiveContext) {
  SpanRecorder recorder(16);
  TraceContext ctx = MintTraceContext();
  {
    ScopedTraceContext scope(ctx);
    recorder.Record("tagged", "test", 1000, 500);
  }
  recorder.Record("untagged", "test", 2000, 500);
  std::string json = recorder.ToTraceJson();
  EXPECT_NE(json.find("\"trace_id\": \"" + TraceIdHex(ctx) + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"span_id\": \"" + SpanIdHex(ctx.span_id) + "\""),
            std::string::npos);
  // The untraced span carries the zero identity.
  EXPECT_NE(json.find("\"span_id\": \"" + SpanIdHex(0) + "\""),
            std::string::npos);
  // Chrome export: only the tagged span gets trace args.
  std::string chrome = recorder.ToChromeTraceJson();
  EXPECT_NE(chrome.find(TraceIdHex(ctx)), std::string::npos);
}

TEST(TraceSpanRingTest, WraparoundCountsDroppedSpans) {
  SpanRecorder recorder(2);
  recorder.Record("a", "test", 1000, 1);
  recorder.Record("b", "test", 2000, 1);
  EXPECT_EQ(recorder.dropped(), 0u);
  recorder.Record("c", "test", 3000, 1);
  recorder.Record("d", "test", 4000, 1);
  EXPECT_EQ(recorder.recorded(), 4u);
  EXPECT_EQ(recorder.dropped(), 2u);
  EXPECT_EQ(recorder.size(), 2u);
  std::string json = recorder.ToTraceJson();
  EXPECT_NE(json.find("\"recorded\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 2"), std::string::npos);
  // Clear resets the accounting with the ring.
  recorder.Clear();
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(TraceSpanRingTest, GlobalRecorderReportsGaugesInDefaultRegistry) {
  SpanRecorder::Global().Record("gauge probe", "test", 1000, 1);
  MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  EXPECT_GE(snap.ValueOf("obs.spans.recorded"), 1.0);
  EXPECT_GE(snap.ValueOf("obs.spans.dropped"), 0.0);
}

}  // namespace
}  // namespace mbq::obs

// ------------------------------------------------------ the wire envelope

namespace mbq::rpc {
namespace {

Frame MakeInner() {
  CallRequest call;
  call.call = NavCall::kFolloweesOf;
  call.uid = 42;
  return EncodeCall(call);
}

TEST(TraceEnvelopeTest, RoundTripsWithoutTiming) {
  TracedEnvelope env;
  env.trace_hi = 0x1111222233334444ull;
  env.trace_lo = 0x5555666677778888ull;
  env.span_id = 0x9999aaaabbbbccccull;
  env.sampled = true;
  env.has_timing = false;
  env.inner = MakeInner();

  Frame wire = EncodeTracedEnvelope(env);
  EXPECT_EQ(wire.type, static_cast<uint8_t>(MsgType::kTracedEnvelope));
  Result<TracedEnvelope> decoded = DecodeTracedEnvelope(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->trace_hi, env.trace_hi);
  EXPECT_EQ(decoded->trace_lo, env.trace_lo);
  EXPECT_EQ(decoded->span_id, env.span_id);
  EXPECT_TRUE(decoded->sampled);
  EXPECT_FALSE(decoded->has_timing);
  EXPECT_EQ(decoded->inner.type, static_cast<uint8_t>(MsgType::kCall));
  EXPECT_EQ(decoded->inner.body, env.inner.body);

  // The wrapped call decodes exactly as if it had arrived bare.
  Result<CallRequest> call = DecodeCall(decoded->inner);
  ASSERT_TRUE(call.ok());
  EXPECT_EQ(call->call, NavCall::kFolloweesOf);
  EXPECT_EQ(call->uid, 42);
}

TEST(TraceEnvelopeTest, RoundTripsShardTiming) {
  TracedEnvelope env;
  env.trace_hi = 1;
  env.trace_lo = 2;
  env.span_id = 3;
  env.sampled = true;
  env.has_timing = true;
  env.timing.queue_nanos = 10;
  env.timing.execute_nanos = 2000000;
  env.timing.serialize_nanos = 300;
  env.timing.reply_nanos = 2000500;
  env.inner = MakeInner();

  Result<TracedEnvelope> decoded =
      DecodeTracedEnvelope(EncodeTracedEnvelope(env));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(decoded->has_timing);
  EXPECT_EQ(decoded->timing.queue_nanos, 10u);
  EXPECT_EQ(decoded->timing.execute_nanos, 2000000u);
  EXPECT_EQ(decoded->timing.serialize_nanos, 300u);
  EXPECT_EQ(decoded->timing.reply_nanos, 2000500u);
}

TEST(TraceEnvelopeTest, RejectsNestedEnvelopes) {
  TracedEnvelope inner_env;
  inner_env.trace_hi = 1;
  inner_env.trace_lo = 1;
  inner_env.span_id = 1;
  inner_env.inner = MakeInner();

  TracedEnvelope outer;
  outer.trace_hi = 2;
  outer.trace_lo = 2;
  outer.span_id = 2;
  outer.inner = EncodeTracedEnvelope(inner_env);

  Result<TracedEnvelope> decoded =
      DecodeTracedEnvelope(EncodeTracedEnvelope(outer));
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption())
      << decoded.status().ToString();
}

TEST(TraceEnvelopeTest, RejectsTruncatedAndMismatchedBodies) {
  TracedEnvelope env;
  env.trace_hi = 1;
  env.trace_lo = 2;
  env.span_id = 3;
  env.inner = MakeInner();
  Frame wire = EncodeTracedEnvelope(env);

  // Truncation anywhere in the body must fail, never crash.
  for (size_t keep : {size_t{0}, size_t{8}, size_t{24}, size_t{25},
                      wire.body.size() - 1}) {
    Frame cut = wire;
    cut.body.resize(keep);
    EXPECT_FALSE(DecodeTracedEnvelope(cut).ok()) << "kept " << keep;
  }
  // A wrong message type is rejected up front.
  Frame wrong = wire;
  wrong.type = static_cast<uint8_t>(MsgType::kCall);
  EXPECT_FALSE(DecodeTracedEnvelope(wrong).ok());
}

TEST(TraceEnvelopeTest, TypeHasANameAndLockedWireValue) {
  EXPECT_EQ(static_cast<uint8_t>(MsgType::kTracedEnvelope), 14);
  EXPECT_STREQ(MsgTypeName(static_cast<uint8_t>(MsgType::kTracedEnvelope)),
               "kTracedEnvelope");
}

}  // namespace
}  // namespace mbq::rpc
