// Concurrency harness for the parallel-execution work: shared engines
// hammered from reader threads while the metrics registry is scraped,
// plan-cache single-flight under racing sessions, and morsel-parallel
// execution checked against the sequential plans. Designed to run clean
// under ThreadSanitizer (scripts/run_sanitized_tests.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/bitmap_engine.h"
#include "core/nodestore_engine.h"
#include "core/workload.h"
#include "cypher/session.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "twitter/loaders.h"

namespace mbq::core {
namespace {

constexpr char kCoMentionQuery[] =
    "MATCH (a:user {uid: $uid})<-[:mentions]-(t:tweet)-[:mentions]->(b:user) "
    "WHERE b.uid <> $uid "
    "RETURN b.uid, count(t) AS c ORDER BY c DESC, b.uid ASC LIMIT $n";

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    twitter::DatasetSpec spec;
    spec.num_users = 400;
    spec.follows_per_user = 8;
    spec.mentions_per_tweet = 1.5;
    spec.active_user_fraction = 0.4;
    spec.tweets_per_active_user = 5;
    spec.seed = 77;
    dataset_ = twitter::GenerateDataset(spec);

    nodestore::GraphDbOptions ndb_options;
    ndb_options.disk_profile = storage::DiskProfile::Instant();
    ndb_options.wal_enabled = false;
    db_ = std::make_unique<nodestore::GraphDb>(ndb_options);
    auto nh = twitter::LoadIntoNodestore(dataset_, db_.get());
    ASSERT_TRUE(nh.ok()) << nh.status().ToString();

    bitmapstore::GraphOptions bg_options;
    bg_options.disk_profile = storage::DiskProfile::Instant();
    graph_ = std::make_unique<bitmapstore::Graph>(bg_options);
    auto bh = twitter::LoadIntoBitmapstore(dataset_, graph_.get());
    ASSERT_TRUE(bh.ok()) << bh.status().ToString();

    ns_ = std::make_unique<NodestoreEngine>(db_.get());
    bm_ = std::make_unique<BitmapEngine>(graph_.get(), *bh);

    auto by_mentions = UsersByMentionCount(dataset_);
    ASSERT_FALSE(by_mentions.empty());
    hot_uid_ = by_mentions.back().second;
  }

  static void SortedExpectEq(Result<ValueRows> got, const ValueRows& want,
                             const char* what) {
    ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
    SortRows(&*got);
    EXPECT_EQ(*got, want) << what;
  }

  twitter::Dataset dataset_;
  std::unique_ptr<nodestore::GraphDb> db_;
  std::unique_ptr<bitmapstore::Graph> graph_;
  std::unique_ptr<NodestoreEngine> ns_;
  std::unique_ptr<BitmapEngine> bm_;
  int64_t hot_uid_ = 0;
};

// N reader threads share one GraphDb and one Graph — each runs the heavy
// Table 2 queries repeatedly while another thread scrapes the metrics
// registry. Every result must match the sequential reference; no reader
// may observe a torn page, stat, or plan.
TEST_F(ConcurrencyTest, SharedEnginesSurviveConcurrentReaders) {
  // Sequential reference results, taken before any concurrency starts.
  auto ref_ns = ns_->TopCoMentionedUsers(hot_uid_, 1 << 30);
  auto ref_bm = bm_->TopCoMentionedUsers(hot_uid_, 1 << 30);
  auto ref_inf = ns_->CurrentInfluence(hot_uid_, 1 << 30);
  ASSERT_TRUE(ref_ns.ok() && ref_bm.ok() && ref_inf.ok());
  SortRows(&*ref_ns);
  SortRows(&*ref_bm);
  SortRows(&*ref_inf);

  constexpr int kReaders = 4;
  constexpr int kRoundsPerReader = 8;
  std::atomic<bool> stop_scraping{false};
  std::atomic<int> failures{0};

  std::thread scraper([&] {
    while (!stop_scraping.load(std::memory_order_acquire)) {
      obs::MetricsSnapshot snap = obs::MetricsRegistry::Default().Snapshot();
      std::string json = snap.ToJson();
      if (json.empty()) failures.fetch_add(1);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int round = 0; round < kRoundsPerReader; ++round) {
        auto a = ns_->TopCoMentionedUsers(hot_uid_, 1 << 30);
        auto b = bm_->TopCoMentionedUsers(hot_uid_, 1 << 30);
        auto c = (r % 2 == 0) ? ns_->CurrentInfluence(hot_uid_, 1 << 30)
                              : bm_->TweetsOfFollowees(hot_uid_);
        if (!a.ok() || !b.ok() || !c.ok()) {
          failures.fetch_add(1);
          continue;
        }
        SortRows(&*a);
        SortRows(&*b);
        if (*a != *ref_ns || *b != *ref_bm) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop_scraping.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(failures.load(), 0);
}

// The same query text raced from two threads must be compiled exactly
// once: the second thread blocks on the session mutex, then takes the
// cached plan (single-flight, no double-plan, no torn cache entry).
TEST_F(ConcurrencyTest, PlanCacheCompilesRacedQueryOnce) {
  cypher::CypherSession session(db_.get());
  constexpr int kThreads = 4;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      auto result = session.Run(kCoMentionQuery,
                                {{"uid", cypher::Value::Int(hot_uid_)},
                                 {"n", cypher::Value::Int(10)}});
      if (!result.ok()) failures.fetch_add(1);
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(session.plan_cache_misses(), 1u);
  EXPECT_EQ(session.plan_cache_hits(), static_cast<uint64_t>(kThreads - 1));
}

// Morsel-parallel execution must be invisible in the results: the same
// queries at 1, 2 and 4 threads return identical rows and identical
// session-level db-hit totals.
TEST_F(ConcurrencyTest, ParallelExecutionMatchesSequential) {
  auto seq_q31 = ns_->TopCoMentionedUsers(hot_uid_, 1 << 30);
  auto seq_q51 = ns_->CurrentInfluence(hot_uid_, 1 << 30);
  auto seq_bm = bm_->TopCoMentionedUsers(hot_uid_, 1 << 30);
  ASSERT_TRUE(seq_q31.ok() && seq_q51.ok() && seq_bm.ok());
  SortRows(&*seq_q31);
  SortRows(&*seq_q51);
  SortRows(&*seq_bm);

  for (uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ns_->SetThreads(threads);
    bm_->SetThreads(threads);
    SortedExpectEq(ns_->TopCoMentionedUsers(hot_uid_, 1 << 30), *seq_q31,
                   "Q3.1 nodestore");
    SortedExpectEq(ns_->CurrentInfluence(hot_uid_, 1 << 30), *seq_q51,
                   "Q5.1 nodestore");
    SortedExpectEq(bm_->TopCoMentionedUsers(hot_uid_, 1 << 30), *seq_bm,
                   "Q3.1 bitmapstore");
  }
  ns_->SetThreads(1);
  bm_->SetThreads(1);
}

// PROFILE on a parallel session reports how many workers executed the
// aggregation pipeline (the `par=` annotation), and the db-hit total
// matches the sequential run — worker hits are folded back in.
TEST_F(ConcurrencyTest, ProfileReportsParallelWorkers) {
  cypher::CypherSession session(db_.get());
  cypher::Params params{{"uid", cypher::Value::Int(hot_uid_)},
                        {"n", cypher::Value::Int(1 << 30)}};
  const std::string profiled = std::string("PROFILE ") + kCoMentionQuery;

  session.SetThreads(1);
  auto seq = session.Run(profiled, params);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(seq->profile.find("par="), std::string::npos);

  session.SetThreads(4);
  auto par = session.Run(profiled, params);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  ASSERT_EQ(par->rows.size(), seq->rows.size());
  for (size_t r = 0; r < seq->rows.size(); ++r) {
    ASSERT_EQ(par->rows[r].size(), seq->rows[r].size());
    for (size_t c = 0; c < seq->rows[r].size(); ++c) {
      EXPECT_EQ(par->rows[r][c].value, seq->rows[r][c].value)
          << "row " << r << " col " << c;
    }
  }
  EXPECT_NE(par->profile.find("par="), std::string::npos)
      << "parallel PROFILE should annotate worker count:\n"
      << par->profile;
  EXPECT_EQ(par->db_hits, seq->db_hits)
      << "worker db hits must fold into the session total";
}

// Concurrent parallel queries: several threads each run a 2-way parallel
// aggregation on the shared session, all drawing workers from the same
// default pool. Checks pool sharing under contention.
TEST_F(ConcurrencyTest, ConcurrentParallelQueriesShareThePool) {
  ns_->SetThreads(2);
  auto ref = ns_->TopCoMentionedUsers(hot_uid_, 1 << 30);
  ASSERT_TRUE(ref.ok());
  SortRows(&*ref);

  constexpr int kCallers = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&] {
      for (int round = 0; round < 4; ++round) {
        auto got = ns_->TopCoMentionedUsers(hot_uid_, 1 << 30);
        if (!got.ok()) {
          failures.fetch_add(1);
          continue;
        }
        SortRows(&*got);
        if (*got != *ref) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : callers) t.join();
  ns_->SetThreads(1);
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mbq::core
