#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <unistd.h>
#include <unordered_set>

#include "bitmapstore/script_loader.h"
#include "twitter/csv_export.h"
#include "twitter/dataset.h"
#include "twitter/loaders.h"
#include "twitter/schema.h"

namespace mbq::twitter {
namespace {

DatasetSpec SmallSpec() {
  DatasetSpec spec;
  spec.num_users = 300;
  spec.follows_per_user = 6;
  spec.active_user_fraction = 0.2;
  spec.tweets_per_active_user = 4;
  spec.mentions_per_tweet = 1.0;
  spec.tags_per_tweet = 0.7;
  spec.retweet_fraction = 0.1;
  spec.seed = 11;
  return spec;
}

// --------------------------------------------------------------- Generator

TEST(GeneratorTest, DeterministicFromSeed) {
  Dataset a = GenerateDataset(SmallSpec());
  Dataset b = GenerateDataset(SmallSpec());
  EXPECT_EQ(a.follows, b.follows);
  EXPECT_EQ(a.mentions, b.mentions);
  EXPECT_EQ(a.tags, b.tags);
  EXPECT_EQ(a.retweets, b.retweets);
  ASSERT_EQ(a.tweets.size(), b.tweets.size());
  for (size_t i = 0; i < a.tweets.size(); ++i) {
    EXPECT_EQ(a.tweets[i].text, b.tweets[i].text);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  DatasetSpec spec = SmallSpec();
  Dataset a = GenerateDataset(spec);
  spec.seed = 12;
  Dataset b = GenerateDataset(spec);
  EXPECT_NE(a.follows, b.follows);
}

TEST(GeneratorTest, EdgeEndpointsValid) {
  Dataset d = GenerateDataset(SmallSpec());
  int64_t num_users = static_cast<int64_t>(d.users.size());
  int64_t num_tweets = static_cast<int64_t>(d.tweets.size());
  int64_t num_tags = static_cast<int64_t>(d.hashtags.size());
  for (const auto& [src, dst] : d.follows) {
    EXPECT_GE(src, 0);
    EXPECT_LT(src, num_users);
    EXPECT_GE(dst, 0);
    EXPECT_LT(dst, num_users);
    EXPECT_NE(src, dst);  // no self-follows
  }
  for (const auto& [tid, uid] : d.mentions) {
    EXPECT_LT(tid, num_tweets);
    EXPECT_LT(uid, num_users);
  }
  for (const auto& [tid, hid] : d.tags) {
    EXPECT_LT(tid, num_tweets);
    EXPECT_LT(hid, num_tags);
  }
  for (const auto& [re, orig] : d.retweets) {
    EXPECT_LT(re, num_tweets);
    EXPECT_LT(orig, re);  // retweets reference earlier tweets
  }
}

TEST(GeneratorTest, NoDuplicateFollowsPerUser) {
  Dataset d = GenerateDataset(SmallSpec());
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const auto& e : d.follows) {
    EXPECT_TRUE(seen.insert(e).second) << e.first << "->" << e.second;
  }
}

TEST(GeneratorTest, FollowersCountMatchesInDegree) {
  Dataset d = GenerateDataset(SmallSpec());
  std::vector<int64_t> indeg(d.users.size(), 0);
  for (const auto& [src, dst] : d.follows) ++indeg[dst];
  for (const auto& u : d.users) {
    EXPECT_EQ(u.followers_count, indeg[u.uid]) << u.uid;
  }
}

TEST(GeneratorTest, FollowDistributionIsSkewed) {
  DatasetSpec spec = SmallSpec();
  spec.num_users = 3000;
  Dataset d = GenerateDataset(spec);
  std::vector<int64_t> indeg(d.users.size(), 0);
  for (const auto& [src, dst] : d.follows) ++indeg[dst];
  std::sort(indeg.begin(), indeg.end(), std::greater<>());
  int64_t top = 0;
  int64_t total = 0;
  for (size_t i = 0; i < indeg.size(); ++i) {
    total += indeg[i];
    if (i < indeg.size() / 20) top += indeg[i];  // top 5%
  }
  ASSERT_GT(total, 0);
  // Heavy tail: top 5% of users attract well over 5% of follows.
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(total), 0.2);
}

TEST(GeneratorTest, ScaleTracksUserCount) {
  DatasetSpec spec = SmallSpec();
  Dataset small = GenerateDataset(spec);
  spec.num_users *= 4;
  Dataset big = GenerateDataset(spec);
  EXPECT_GT(big.follows.size(), small.follows.size() * 2);
  EXPECT_GT(big.tweets.size(), small.tweets.size());
}

TEST(GeneratorTest, CountsConsistent) {
  Dataset d = GenerateDataset(SmallSpec());
  DatasetCounts c = CountDataset(d);
  EXPECT_EQ(c.total_nodes, d.NumNodes());
  EXPECT_EQ(c.total_edges, d.NumEdges());
  EXPECT_EQ(c.posts, c.tweets);
  EXPECT_GT(c.follows, 0u);
  EXPECT_GT(c.mentions, 0u);
}

TEST(GeneratorTest, PaperShapeRatiosRoughlyHold) {
  DatasetSpec spec;  // defaults target the paper's ratios
  spec.num_users = 20000;
  Dataset d = GenerateDataset(spec);
  DatasetCounts c = CountDataset(d);
  double follows_per_user =
      static_cast<double>(c.follows) / static_cast<double>(c.users);
  EXPECT_NEAR(follows_per_user, 11.5, 2.5);
  double mentions_per_tweet =
      static_cast<double>(c.mentions) / static_cast<double>(c.tweets);
  EXPECT_NEAR(mentions_per_tweet, 0.46, 0.15);
  double tags_per_tweet =
      static_cast<double>(c.tags) / static_cast<double>(c.tweets);
  EXPECT_NEAR(tags_per_tweet, 0.30, 0.12);
}

// ------------------------------------------------------------- CSV export

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mbq_twitter_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(ExportTest, WritesAllFiles) {
  Dataset d = GenerateDataset(SmallSpec());
  ASSERT_TRUE(ExportCsv(d, dir_.string()).ok());
  for (const char* f :
       {CsvFiles::kUsers, CsvFiles::kTweets, CsvFiles::kHashtags,
        CsvFiles::kFollows, CsvFiles::kPosts, CsvFiles::kRetweets,
        CsvFiles::kMentions, CsvFiles::kTags}) {
    EXPECT_TRUE(std::filesystem::exists(dir_ / f)) << f;
  }
}

TEST_F(ExportTest, BothImportersLoadTheSameFiles) {
  Dataset d = GenerateDataset(SmallSpec());
  ASSERT_TRUE(ExportCsv(d, dir_.string()).ok());

  // Record-store import tool.
  nodestore::GraphDbOptions ndb_options;
  ndb_options.disk_profile = storage::DiskProfile::Instant();
  ndb_options.wal_enabled = false;
  ndb_options.write_through = true;
  nodestore::GraphDb db(ndb_options);
  nodestore::BatchImporter importer(&db);
  ASSERT_TRUE(
      importer.Run(BuildImportSpec(/*with_retweets=*/true), dir_.string())
          .ok());
  EXPECT_EQ(importer.nodes_imported(), d.NumNodes());
  EXPECT_EQ(importer.rels_imported(), d.NumEdges());
  EXPECT_EQ(db.NumNodes(), d.NumNodes());
  EXPECT_EQ(db.NumRels(), d.NumEdges());

  // Bitmap-store script loader.
  bitmapstore::GraphOptions bg_options;
  bg_options.disk_profile = storage::DiskProfile::Instant();
  bitmapstore::Graph graph(bg_options);
  bitmapstore::ScriptLoader loader(&graph);
  ASSERT_TRUE(loader
                  .Execute(BuildLoadScript(/*with_retweets=*/true),
                           dir_.string())
                  .ok());
  EXPECT_EQ(graph.NumNodes(), d.NumNodes());
  EXPECT_EQ(graph.NumEdges(), d.NumEdges());

  // Spot-check one user's followee set against ground truth in both.
  int64_t probe = d.follows.front().first;
  std::set<int64_t> expected;
  for (const auto& [src, dst] : d.follows) {
    if (src == probe) expected.insert(dst);
  }
  auto nh = ResolveNodestoreHandles(&db);
  ASSERT_TRUE(nh.ok());
  auto node = db.IndexSeek(nh->user, nh->uid, common::Value::Int(probe));
  ASSERT_TRUE(node.ok());
  std::set<int64_t> ns_followees;
  ASSERT_TRUE(db.ForEachRelationship(
                    *node, nodestore::Direction::kOutgoing, nh->follows,
                    [&](const nodestore::GraphDb::RelInfo& rel) {
                      auto uid = db.GetNodeProperty(rel.other, nh->uid);
                      EXPECT_TRUE(uid.ok());
                      ns_followees.insert(uid->AsInt());
                      return true;
                    })
                  .ok());
  EXPECT_EQ(ns_followees, expected);

  auto bh = ResolveBitmapHandles(graph);
  ASSERT_TRUE(bh.ok());
  auto oid = graph.FindObject(bh->uid, common::Value::Int(probe));
  ASSERT_TRUE(oid.ok());
  auto nbrs = graph.Neighbors(*oid, bh->follows,
                              bitmapstore::EdgesDirection::kOutgoing);
  ASSERT_TRUE(nbrs.ok());
  std::set<int64_t> bm_followees;
  nbrs->ForEach([&](uint32_t n) {
    auto uid = graph.GetAttribute(n, bh->uid);
    EXPECT_TRUE(uid.ok());
    bm_followees.insert(uid->AsInt());
  });
  EXPECT_EQ(bm_followees, expected);
}

TEST_F(ExportTest, DirectLoadersMatchDatasetCounts) {
  Dataset d = GenerateDataset(SmallSpec());

  nodestore::GraphDbOptions ndb_options;
  ndb_options.disk_profile = storage::DiskProfile::Instant();
  ndb_options.wal_enabled = false;
  nodestore::GraphDb db(ndb_options);
  auto nh = LoadIntoNodestore(d, &db);
  ASSERT_TRUE(nh.ok()) << nh.status().ToString();
  EXPECT_EQ(db.NumNodes(), d.NumNodes());
  EXPECT_EQ(db.NumRels(), d.NumEdges());
  EXPECT_TRUE(db.HasIndex(nh->user, nh->uid));

  bitmapstore::GraphOptions bg_options;
  bg_options.disk_profile = storage::DiskProfile::Instant();
  bitmapstore::Graph graph(bg_options);
  auto bh = LoadIntoBitmapstore(d, &graph);
  ASSERT_TRUE(bh.ok()) << bh.status().ToString();
  EXPECT_EQ(graph.NumNodes(), d.NumNodes());
  EXPECT_EQ(graph.NumEdges(), d.NumEdges());
  EXPECT_EQ(graph.CountObjects(bh->user), d.users.size());
  EXPECT_EQ(graph.CountObjects(bh->follows), d.follows.size());
}

}  // namespace
}  // namespace mbq::twitter
