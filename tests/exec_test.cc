#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"

namespace mbq::exec {
namespace {

TEST(ThreadPoolTest, ParallelismClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.parallelism(), 1u);
  ThreadPool pool4(4);
  EXPECT_EQ(pool4.parallelism(), 4u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 100000;
  std::vector<std::atomic<uint32_t>> touched(kN);
  pool.ParallelFor(0, kN, 128, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      touched[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSumsRange) {
  ThreadPool pool(3);
  constexpr uint64_t kN = 50000;
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, kN, 64, [&](uint64_t lo, uint64_t hi) {
    uint64_t local = 0;
    for (uint64_t i = lo; i < hi; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeRunsNothing) {
  ThreadPool pool(2);
  std::atomic<uint64_t> calls{0};
  pool.ParallelFor(10, 10, 4,
                   [&](uint64_t, uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, ParallelForGrainLargerThanRange) {
  ThreadPool pool(4);
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> items{0};
  pool.ParallelFor(0, 7, 1000, [&](uint64_t lo, uint64_t hi) {
    calls.fetch_add(1);
    items.fetch_add(hi - lo);
  });
  EXPECT_EQ(calls.load(), 1u);
  EXPECT_EQ(items.load(), 7u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  pool.ParallelFor(0, 100, 10, [&](uint64_t, uint64_t) {
    if (std::this_thread::get_id() != caller) off_thread.store(true);
  });
  EXPECT_FALSE(off_thread.load());
}

TEST(ThreadPoolTest, SubmitThenDrainCompletesAllTasks) {
  ThreadPool pool(4);
  std::atomic<uint64_t> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 200u);
}

TEST(ThreadPoolTest, DrainOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Drain();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 8, 1, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      pool.ParallelFor(0, 100, 10, [&](uint64_t ilo, uint64_t ihi) {
        sum.fetch_add(ihi - ilo, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(sum.load(), 8u * 100u);
}

TEST(ThreadPoolTest, ConcurrentCallersShareOnePool) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr uint64_t kN = 20000;
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      pool.ParallelFor(0, kN, 97, [&](uint64_t lo, uint64_t hi) {
        total.fetch_add(hi - lo, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * kN);
}

TEST(ThreadPoolTest, DefaultThreadsParsesEnvironment) {
  // DefaultThreads re-reads the environment on each call (only the pool
  // instance behind Default() is pinned at first use).
  char saved[32] = {0};
  const char* old = std::getenv("CYPHER_THREADS");
  if (old != nullptr) std::snprintf(saved, sizeof(saved), "%s", old);

  setenv("CYPHER_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 3u);

  if (old != nullptr) {
    setenv("CYPHER_THREADS", saved, 1);
  } else {
    unsetenv("CYPHER_THREADS");
  }
}

}  // namespace
}  // namespace mbq::exec
