#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "bitmapstore/bitmap.h"
#include "util/rng.h"

namespace mbq::bitmapstore {
namespace {

// ------------------------------------------------------------------ Basics

TEST(BitmapTest, EmptyBitmap) {
  Bitmap bm;
  EXPECT_TRUE(bm.Empty());
  EXPECT_EQ(bm.Cardinality(), 0u);
  EXPECT_FALSE(bm.Contains(0));
  EXPECT_FALSE(bm.Min().has_value());
  EXPECT_FALSE(bm.Max().has_value());
  EXPECT_TRUE(bm.ToVector().empty());
}

TEST(BitmapTest, AddContainsRemove) {
  Bitmap bm;
  bm.Add(5);
  bm.Add(70000);  // second container
  bm.Add(5);      // duplicate
  EXPECT_EQ(bm.Cardinality(), 2u);
  EXPECT_TRUE(bm.Contains(5));
  EXPECT_TRUE(bm.Contains(70000));
  EXPECT_FALSE(bm.Contains(6));
  EXPECT_TRUE(bm.Remove(5));
  EXPECT_FALSE(bm.Remove(5));
  EXPECT_EQ(bm.Cardinality(), 1u);
  EXPECT_FALSE(bm.Contains(5));
}

TEST(BitmapTest, MinMax) {
  Bitmap bm = Bitmap::FromValues({100, 3, 999999, 65536});
  EXPECT_EQ(*bm.Min(), 3u);
  EXPECT_EQ(*bm.Max(), 999999u);
}

TEST(BitmapTest, IterationAscending) {
  Bitmap bm = Bitmap::FromValues({9, 1, 70000, 65535, 65536});
  std::vector<uint32_t> seen;
  for (auto it = bm.Begin(); it.Valid(); it.Next()) seen.push_back(it.Value());
  EXPECT_EQ(seen, (std::vector<uint32_t>{1, 9, 65535, 65536, 70000}));
}

TEST(BitmapTest, ForEachEarlyStop) {
  Bitmap bm = Bitmap::FromValues({1, 2, 3, 4, 5});
  int visited = 0;
  bm.ForEach([&](uint32_t) -> bool {
    ++visited;
    return visited < 3;
  });
  EXPECT_EQ(visited, 3);
}

TEST(BitmapTest, DenseConversionRoundTrip) {
  // Push one container past the array limit and back.
  Bitmap bm;
  for (uint32_t i = 0; i < 5000; ++i) bm.Add(i * 2);
  EXPECT_EQ(bm.Cardinality(), 5000u);
  for (uint32_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(bm.Contains(i * 2)) << i;
    ASSERT_FALSE(bm.Contains(i * 2 + 1)) << i;
  }
  for (uint32_t i = 1000; i < 5000; ++i) EXPECT_TRUE(bm.Remove(i * 2));
  EXPECT_EQ(bm.Cardinality(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) ASSERT_TRUE(bm.Contains(i * 2));
}

TEST(BitmapTest, EqualityAcrossRepresentations) {
  // Same set reached via different mutation orders (one passes through a
  // bitset container, the other stays array).
  Bitmap a;
  for (uint32_t i = 0; i < 5000; ++i) a.Add(i);
  for (uint32_t i = 100; i < 5000; ++i) a.Remove(i);
  Bitmap b;
  for (uint32_t i = 0; i < 100; ++i) b.Add(i);
  EXPECT_TRUE(a == b);
  b.Add(100);
  EXPECT_FALSE(a == b);
}

// ------------------------------------------------------------ Serialization

TEST(BitmapTest, SerializeRoundTrip) {
  Bitmap bm;
  for (uint32_t i = 0; i < 6000; ++i) bm.Add(i * 3);  // mixed containers
  bm.Add(1u << 30);
  std::vector<uint8_t> buf;
  bm.SerializeTo(&buf);
  size_t offset = 0;
  auto parsed = Bitmap::Deserialize(buf, &offset);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(offset, buf.size());
  EXPECT_TRUE(*parsed == bm);
}

TEST(BitmapTest, SerializeEmpty) {
  Bitmap bm;
  std::vector<uint8_t> buf;
  bm.SerializeTo(&buf);
  size_t offset = 0;
  auto parsed = Bitmap::Deserialize(buf, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Empty());
}

TEST(BitmapTest, DeserializeRejectsTruncation) {
  Bitmap bm = Bitmap::FromValues({1, 2, 3});
  std::vector<uint8_t> buf;
  bm.SerializeTo(&buf);
  for (size_t cut = 1; cut < buf.size(); cut += 3) {
    std::vector<uint8_t> trunc(buf.begin(), buf.end() - cut);
    size_t offset = 0;
    EXPECT_FALSE(Bitmap::Deserialize(trunc, &offset).ok()) << cut;
  }
}

TEST(BitmapTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> garbage(64, 0xFF);
  size_t offset = 0;
  EXPECT_FALSE(Bitmap::Deserialize(garbage, &offset).ok());
}

// ---------------------------------------------- Property tests vs std::set

struct AlgebraCase {
  uint64_t seed;
  uint32_t universe;  // values drawn from [0, universe)
  size_t adds_a;
  size_t adds_b;
};

class BitmapAlgebraTest : public ::testing::TestWithParam<AlgebraCase> {};

TEST_P(BitmapAlgebraTest, MatchesReferenceSets) {
  const AlgebraCase& c = GetParam();
  Rng rng(c.seed);
  Bitmap a;
  Bitmap b;
  std::set<uint32_t> ra;
  std::set<uint32_t> rb;
  for (size_t i = 0; i < c.adds_a; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(c.universe));
    a.Add(v);
    ra.insert(v);
  }
  for (size_t i = 0; i < c.adds_b; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(c.universe));
    b.Add(v);
    rb.insert(v);
  }
  // Random removals from a.
  for (size_t i = 0; i < c.adds_a / 4; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(c.universe));
    EXPECT_EQ(a.Remove(v), ra.erase(v) > 0);
  }

  auto reference = [](const std::set<uint32_t>& s) {
    return std::vector<uint32_t>(s.begin(), s.end());
  };
  auto set_and = [&] {
    std::vector<uint32_t> out;
    std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                          std::back_inserter(out));
    return out;
  }();
  auto set_or = [&] {
    std::vector<uint32_t> out;
    std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                   std::back_inserter(out));
    return out;
  }();
  auto set_andnot = [&] {
    std::vector<uint32_t> out;
    std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::back_inserter(out));
    return out;
  }();
  auto set_xor = [&] {
    std::vector<uint32_t> out;
    std::set_symmetric_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                                  std::back_inserter(out));
    return out;
  }();

  EXPECT_EQ(a.ToVector(), reference(ra));
  EXPECT_EQ(b.ToVector(), reference(rb));
  EXPECT_EQ(Bitmap::And(a, b).ToVector(), set_and);
  EXPECT_EQ(Bitmap::Or(a, b).ToVector(), set_or);
  EXPECT_EQ(Bitmap::AndNot(a, b).ToVector(), set_andnot);
  EXPECT_EQ(Bitmap::Xor(a, b).ToVector(), set_xor);
  EXPECT_EQ(Bitmap::AndCardinality(a, b), set_and.size());
  EXPECT_EQ(Bitmap::Intersects(a, b), !set_and.empty());
  EXPECT_EQ(Bitmap::IsSubset(a, b),
            std::includes(rb.begin(), rb.end(), ra.begin(), ra.end()));

  // In-place ops agree with the binary forms.
  Bitmap a2 = a;
  a2.InplaceOr(b);
  EXPECT_TRUE(a2 == Bitmap::Or(a, b));
  Bitmap a3 = a;
  a3.InplaceAnd(b);
  EXPECT_TRUE(a3 == Bitmap::And(a, b));
  Bitmap a4 = a;
  a4.InplaceAndNot(b);
  EXPECT_TRUE(a4 == Bitmap::AndNot(a, b));

  // Serialization round-trips the combined results too.
  std::vector<uint8_t> buf;
  Bitmap::Or(a, b).SerializeTo(&buf);
  size_t offset = 0;
  auto parsed = Bitmap::Deserialize(buf, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == Bitmap::Or(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitmapAlgebraTest,
    ::testing::Values(
        // Sparse vs sparse, small universe (array containers, collisions).
        AlgebraCase{1, 1000, 100, 100},
        // Dense vs dense in one container (bitset x bitset).
        AlgebraCase{2, 60000, 20000, 20000},
        // Dense vs sparse (bitset x array).
        AlgebraCase{3, 60000, 20000, 50},
        // Multi-container spread.
        AlgebraCase{4, 10u << 20, 5000, 5000},
        // Disjoint-ish high/low halves.
        AlgebraCase{5, 200000, 3000, 3000},
        // Tiny sets.
        AlgebraCase{6, 10, 3, 3},
        // One empty side.
        AlgebraCase{7, 1000, 0, 200},
        // Heavy overlap on container boundaries.
        AlgebraCase{8, 65537, 30000, 30000}));

TEST(BitmapTest, MemoryBytesGrowsWithContent) {
  Bitmap small = Bitmap::FromValues({1, 2, 3});
  Bitmap big;
  for (uint32_t i = 0; i < 100000; ++i) big.Add(i);
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace mbq::bitmapstore
