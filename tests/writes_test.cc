#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/mix.h"
#include "core/bitmap_engine.h"
#include "core/calls.h"
#include "core/check.h"
#include "core/nodestore_engine.h"
#include "core/shard_service.h"
#include "core/workload.h"
#include "cypher/session.h"
#include "rpc/messages.h"
#include "rpc/server.h"
#include "store/delta/delta_store.h"
#include "store/delta/write_batch.h"
#include "twitter/loaders.h"
#include "util/rng.h"

namespace mbq::core {
namespace {

using twitter::Dataset;
using twitter::DatasetSpec;

Dataset SmallDataset(uint64_t seed, uint64_t users = 120) {
  DatasetSpec spec;
  spec.num_users = users;
  spec.follows_per_user = 5;
  spec.mentions_per_tweet = 1.0;
  spec.active_user_fraction = 0.4;
  spec.tweets_per_active_user = 3;
  spec.retweet_fraction = 0.1;
  spec.seed = seed;
  return twitter::GenerateDataset(spec);
}

/// Owns one writable engine plus the stores underneath it, so tests can
/// build several engines over copies of the same dataset.
struct WritableFixture {
  Dataset dataset;
  std::unique_ptr<nodestore::GraphDb> db;
  std::unique_ptr<bitmapstore::Graph> graph;
  twitter::BitmapHandles handles{};
  std::unique_ptr<MicroblogEngine> engine;

  WritableEngine* writer() { return engine->AsWritable(); }
};

/// Builds a writable engine of `kind` over `dataset`; `wal_dir` empty
/// commits without durability. `mutate` lets tests toggle cache knobs.
std::unique_ptr<WritableFixture> OpenWritable(
    EngineKind kind, const Dataset& dataset,
    const std::string& wal_dir = std::string(),
    void (*mutate)(EngineOptions*) = nullptr) {
  auto fx = std::make_unique<WritableFixture>();
  fx->dataset = dataset;
  EngineOptions options;
  options.enable_writes = true;
  options.dataset = &fx->dataset;
  options.wal_dir = wal_dir;
  if (kind == EngineKind::kNodestore) {
    nodestore::GraphDbOptions ndb;
    ndb.disk_profile = storage::DiskProfile::Instant();
    ndb.wal_enabled = false;
    fx->db = std::make_unique<nodestore::GraphDb>(ndb);
    auto nh = twitter::LoadIntoNodestore(fx->dataset, fx->db.get());
    EXPECT_TRUE(nh.ok()) << nh.status().ToString();
    options.db = fx->db.get();
  } else {
    bitmapstore::GraphOptions bg;
    bg.disk_profile = storage::DiskProfile::Instant();
    fx->graph = std::make_unique<bitmapstore::Graph>(bg);
    auto bh = twitter::LoadIntoBitmapstore(fx->dataset, fx->graph.get());
    EXPECT_TRUE(bh.ok()) << bh.status().ToString();
    fx->handles = *bh;
    options.graph = fx->graph.get();
    options.handles = &fx->handles;
  }
  if (mutate != nullptr) mutate(&options);
  auto engine = OpenEngine(kind, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  fx->engine = std::move(*engine);
  return fx;
}

bool RowsContainInt(const ValueRows& rows, int64_t v) {
  for (const ValueRow& row : rows) {
    for (const Value& cell : row) {
      if (cell.type() == common::ValueType::kInt && cell.AsInt() == v)
        return true;
    }
  }
  return false;
}

// ------------------------------------------------------------- API shape

TEST(WriteApiTest, ReadOnlyEngineHasNoWriteSurface) {
  Dataset dataset = SmallDataset(11);
  nodestore::GraphDbOptions ndb;
  ndb.disk_profile = storage::DiskProfile::Instant();
  ndb.wal_enabled = false;
  nodestore::GraphDb db(ndb);
  auto nh = twitter::LoadIntoNodestore(dataset, &db);
  ASSERT_TRUE(nh.ok());
  EngineOptions options;
  options.db = &db;
  auto engine = OpenEngine(EngineKind::kNodestore, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->AsWritable(), nullptr);

  // Dispatching a write call against it is a typed refusal, not a crash.
  CallSpec spec;
  spec.kind = CallKind::kFollow;
  spec.a = 1;
  spec.b = 2;
  auto outcome = DispatchCall(**engine, spec);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsNotImplemented())
      << outcome.status().ToString();
}

TEST(WriteApiTest, IsWriteCallClassifiesKinds) {
  EXPECT_TRUE(IsWriteCall(CallKind::kPostTweet));
  EXPECT_TRUE(IsWriteCall(CallKind::kFollow));
  EXPECT_TRUE(IsWriteCall(CallKind::kUnfollow));
  EXPECT_TRUE(IsWriteCall(CallKind::kAddMention));
  EXPECT_FALSE(IsWriteCall(CallKind::kFollowees));
  EXPECT_FALSE(IsWriteCall(CallKind::kSelectUsers));
  EXPECT_FALSE(IsWriteCall(CallKind::kShortestPath));
}

class WriteVisibilityTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(WriteVisibilityTest, CommittedWritesAreImmediatelyVisible) {
  auto fx = OpenWritable(GetParam(), SmallDataset(22));
  ASSERT_NE(fx->writer(), nullptr);
  WritableEngine* w = fx->writer();
  const int64_t users = static_cast<int64_t>(fx->dataset.users.size());
  const int64_t src = 0, dst = users - 1;

  // Follow: the edge appears in Q2.1 the moment Commit returns.
  auto before = fx->engine->FolloweesOf(src);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(RowsContainInt(*before, dst))
      << "seed produced src->dst already; pick another seed";
  ASSERT_TRUE(w->Follow(src, dst).ok());
  auto after = fx->engine->FolloweesOf(src);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(RowsContainInt(*after, dst));

  // PostTweet: a fresh tweet id past the bulk-loaded space, visible to
  // Q2.2 through the new follows edge.
  const int64_t tid_floor = static_cast<int64_t>(fx->dataset.tweets.size());
  EXPECT_EQ(w->next_tid(), tid_floor);
  ASSERT_TRUE(w->PostTweet(dst, "hello live writes").ok());
  EXPECT_EQ(w->next_tid(), tid_floor + 1);
  auto feed = fx->engine->TweetsOfFollowees(src);
  ASSERT_TRUE(feed.ok());
  EXPECT_TRUE(RowsContainInt(*feed, tid_floor));

  // AddMention: the new tweet mentioning src shows up in Q5 influence
  // queries for src (dst follows nobody relevant, so potential side).
  ASSERT_TRUE(w->AddMention(tid_floor, src).ok());
  auto cur = fx->engine->CurrentInfluence(src, 1 << 30);
  auto pot = fx->engine->PotentialInfluence(src, 1 << 30);
  ASSERT_TRUE(cur.ok() && pot.ok());
  EXPECT_TRUE(RowsContainInt(*cur, dst) || RowsContainInt(*pot, dst));

  // Unfollow: tombstoned edge disappears from Q2.1.
  ASSERT_TRUE(w->Unfollow(src, dst).ok());
  auto gone = fx->engine->FolloweesOf(src);
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(RowsContainInt(*gone, dst));

  // The journal logged every committed op.
  EXPECT_EQ(w->delta().ops(), 4u);
  EXPECT_EQ(w->delta().tombstones(), 1u);
}

TEST_P(WriteVisibilityTest, PackedBatchCommitsAsOneUnit) {
  auto fx = OpenWritable(GetParam(), SmallDataset(33));
  ASSERT_NE(fx->writer(), nullptr);
  WritableEngine* w = fx->writer();
  const int64_t users = static_cast<int64_t>(fx->dataset.users.size());

  store::WriteBatch batch;
  batch.Follow(0, users - 1).Follow(0, users - 2).PostTweet(users - 1, "grp");
  ASSERT_TRUE(w->Commit(std::move(batch)).ok());

  auto rows = fx->engine->FolloweesOf(0);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(RowsContainInt(*rows, users - 1));
  EXPECT_TRUE(RowsContainInt(*rows, users - 2));
  EXPECT_EQ(w->delta().batches(), 1u);
  EXPECT_EQ(w->delta().ops(), 3u);

  // Empty batches are a no-op, not an error and not a journal entry.
  ASSERT_TRUE(w->Commit(store::WriteBatch()).ok());
  EXPECT_EQ(w->delta().batches(), 1u);

  // Write calls dispatch through the uniform call surface too.
  CallSpec spec;
  spec.kind = CallKind::kPostTweet;
  spec.a = 0;
  spec.text = "via dispatch";
  auto outcome = DispatchCall(*fx->engine, spec);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->rows, 0u);
  EXPECT_EQ(w->delta().ops(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Engines, WriteVisibilityTest,
                         ::testing::Values(EngineKind::kNodestore,
                                           EngineKind::kBitmap));

// ------------------------------------------------------- churn agreement

/// The churn agreement property (docs/WRITES.md): two engines fed the
/// same interleaved read/write call stream must agree on every read.
/// Randomized over seeds; the failing seed reproduces the stream.
class WriteAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WriteAgreementTest, InterleavedStreamAgrees) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("reproduce with seed=" + std::to_string(seed));
  Dataset dataset = SmallDataset(seed, 80 + seed % 120);
  auto ns = OpenWritable(EngineKind::kNodestore, dataset);
  auto bm = OpenWritable(EngineKind::kBitmap, dataset);
  ASSERT_NE(ns->writer(), nullptr);
  ASSERT_NE(bm->writer(), nullptr);

  Rng rng(seed ^ 0xC0FFEE);
  const int64_t users = static_cast<int64_t>(dataset.users.size());
  int64_t tweets = static_cast<int64_t>(dataset.tweets.size());

  for (int call = 0; call < 120; ++call) {
    SCOPED_TRACE("call #" + std::to_string(call));
    CallSpec spec;
    int64_t uid = static_cast<int64_t>(rng.NextBounded(users));
    switch (rng.NextBounded(10)) {
      case 0:
        spec.kind = CallKind::kPostTweet;
        spec.a = uid;
        spec.text = "churn #" + std::to_string(call);
        ++tweets;  // both engines assign the same fresh tid
        break;
      case 1:
        spec.kind = CallKind::kFollow;
        spec.a = uid;
        spec.b = static_cast<int64_t>(rng.NextBounded(users));
        break;
      case 2:
        spec.kind = CallKind::kUnfollow;
        spec.a = uid;
        spec.b = static_cast<int64_t>(rng.NextBounded(users));
        break;
      case 3:
        spec.kind = CallKind::kAddMention;
        spec.a = static_cast<int64_t>(rng.NextBounded(tweets));
        spec.b = uid;
        break;
      case 4:
        spec.kind = CallKind::kFollowees;
        spec.a = uid;
        break;
      case 5:
        spec.kind = CallKind::kTweetsOfFollowees;
        spec.a = uid;
        break;
      case 6:
        spec.kind = CallKind::kHashtagsOfFollowees;
        spec.a = uid;
        break;
      case 7:
        spec.kind = CallKind::kCurrentInfluence;
        spec.a = uid;
        spec.n = 1 << 30;
        break;
      case 8:
        spec.kind = CallKind::kSelectUsers;
        spec.threshold = static_cast<int64_t>(rng.NextBounded(20));
        break;
      default:
        spec.kind = CallKind::kShortestPath;
        spec.a = uid;
        spec.b = static_cast<int64_t>(rng.NextBounded(users));
        break;
    }
    auto a = DispatchCall(*ns->engine, spec);
    auto b = DispatchCall(*bm->engine, spec);
    ASSERT_TRUE(a.ok()) << CallSpecToString(spec) << ": "
                        << a.status().ToString();
    ASSERT_TRUE(b.ok()) << CallSpecToString(spec) << ": "
                        << b.status().ToString();
    ASSERT_EQ(*a, *b) << "diverged on " << CallSpecToString(spec);
    if (HasFailure()) return;
  }
  // Identical streams leave identical journals.
  EXPECT_EQ(ns->writer()->delta().ops(), bm->writer()->delta().ops());
  EXPECT_EQ(ns->writer()->delta().tombstones(),
            bm->writer()->delta().tombstones());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteAgreementTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull));

// ------------------------------------------------------ snapshot reads

/// Readers hammer Q2.1 while a writer commits batches that add — then
/// remove — a *pair* of edges in one batch. Snapshot atomicity means a
/// read sees both edges or neither, never one.
class WriteConcurrencyTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(WriteConcurrencyTest, ReadersNeverObserveHalfABatch) {
  auto fx = OpenWritable(GetParam(), SmallDataset(44));
  ASSERT_NE(fx->writer(), nullptr);
  WritableEngine* w = fx->writer();
  const int64_t users = static_cast<int64_t>(fx->dataset.users.size());
  const int64_t src = 0;
  const int64_t e1 = users - 1, e2 = users - 2;  // the paired edges
  // The generated graph may already contain either edge: tombstone both
  // so the flip-flop below starts from a known state.
  store::WriteBatch clear;
  clear.Unfollow(src, e1).Unfollow(src, e2);
  ASSERT_TRUE(w->Commit(std::move(clear)).ok());
  auto base = fx->engine->FolloweesOf(src);
  ASSERT_TRUE(base.ok());
  ASSERT_FALSE(RowsContainInt(*base, e1));
  ASSERT_FALSE(RowsContainInt(*base, e2));

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto rows = fx->engine->FolloweesOf(src);
        if (!rows.ok()) {
          torn.fetch_add(1);
          return;
        }
        if (RowsContainInt(*rows, e1) != RowsContainInt(*rows, e2)) {
          torn.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int round = 0; round < 60; ++round) {
    store::WriteBatch add;
    add.Follow(src, e1).Follow(src, e2);
    ASSERT_TRUE(w->Commit(std::move(add)).ok());
    store::WriteBatch del;
    del.Unfollow(src, e1).Unfollow(src, e2);
    ASSERT_TRUE(w->Commit(std::move(del)).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0) << "a reader observed half a batch";
}

INSTANTIATE_TEST_SUITE_P(Engines, WriteConcurrencyTest,
                         ::testing::Values(EngineKind::kNodestore,
                                           EngineKind::kBitmap));

// ----------------------------------------------------------- WAL replay

class WalReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mbq_wal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string wal_dir() const { return dir_.string(); }
  std::filesystem::path wal_file() const { return dir_ / "delta.wal"; }

  /// The full read workload as comparable outcomes.
  static std::vector<CallOutcome> ReadDigests(MicroblogEngine& engine,
                                              int64_t users) {
    std::vector<CallSpec> specs;
    for (int64_t uid : {int64_t{0}, users / 2, users - 1}) {
      for (CallKind kind :
           {CallKind::kFollowees, CallKind::kTweetsOfFollowees,
            CallKind::kHashtagsOfFollowees, CallKind::kCurrentInfluence,
            CallKind::kPotentialInfluence, CallKind::kRecFollowees}) {
        CallSpec spec;
        spec.kind = kind;
        spec.a = uid;
        spec.n = 1 << 30;
        specs.push_back(spec);
      }
    }
    CallSpec select;
    select.kind = CallKind::kSelectUsers;
    select.threshold = 5;
    specs.push_back(select);

    std::vector<CallOutcome> out;
    for (const CallSpec& spec : specs) {
      auto outcome = DispatchCall(engine, spec);
      EXPECT_TRUE(outcome.ok())
          << CallSpecToString(spec) << ": " << outcome.status().ToString();
      out.push_back(outcome.ok() ? *outcome : CallOutcome{});
    }
    return out;
  }

  std::filesystem::path dir_;
};

TEST_F(WalReplayTest, ReplayAfterCrashRestoresIdenticalResults) {
  Dataset dataset = SmallDataset(55);
  const int64_t users = static_cast<int64_t>(dataset.users.size());
  std::vector<CallOutcome> committed;
  {
    auto fx = OpenWritable(EngineKind::kNodestore, dataset, wal_dir());
    ASSERT_NE(fx->writer(), nullptr);
    WritableEngine* w = fx->writer();
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(w->Follow(i % users, (i * 7 + 1) % users).ok());
      if (i % 3 == 0) {
        ASSERT_TRUE(w->PostTweet(i % users, "wal #" + std::to_string(i)).ok());
      }
      if (i % 5 == 0) {
        ASSERT_TRUE(w->Unfollow(i % users, (i * 7 + 1) % users).ok());
      }
    }
    ASSERT_TRUE(w->AddMention(static_cast<int64_t>(dataset.tweets.size()),
                              users - 1)
                    .ok());
    committed = ReadDigests(*fx->engine, users);
    // Engine destroyed without any shutdown ceremony: the crash.
  }
  ASSERT_TRUE(std::filesystem::exists(wal_file()));

  // A fresh base + the surviving log must reconstruct the exact state.
  auto fx = OpenWritable(EngineKind::kNodestore, dataset, wal_dir());
  ASSERT_NE(fx->writer(), nullptr);
  EXPECT_GT(fx->writer()->delta().batches(), 0u);
  std::vector<CallOutcome> replayed = ReadDigests(*fx->engine, users);
  ASSERT_EQ(committed.size(), replayed.size());
  for (size_t i = 0; i < committed.size(); ++i) {
    EXPECT_EQ(committed[i], replayed[i]) << "read #" << i << " diverged";
  }
  // New commits continue the sequence after replay.
  EXPECT_TRUE(fx->writer()->Follow(0, users - 1).ok());
}

TEST_F(WalReplayTest, GarbageTailIsTruncatedOnReplay) {
  Dataset dataset = SmallDataset(66);
  const int64_t users = static_cast<int64_t>(dataset.users.size());
  uint64_t committed_seq = 0;
  std::vector<CallOutcome> committed;
  {
    auto fx = OpenWritable(EngineKind::kNodestore, dataset, wal_dir());
    ASSERT_NE(fx->writer(), nullptr);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(fx->writer()->Follow(i, (i + 1) % users).ok());
    }
    committed_seq = fx->writer()->delta().last_seq();
    committed = ReadDigests(*fx->engine, users);
  }
  {
    std::ofstream tail(wal_file(), std::ios::binary | std::ios::app);
    tail << "garbage bytes that are not a wal record";
  }
  auto fx = OpenWritable(EngineKind::kNodestore, dataset, wal_dir());
  ASSERT_NE(fx->writer(), nullptr);
  EXPECT_EQ(fx->writer()->delta().last_seq(), committed_seq);
  std::vector<CallOutcome> replayed = ReadDigests(*fx->engine, users);
  for (size_t i = 0; i < committed.size(); ++i) {
    EXPECT_EQ(committed[i], replayed[i]) << "read #" << i << " diverged";
  }
}

TEST_F(WalReplayTest, TornLastRecordIsDropped) {
  Dataset dataset = SmallDataset(77);
  const int64_t users = static_cast<int64_t>(dataset.users.size());
  uint64_t committed_seq = 0;
  {
    auto fx = OpenWritable(EngineKind::kNodestore, dataset, wal_dir());
    ASSERT_NE(fx->writer(), nullptr);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(fx->writer()->Follow(i, (i + 2) % users).ok());
    }
    committed_seq = fx->writer()->delta().last_seq();
  }
  // Chop into the last record: replay keeps the intact prefix.
  auto size = std::filesystem::file_size(wal_file());
  ASSERT_GT(size, 4u);
  std::filesystem::resize_file(wal_file(), size - 3);

  auto fx = OpenWritable(EngineKind::kNodestore, dataset, wal_dir());
  ASSERT_NE(fx->writer(), nullptr);
  EXPECT_EQ(fx->writer()->delta().last_seq(), committed_seq - 1);
  // The torn edge (last Follow) must NOT be visible.
  auto rows = fx->engine->FolloweesOf(7);
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE(RowsContainInt(*rows, (7 + 2) % users));
  // The intact prefix IS.
  rows = fx->engine->FolloweesOf(0);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(RowsContainInt(*rows, 2));
}

TEST_F(WalReplayTest, BitmapEngineReplaysTheSameLog) {
  Dataset dataset = SmallDataset(88);
  const int64_t users = static_cast<int64_t>(dataset.users.size());
  {
    auto fx = OpenWritable(EngineKind::kBitmap, dataset, wal_dir());
    ASSERT_NE(fx->writer(), nullptr);
    ASSERT_TRUE(fx->writer()->Follow(0, users - 1).ok());
    ASSERT_TRUE(fx->writer()->PostTweet(users - 1, "bitmap wal").ok());
  }
  auto fx = OpenWritable(EngineKind::kBitmap, dataset, wal_dir());
  ASSERT_NE(fx->writer(), nullptr);
  EXPECT_EQ(fx->writer()->delta().ops(), 2u);
  auto rows = fx->engine->FolloweesOf(0);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(RowsContainInt(*rows, users - 1));
  auto feed = fx->engine->TweetsOfFollowees(0);
  ASSERT_TRUE(feed.ok());
  EXPECT_TRUE(
      RowsContainInt(*feed, static_cast<int64_t>(dataset.tweets.size())));
}

// ----------------------------------------------------- cache coherence

/// Read caches primed before a commit must not serve stale rows after
/// it: commits bump the shared epoch domain every cached entry is
/// stamped with (cache/epoch.h).
class WriteCacheTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(WriteCacheTest, CachesInvalidateUnderChurn) {
  auto fx = OpenWritable(GetParam(), SmallDataset(99), std::string(),
                         [](EngineOptions* options) {
                           options->result_cache = true;
                           options->adjacency_cache = true;
                           options->adjacency_min_degree = 0;
                         });
  ASSERT_NE(fx->writer(), nullptr);
  const int64_t users = static_cast<int64_t>(fx->dataset.users.size());
  const int64_t src = 0, dst = users - 1;

  // Prime: run the query twice so the second execution is cache-served
  // where a cache exists.
  for (int i = 0; i < 2; ++i) {
    auto rows = fx->engine->FolloweesOf(src);
    ASSERT_TRUE(rows.ok());
    ASSERT_FALSE(RowsContainInt(*rows, dst));
  }
  ASSERT_TRUE(fx->writer()->Follow(src, dst).ok());
  auto rows = fx->engine->FolloweesOf(src);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(RowsContainInt(*rows, dst)) << "cache served a stale read";

  for (int i = 0; i < 2; ++i) {
    auto again = fx->engine->FolloweesOf(src);
    ASSERT_TRUE(again.ok());
  }
  ASSERT_TRUE(fx->writer()->Unfollow(src, dst).ok());
  rows = fx->engine->FolloweesOf(src);
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE(RowsContainInt(*rows, dst)) << "cache outlived a tombstone";
}

INSTANTIATE_TEST_SUITE_P(Engines, WriteCacheTest,
                         ::testing::Values(EngineKind::kNodestore,
                                           EngineKind::kBitmap));

// -------------------------------------------------------- cypher writes

TEST(CypherWriteTest, CreateSetDeleteRoundTrip) {
  auto fx = OpenWritable(EngineKind::kNodestore, SmallDataset(111));
  ASSERT_NE(fx->writer(), nullptr);
  auto* ns = static_cast<NodestoreEngine*>(fx->engine.get());
  cypher::CypherSession& session = ns->session();
  const int64_t users = static_cast<int64_t>(fx->dataset.users.size());
  const int64_t src = 1, dst = users - 1;

  // CREATE a follows edge declaratively; the engine read sees it.
  auto created = session.Run(
      "MATCH (a:user {uid: $a}), (b:user {uid: $b}) "
      "CREATE (a)-[:follows]->(b)",
      {{"a", Value::Int(src)}, {"b", Value::Int(dst)}});
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto rows = fx->engine->FolloweesOf(src);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(RowsContainInt(*rows, dst));

  // SET a property; Q1.1 reflects the new value immediately.
  auto set = session.Run(
      "MATCH (u:user {uid: $a}) SET u.followers_count = 100000",
      {{"a", Value::Int(src)}});
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  auto selected = fx->engine->SelectUsersByFollowerCount(99999);
  ASSERT_TRUE(selected.ok());
  EXPECT_TRUE(RowsContainInt(*selected, src));

  // DELETE the relationship; the edge is gone from the read surface.
  auto deleted = session.Run(
      "MATCH (a:user {uid: $a})-[r:follows]->(b:user {uid: $b}) DELETE r",
      {{"a", Value::Int(src)}, {"b", Value::Int(dst)}});
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  rows = fx->engine->FolloweesOf(src);
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE(RowsContainInt(*rows, dst));
}

TEST(CypherWriteTest, WriteQueryReportsSummaryRow) {
  auto fx = OpenWritable(EngineKind::kNodestore, SmallDataset(122));
  auto* ns = static_cast<NodestoreEngine*>(fx->engine.get());
  auto result = ns->session().Run(
      "MATCH (a:user {uid: 0}), (b:user {uid: 1}) "
      "CREATE (a)-[:follows]->(b)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);  // the mutation summary
}

// --------------------------------------------------------- write fsck

TEST(WriteCheckTest, CleanChurnPassesAndReadOnlyIsRefused) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("mbq_wcheck_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  Dataset dataset = SmallDataset(133);
  const int64_t users = static_cast<int64_t>(dataset.users.size());
  auto fx = OpenWritable(EngineKind::kNodestore, dataset, dir.string());
  ASSERT_NE(fx->writer(), nullptr);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(fx->writer()->Follow(i, (i + 3) % users).ok());
  }
  ASSERT_TRUE(fx->writer()->Unfollow(0, 3).ok());

  std::string wal_path = (dir / "delta.wal").string();
  auto report = CheckWritePath(*fx->engine, dataset, wal_path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->ToText();
  EXPECT_EQ(report->delta_ops_checked, 13u);
  EXPECT_EQ(report->wal_records_checked, 13u);

  // A garbage tail is an invariant violation here — checkdb reports what
  // replay-on-open would silently repair.
  {
    std::ofstream tail(wal_path, std::ios::binary | std::ios::app);
    tail << "not a wal record";
  }
  report = CheckWritePath(*fx->engine, dataset, wal_path);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  bool found_tail = false;
  for (const CheckIssue& issue : report->issues) {
    if (issue.component == "wal-tail") found_tail = true;
  }
  EXPECT_TRUE(found_tail) << report->ToText();

  // Read-only engines have no write path to check.
  nodestore::GraphDbOptions ndb;
  ndb.disk_profile = storage::DiskProfile::Instant();
  ndb.wal_enabled = false;
  nodestore::GraphDb db(ndb);
  ASSERT_TRUE(twitter::LoadIntoNodestore(dataset, &db).ok());
  EngineOptions ro;
  ro.db = &db;
  auto engine = OpenEngine(EngineKind::kNodestore, ro);
  ASSERT_TRUE(engine.ok());
  auto refused = CheckWritePath(**engine, dataset, wal_path);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsInvalidArgument());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------- cluster plane

TEST(WriteRpcTest, WriteBatchFrameIsReservedNotImplemented) {
  Dataset dataset = SmallDataset(144);
  nodestore::GraphDbOptions ndb;
  ndb.disk_profile = storage::DiskProfile::Instant();
  ndb.wal_enabled = false;
  nodestore::GraphDb db(ndb);
  ASSERT_TRUE(twitter::LoadIntoNodestore(dataset, &db).ok());
  EngineOptions options;
  options.db = &db;
  auto engine = OpenEngine(EngineKind::kNodestore, options);
  ASSERT_TRUE(engine.ok());

  rpc::HelloReply info;
  info.shard_id = 0;
  info.num_shards = 1;
  info.num_users = dataset.users.size();
  info.engine = (*engine)->name();
  ShardService service(engine->get(), info);

  store::WriteBatch batch;
  batch.Follow(1, 2);
  std::string encoded;
  store::EncodeWriteBatch(batch, &encoded);
  rpc::Frame frame;
  frame.type = static_cast<uint8_t>(rpc::MsgType::kWriteBatch);
  frame.body.assign(encoded.begin(), encoded.end());

  rpc::Frame reply = service.Handle(frame);
  ASSERT_EQ(reply.type, static_cast<uint8_t>(rpc::MsgType::kError));
  Status status = rpc::DecodeError(reply);
  EXPECT_TRUE(status.IsNotImplemented()) << status.ToString();
}

TEST(WriteRpcTest, RemoteEngineIsReadOnly) {
  Dataset dataset = SmallDataset(155);
  nodestore::GraphDbOptions ndb;
  ndb.disk_profile = storage::DiskProfile::Instant();
  ndb.wal_enabled = false;
  nodestore::GraphDb db(ndb);
  ASSERT_TRUE(twitter::LoadIntoNodestore(dataset, &db).ok());
  EngineOptions shard_options;
  shard_options.db = &db;
  auto shard_engine = OpenEngine(EngineKind::kNodestore, shard_options);
  ASSERT_TRUE(shard_engine.ok());

  rpc::HelloReply info;
  info.shard_id = 0;
  info.num_shards = 1;
  info.num_users = dataset.users.size();
  info.engine = (*shard_engine)->name();
  ShardService service(shard_engine->get(), info);
  auto server = rpc::RpcServer::Start(
      rpc::RpcServer::Options{},
      [&service](const rpc::Frame& f) { return service.Handle(f); });
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  EngineOptions remote_options;
  remote_options.shard_addresses = {"127.0.0.1:" +
                                    std::to_string((*server)->port())};
  auto remote = OpenEngine(EngineKind::kRemote, remote_options);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ((*remote)->AsWritable(), nullptr);

  CallSpec spec;
  spec.kind = CallKind::kFollow;
  spec.a = 1;
  spec.b = 2;
  auto outcome = DispatchCall(**remote, spec);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsNotImplemented());

  // Reads still work over the same connection.
  auto rows = (*remote)->FolloweesOf(0);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
}

// ------------------------------------------------------- workload mix

TEST(WriteMixTest, ChurnSuiteCarriesWriteTemplates) {
  auto churn = bench::driver::BuiltinSuite("churn");
  ASSERT_TRUE(churn.ok()) << churn.status().ToString();
  EXPECT_TRUE(bench::driver::MixHasWrites(*churn));

  auto ldbc = bench::driver::BuiltinSuite("ldbc");
  ASSERT_TRUE(ldbc.ok());
  EXPECT_FALSE(bench::driver::MixHasWrites(*ldbc));

  bool saw_post = false, saw_follow = false, saw_unfollow = false,
       saw_mention = false;
  for (const auto& entry : churn->entries) {
    if (entry.template_name == "post_tweet") saw_post = true;
    if (entry.template_name == "follow") saw_follow = true;
    if (entry.template_name == "unfollow") saw_unfollow = true;
    if (entry.template_name == "add_mention") saw_mention = true;
  }
  EXPECT_TRUE(saw_post && saw_follow && saw_unfollow && saw_mention);
}

}  // namespace
}  // namespace mbq::core
