#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/workload.h"
#include "twitter/dataset.h"
#include "util/clock.h"

namespace mbq::core {
namespace {

using common::Value;

// --------------------------------------------------------------- TopN

TEST(TopNCountsTest, OrdersByCountThenKey) {
  std::vector<std::pair<Value, int64_t>> counts{
      {Value::Int(5), 2},
      {Value::Int(1), 7},
      {Value::Int(9), 2},
      {Value::Int(3), 4},
  };
  ValueRows rows = TopNCounts(counts, 10);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0].AsInt(), 1);  // count 7
  EXPECT_EQ(rows[1][0].AsInt(), 3);  // count 4
  EXPECT_EQ(rows[2][0].AsInt(), 5);  // count 2, tie broken by key
  EXPECT_EQ(rows[3][0].AsInt(), 9);
  EXPECT_EQ(rows[0][1].AsInt(), 7);
}

TEST(TopNCountsTest, TruncatesToN) {
  std::vector<std::pair<Value, int64_t>> counts;
  for (int i = 0; i < 20; ++i) counts.emplace_back(Value::Int(i), i);
  ValueRows rows = TopNCounts(counts, 3);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1].AsInt(), 19);
  EXPECT_EQ(rows[2][1].AsInt(), 17);
}

TEST(TopNCountsTest, HandlesEmptyAndZeroN) {
  EXPECT_TRUE(TopNCounts({}, 5).empty());
  std::vector<std::pair<Value, int64_t>> counts{{Value::Int(1), 1}};
  EXPECT_TRUE(TopNCounts(counts, 0).empty());
}

TEST(SortRowsTest, LexicographicOnValues) {
  ValueRows rows{
      {Value::Int(2), Value::String("b")},
      {Value::Int(1), Value::String("z")},
      {Value::Int(2), Value::String("a")},
  };
  SortRows(&rows);
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows[1][1].AsString(), "a");
  EXPECT_EQ(rows[2][1].AsString(), "b");
}

// ----------------------------------------------------------- MeasureQuery

TEST(MeasureQueryTest, CountsRunsAndRows) {
  int calls = 0;
  auto timing = MeasureQuery(
      [&]() -> Result<uint64_t> {
        ++calls;
        return 42;
      },
      /*warmup=*/2, /*runs=*/5, nullptr);
  ASSERT_TRUE(timing.ok());
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(timing->rows, 42u);
  EXPECT_GE(timing->max_millis, timing->min_millis);
  EXPECT_GE(timing->avg_millis, 0.0);
}

TEST(MeasureQueryTest, IncludesSimulatedIoTime) {
  VirtualClock clock;
  auto timing = MeasureQuery(
      [&]() -> Result<uint64_t> {
        clock.AdvanceNanos(5'000'000);  // 5 ms of device time per run
        return 1;
      },
      0, 4, [&] { return clock.NowNanos(); });
  ASSERT_TRUE(timing.ok());
  EXPECT_GE(timing->avg_millis, 5.0);
}

TEST(MeasureQueryTest, PropagatesErrors) {
  auto timing = MeasureQuery(
      []() -> Result<uint64_t> { return Status::Aborted("boom"); }, 1, 3,
      nullptr);
  EXPECT_FALSE(timing.ok());
  EXPECT_TRUE(timing.status().IsAborted());
}

// ------------------------------------------------------ Parameter pickers

class WorkloadPickersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    twitter::DatasetSpec spec;
    spec.num_users = 400;
    spec.seed = 23;
    dataset_ = twitter::GenerateDataset(spec);
  }
  twitter::Dataset dataset_;
};

TEST_F(WorkloadPickersTest, MentionCountsMatchGroundTruth) {
  auto by_mentions = UsersByMentionCount(dataset_);
  ASSERT_FALSE(by_mentions.empty());
  // Sorted ascending by metric.
  for (size_t i = 1; i < by_mentions.size(); ++i) {
    EXPECT_LE(by_mentions[i - 1].first, by_mentions[i].first);
  }
  // Every count agrees with a direct recount.
  int64_t probe_uid = by_mentions.back().second;
  int64_t expected = 0;
  for (const auto& [tid, uid] : dataset_.mentions) {
    if (uid == probe_uid) ++expected;
  }
  EXPECT_EQ(by_mentions.back().first, expected);
}

TEST_F(WorkloadPickersTest, FollowerCountsMatchDatasetField) {
  auto by_followers = UsersByFollowerCount(dataset_);
  EXPECT_EQ(by_followers.size(), dataset_.users.size());
  EXPECT_LE(by_followers.front().first, by_followers.back().first);
}

TEST_F(WorkloadPickersTest, HashtagUseCoversAllTags) {
  auto tags = HashtagsByUse(dataset_);
  EXPECT_EQ(tags.size(), dataset_.hashtags.size());
  uint64_t total = 0;
  for (const auto& [count, tag] : tags) total += count;
  EXPECT_EQ(total, dataset_.tags.size());
}

TEST_F(WorkloadPickersTest, PickUsersInBinsRespectsRanges) {
  auto by_followees = UsersByFolloweeCount(dataset_);
  Rng rng(1);
  auto bins = PickUsersInBins(by_followees, {{0, 5}, {5, 50}, {50, 100000}},
                              3, rng);
  ASSERT_EQ(bins.size(), 3u);
  for (size_t b = 0; b < bins.size(); ++b) {
    EXPECT_LE(bins[b].size(), 3u);
    for (int64_t uid : bins[b]) {
      int64_t metric = -1;
      for (const auto& [m, id] : by_followees) {
        if (id == uid) metric = m;
      }
      ASSERT_GE(metric, 0);
      int64_t lo = b == 0 ? 0 : (b == 1 ? 5 : 50);
      int64_t hi = b == 0 ? 5 : (b == 1 ? 50 : 100000);
      EXPECT_GE(metric, lo);
      EXPECT_LT(metric, hi);
    }
  }
}

}  // namespace
}  // namespace mbq::core
