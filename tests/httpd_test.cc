#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "obs/export.h"
#include "obs/httpd.h"
#include "obs/introspect.h"
#include "obs/metrics.h"

namespace mbq::obs {
namespace {

/// Minimal blocking HTTP GET against loopback; returns the raw response
/// (status line, headers and body) or an empty string on failure.
std::string Get(uint16_t port, const std::string& request_line) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = request_line + "\r\nHost: 127.0.0.1\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

class HttpdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_.metrics = &metrics_;
    options_.queries = &queries_;
    options_.flight = &flight_;
    options_.spans = &spans_;
    auto server = StatsServer::Start(options_);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
    ASSERT_GT(server_->port(), 0);  // ephemeral port resolved
  }

  MetricsRegistry metrics_;
  QueryRegistry queries_;
  FlightRecorder flight_;
  SpanRecorder spans_;
  ServeOptions options_;
  std::unique_ptr<StatsServer> server_;
};

TEST_F(HttpdTest, IndexListsTheEndpoints) {
  std::string response = Get(server_->port(), "GET / HTTP/1.1");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("/healthz"), std::string::npos);
  EXPECT_NE(response.find("/metrics"), std::string::npos);
  EXPECT_NE(response.find("/queries"), std::string::npos);
  EXPECT_NE(response.find("/slow"), std::string::npos);
  EXPECT_NE(response.find("/trace"), std::string::npos);
  EXPECT_NE(response.find("/trace.json"), std::string::npos);
}

TEST_F(HttpdTest, MetricsAreValidPrometheusExposition) {
  metrics_.GetCounter("test.requests", "requests")->Inc(3);
  metrics_.GetHistogram("test latency!", "ns")->Record(1000);
  std::string response = Get(server_->port(), "GET /metrics HTTP/1.1");
  ASSERT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  std::string body = Body(response);
  // Counter names gain _total; every exposed name is legal.
  EXPECT_NE(body.find("test_requests_total 3"), std::string::npos);
  size_t pos = 0;
  while (pos < body.size()) {
    size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) nl = body.size();
    std::string line = body.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    std::string name = line.substr(0, line.find_first_of(" {"));
    EXPECT_TRUE(IsValidPrometheusName(name)) << "illegal name: " << name;
  }
}

TEST_F(HttpdTest, MetricsJsonIsTheSharedSnapshotPath) {
  metrics_.GetCounter("test.json", "items")->Inc(5);
  std::string body =
      Body(Get(server_->port(), "GET /metrics.json HTTP/1.1"));
  // Identical bytes to what bench --metrics-out would write for this
  // registry (modulo counters racing; nothing else writes here).
  EXPECT_EQ(body, MetricsJson(&metrics_));
  EXPECT_NE(body.find("\"test.json\""), std::string::npos);
}

TEST_F(HttpdTest, QueriesShowTheInFlightTable) {
  ActiveQueryScope scope(&queries_, "MATCH (n) RETURN n", "cypher", 2);
  std::string body = Body(Get(server_->port(), "GET /queries HTTP/1.1"));
  EXPECT_NE(body.find("MATCH (n) RETURN n"), std::string::npos);
  EXPECT_NE(body.find("\"started\": 1"), std::string::npos);
}

TEST_F(HttpdTest, SlowServesTheFlightRecorder) {
  SlowQuery slow;
  slow.query = "expensive \"query\"";
  slow.engine = "cypher";
  slow.millis = 99;
  flight_.Record(std::move(slow));
  std::string body = Body(Get(server_->port(), "GET /slow HTTP/1.1"));
  EXPECT_NE(body.find("expensive \\\"query\\\""), std::string::npos);
  EXPECT_NE(body.find("\"captured\": 1"), std::string::npos);
}

TEST_F(HttpdTest, TraceServesChromeTraceEvents) {
  spans_.Record("a query", "cypher", 1000, 500);
  std::string body = Body(Get(server_->port(), "GET /trace HTTP/1.1"));
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("a query"), std::string::npos);
}

TEST_F(HttpdTest, HealthzAnswersLiveness) {
  std::string response = Get(server_->port(), "GET /healthz HTTP/1.1");
  ASSERT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  std::string body = Body(response);
  EXPECT_NE(body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"role\": "), std::string::npos);
  EXPECT_NE(body.find("\"pid\": " + std::to_string(::getpid())),
            std::string::npos);
  EXPECT_NE(body.find("\"uptime_seconds\": "), std::string::npos);
  EXPECT_NE(body.find("\"epoch_ms\": "), std::string::npos);
}

TEST_F(HttpdTest, TraceJsonCarriesStitchableSpans) {
  spans_.Record("stitch me", "cypher", 1000, 500);
  std::string body = Body(Get(server_->port(), "GET /trace.json HTTP/1.1"));
  // Process identity for the collector...
  EXPECT_NE(body.find("\"process\": "), std::string::npos);
  EXPECT_NE(body.find("\"pid\": " + std::to_string(::getpid())),
            std::string::npos);
  EXPECT_NE(body.find("\"recorded\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"dropped\": 0"), std::string::npos);
  // ...and per-span trace identity plus the unix-timeline start.
  EXPECT_NE(body.find("\"name\": \"stitch me\""), std::string::npos);
  EXPECT_NE(body.find("\"trace_id\": "), std::string::npos);
  EXPECT_NE(body.find("\"parent_span_id\": "), std::string::npos);
  EXPECT_NE(body.find("\"start_unix_us\": "), std::string::npos);
}

TEST_F(HttpdTest, UnknownPathIs404AndNonGetIs405) {
  EXPECT_NE(Get(server_->port(), "GET /nope HTTP/1.1").find("404"),
            std::string::npos);
  EXPECT_NE(Get(server_->port(), "POST /metrics HTTP/1.1").find("405"),
            std::string::npos);
  // Query strings are ignored when routing.
  EXPECT_NE(Get(server_->port(), "GET /metrics?x=1 HTTP/1.1")
                .find("200 OK"),
            std::string::npos);
}

TEST_F(HttpdTest, CountsRequestsAndStopsIdempotently) {
  (void)Get(server_->port(), "GET / HTTP/1.1");
  (void)Get(server_->port(), "GET /metrics HTTP/1.1");
  EXPECT_GE(server_->requests_served(), 2u);
  uint16_t port = server_->port();
  server_->Stop();
  server_->Stop();  // idempotent
  EXPECT_EQ(Get(port, "GET / HTTP/1.1"), "");  // no longer listening
}

TEST(HttpdStartTest, FixedPortConflictFailsCleanly) {
  ServeOptions options;
  auto first = StatsServer::Start(options);
  ASSERT_TRUE(first.ok());
  ServeOptions conflicting;
  conflicting.port = (*first)->port();
  auto second = StatsServer::Start(conflicting);
  EXPECT_FALSE(second.ok());
}

TEST(HttpdStartTest, BadBindAddressIsRejected) {
  ServeOptions options;
  options.bind_address = "not-an-address";
  EXPECT_FALSE(StatsServer::Start(options).ok());
}

}  // namespace
}  // namespace mbq::obs
