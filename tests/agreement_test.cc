#include <gtest/gtest.h>

#include <memory>

#include "core/bitmap_engine.h"
#include "core/nodestore_engine.h"
#include "core/workload.h"
#include "twitter/loaders.h"

namespace mbq::core {
namespace {

using twitter::Dataset;
using twitter::DatasetSpec;

/// Property-style sweep: for a spread of dataset shapes and seeds, the
/// two engines — different storage layouts, different query surfaces —
/// must return identical results for the whole Table 2 workload. Any
/// divergence in chain maintenance, bitmap algebra, planner logic or
/// expression evaluation shows up here.
struct AgreementCase {
  uint64_t seed;
  uint64_t users;
  double follows_per_user;
  double mentions_per_tweet;
  double active_fraction;
  bool partition_nodestore;
};

class AgreementSweepTest : public ::testing::TestWithParam<AgreementCase> {
 protected:
  void SetUp() override {
    const AgreementCase& c = GetParam();
    DatasetSpec spec;
    spec.num_users = c.users;
    spec.follows_per_user = c.follows_per_user;
    spec.mentions_per_tweet = c.mentions_per_tweet;
    spec.active_user_fraction = c.active_fraction;
    spec.tweets_per_active_user = 5;
    spec.retweet_fraction = 0.1;
    spec.seed = c.seed;
    dataset_ = twitter::GenerateDataset(spec);

    nodestore::GraphDbOptions ndb_options;
    ndb_options.disk_profile = storage::DiskProfile::Instant();
    ndb_options.wal_enabled = false;
    ndb_options.semantic_partitioning = c.partition_nodestore;
    db_ = std::make_unique<nodestore::GraphDb>(ndb_options);
    auto nh = twitter::LoadIntoNodestore(dataset_, db_.get());
    ASSERT_TRUE(nh.ok()) << nh.status().ToString();

    bitmapstore::GraphOptions bg_options;
    bg_options.disk_profile = storage::DiskProfile::Instant();
    graph_ = std::make_unique<bitmapstore::Graph>(bg_options);
    auto bh = twitter::LoadIntoBitmapstore(dataset_, graph_.get());
    ASSERT_TRUE(bh.ok()) << bh.status().ToString();

    EngineOptions ns_options;
    ns_options.db = db_.get();
    auto ns = OpenEngine(EngineKind::kNodestore, ns_options);
    ASSERT_TRUE(ns.ok()) << ns.status().ToString();
    ns_.reset(static_cast<NodestoreEngine*>(ns->release()));

    EngineOptions bm_options;
    bm_options.graph = graph_.get();
    bm_options.handles = &*bh;
    auto bm = OpenEngine(EngineKind::kBitmap, bm_options);
    ASSERT_TRUE(bm.ok()) << bm.status().ToString();
    bm_.reset(static_cast<BitmapEngine*>(bm->release()));
  }

  void ExpectSame(Result<ValueRows> a, Result<ValueRows> b,
                  const std::string& what) {
    ASSERT_TRUE(a.ok()) << what << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << what << ": " << b.status().ToString();
    SortRows(&*a);
    SortRows(&*b);
    EXPECT_EQ(*a, *b) << what;
  }

  Dataset dataset_;
  std::unique_ptr<nodestore::GraphDb> db_;
  std::unique_ptr<bitmapstore::Graph> graph_;
  std::unique_ptr<NodestoreEngine> ns_;
  std::unique_ptr<BitmapEngine> bm_;
};

TEST_P(AgreementSweepTest, WholeWorkloadAgrees) {
  auto by_mentions = UsersByMentionCount(dataset_);
  int64_t hot = by_mentions.empty() ? 0 : by_mentions.back().second;
  auto tags = HashtagsByUse(dataset_);

  ExpectSame(ns_->SelectUsersByFollowerCount(10),
             bm_->SelectUsersByFollowerCount(10), "Q1.1");
  for (int64_t uid : {int64_t{0}, static_cast<int64_t>(dataset_.users.size()) / 2}) {
    ExpectSame(ns_->FolloweesOf(uid), bm_->FolloweesOf(uid), "Q2.1");
    ExpectSame(ns_->TweetsOfFollowees(uid), bm_->TweetsOfFollowees(uid),
               "Q2.2");
    ExpectSame(ns_->HashtagsUsedByFollowees(uid),
               bm_->HashtagsUsedByFollowees(uid), "Q2.3");
    ExpectSame(ns_->RecommendFolloweesOfFollowees(uid, 1 << 30),
               bm_->RecommendFolloweesOfFollowees(uid, 1 << 30), "Q4.1");
    ExpectSame(ns_->RecommendFollowersOfFollowees(uid, 1 << 30),
               bm_->RecommendFollowersOfFollowees(uid, 1 << 30), "Q4.2");
  }
  ExpectSame(ns_->TopCoMentionedUsers(hot, 1 << 30),
             bm_->TopCoMentionedUsers(hot, 1 << 30), "Q3.1");
  if (!tags.empty() && tags.back().first > 0) {
    ExpectSame(ns_->TopCoOccurringHashtags(tags.back().second, 1 << 30),
               bm_->TopCoOccurringHashtags(tags.back().second, 1 << 30),
               "Q3.2");
  }
  ExpectSame(ns_->CurrentInfluence(hot, 1 << 30),
             bm_->CurrentInfluence(hot, 1 << 30), "Q5.1");
  ExpectSame(ns_->PotentialInfluence(hot, 1 << 30),
             bm_->PotentialInfluence(hot, 1 << 30), "Q5.2");

  Rng rng(GetParam().seed ^ 0xABCD);
  for (int i = 0; i < 10; ++i) {
    int64_t a = rng.NextBounded(dataset_.users.size());
    int64_t b = rng.NextBounded(dataset_.users.size());
    auto la = ns_->ShortestPathLength(a, b, 3);
    auto lb = bm_->ShortestPathLength(a, b, 3);
    ASSERT_TRUE(la.ok() && lb.ok());
    EXPECT_EQ(*la, *lb) << "Q6.1 " << a << "->" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AgreementSweepTest,
    ::testing::Values(
        // Baseline shape, shared relationship store.
        AgreementCase{101, 400, 8, 1.0, 0.3, false},
        // Same data on a semantically partitioned record store.
        AgreementCase{101, 400, 8, 1.0, 0.3, true},
        // Sparse follows, mention-heavy.
        AgreementCase{202, 500, 2, 2.5, 0.5, false},
        // Dense follows, few tweets.
        AgreementCase{303, 300, 25, 0.5, 0.1, false},
        // Tiny graph (edge cases: empty neighborhoods).
        AgreementCase{404, 50, 3, 1.0, 0.4, true}));

/// Randomized differential harness: every seed derives a random dataset
/// shape, a random thread count per engine, and a stream of random query
/// invocations — the two engines must agree on all of them. A failure
/// message carries the seed, which fully reproduces the case (dataset,
/// threads and query stream are all derived from it).
class RandomDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void BuildFromSeed(uint64_t seed) {
    Rng shape_rng(seed);
    DatasetSpec spec;
    spec.num_users = 60 + shape_rng.NextBounded(340);       // 60..399
    spec.follows_per_user = 1 + shape_rng.NextBounded(20);  // 1..20
    spec.mentions_per_tweet =
        0.5 + 0.25 * static_cast<double>(shape_rng.NextBounded(9));
    spec.active_user_fraction =
        0.1 + 0.05 * static_cast<double>(shape_rng.NextBounded(10));
    spec.tweets_per_active_user = 2 + shape_rng.NextBounded(6);
    spec.retweet_fraction = 0.05 * static_cast<double>(shape_rng.NextBounded(4));
    spec.seed = seed;
    dataset_ = twitter::GenerateDataset(spec);

    nodestore::GraphDbOptions ndb_options;
    ndb_options.disk_profile = storage::DiskProfile::Instant();
    ndb_options.wal_enabled = false;
    ndb_options.semantic_partitioning = shape_rng.NextBounded(2) == 1;
    db_ = std::make_unique<nodestore::GraphDb>(ndb_options);
    auto nh = twitter::LoadIntoNodestore(dataset_, db_.get());
    ASSERT_TRUE(nh.ok()) << nh.status().ToString();

    bitmapstore::GraphOptions bg_options;
    bg_options.disk_profile = storage::DiskProfile::Instant();
    graph_ = std::make_unique<bitmapstore::Graph>(bg_options);
    auto bh = twitter::LoadIntoBitmapstore(dataset_, graph_.get());
    ASSERT_TRUE(bh.ok()) << bh.status().ToString();

    // Both read caches stay ON throughout the differential stream: every
    // repeated query mixes cached and fresh executions across the two
    // engines, so a cache replaying wrong rows diverges immediately.
    // Capacities are drawn small or default — the small draws force
    // evictions mid-stream.
    EngineOptions ns_options;
    ns_options.db = db_.get();
    ns_options.result_cache = true;
    ns_options.result_cache_capacity =
        shape_rng.NextBounded(2) == 1 ? 4 : 256;
    ns_options.adjacency_cache = true;
    ns_options.adjacency_cache_capacity =
        shape_rng.NextBounded(2) == 1 ? 8 : 4096;
    ns_options.adjacency_min_degree = shape_rng.NextBounded(2) == 1 ? 0 : 8;
    auto ns = OpenEngine(EngineKind::kNodestore, ns_options);
    ASSERT_TRUE(ns.ok()) << ns.status().ToString();
    ns_.reset(static_cast<NodestoreEngine*>(ns->release()));

    EngineOptions bm_options;
    bm_options.graph = graph_.get();
    bm_options.handles = &*bh;
    bm_options.adjacency_cache = true;
    bm_options.adjacency_cache_capacity =
        shape_rng.NextBounded(2) == 1 ? 8 : 4096;
    bm_options.adjacency_min_degree = shape_rng.NextBounded(2) == 1 ? 0 : 8;
    auto bm = OpenEngine(EngineKind::kBitmap, bm_options);
    ASSERT_TRUE(bm.ok()) << bm.status().ToString();
    bm_.reset(static_cast<BitmapEngine*>(bm->release()));

    // Each engine independently draws sequential or parallel execution,
    // so runs also cross-check parallel-vs-sequential between engines.
    const uint32_t kThreadChoices[] = {1, 2, 4};
    ns_->SetThreads(kThreadChoices[shape_rng.NextBounded(3)]);
    bm_->SetThreads(kThreadChoices[shape_rng.NextBounded(3)]);
  }

  void ExpectSame(Result<ValueRows> a, Result<ValueRows> b,
                  const std::string& what) {
    ASSERT_TRUE(a.ok()) << what << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << what << ": " << b.status().ToString();
    SortRows(&*a);
    SortRows(&*b);
    EXPECT_EQ(*a, *b) << what;
  }

  twitter::Dataset dataset_;
  std::unique_ptr<nodestore::GraphDb> db_;
  std::unique_ptr<bitmapstore::Graph> graph_;
  std::unique_ptr<NodestoreEngine> ns_;
  std::unique_ptr<BitmapEngine> bm_;
};

TEST_P(RandomDifferentialTest, RandomQueryStreamAgrees) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE("reproduce with seed=" + std::to_string(seed));
  BuildFromSeed(seed);
  if (HasFatalFailure()) return;

  auto tags = HashtagsByUse(dataset_);
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  const int64_t num_users = static_cast<int64_t>(dataset_.users.size());

  constexpr int kCallsPerSeed = 25;
  for (int call = 0; call < kCallsPerSeed; ++call) {
    SCOPED_TRACE("call #" + std::to_string(call));
    int64_t uid = static_cast<int64_t>(rng.NextBounded(num_users));
    // Small LIMITs are deliberately excluded: both engines break rank
    // ties deterministically, but a LIMIT cutting through a tie class is
    // not a disagreement. 1<<30 keeps every row comparable.
    const int64_t n = 1 << 30;
    switch (rng.NextBounded(11)) {
      case 0: {
        int64_t threshold = static_cast<int64_t>(rng.NextBounded(30));
        ExpectSame(ns_->SelectUsersByFollowerCount(threshold),
                   bm_->SelectUsersByFollowerCount(threshold), "Q1.1");
        break;
      }
      case 1:
        ExpectSame(ns_->FolloweesOf(uid), bm_->FolloweesOf(uid), "Q2.1");
        break;
      case 2:
        ExpectSame(ns_->TweetsOfFollowees(uid), bm_->TweetsOfFollowees(uid),
                   "Q2.2");
        break;
      case 3:
        ExpectSame(ns_->HashtagsUsedByFollowees(uid),
                   bm_->HashtagsUsedByFollowees(uid), "Q2.3");
        break;
      case 4:
        ExpectSame(ns_->TopCoMentionedUsers(uid, n),
                   bm_->TopCoMentionedUsers(uid, n), "Q3.1");
        break;
      case 5:
        if (!tags.empty()) {
          const std::string& tag =
              tags[rng.NextBounded(tags.size())].second;
          ExpectSame(ns_->TopCoOccurringHashtags(tag, n),
                     bm_->TopCoOccurringHashtags(tag, n), "Q3.2");
        }
        break;
      case 6:
        ExpectSame(ns_->RecommendFolloweesOfFollowees(uid, n),
                   bm_->RecommendFolloweesOfFollowees(uid, n), "Q4.1");
        break;
      case 7:
        ExpectSame(ns_->RecommendFollowersOfFollowees(uid, n),
                   bm_->RecommendFollowersOfFollowees(uid, n), "Q4.2");
        break;
      case 8:
        ExpectSame(ns_->CurrentInfluence(uid, n), bm_->CurrentInfluence(uid, n),
                   "Q5.1");
        break;
      case 9:
        ExpectSame(ns_->PotentialInfluence(uid, n),
                   bm_->PotentialInfluence(uid, n), "Q5.2");
        break;
      case 10: {
        int64_t b = static_cast<int64_t>(rng.NextBounded(num_users));
        auto la = ns_->ShortestPathLength(uid, b, 3);
        auto lb = bm_->ShortestPathLength(uid, b, 3);
        ASSERT_TRUE(la.ok() && lb.ok());
        EXPECT_EQ(*la, *lb) << "Q6.1 " << uid << "->" << b;
        break;
      }
    }
    if (HasFailure()) return;  // one reproducible failure is enough
  }
}

/// 8 seeds x 25 random calls = 200 randomized differential cases per run.
INSTANTIATE_TEST_SUITE_P(Seeds, RandomDifferentialTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull,
                                           7ull, 8ull));

}  // namespace
}  // namespace mbq::core
