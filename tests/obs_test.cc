#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mbq::obs {
namespace {

// ----------------------------------------------------------------- Counter

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.events", "events");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(CounterTest, SameNameReturnsSameCounter) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.one", "items");
  Counter* b = registry.GetCounter("test.one");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(b->value(), 3u);
}

// --------------------------------------------------------------- Histogram

TEST(HistogramTest, SmallValuesAreExact) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.small", "ns");
  // Values below 32 land in exact unit buckets.
  for (uint64_t v = 0; v < 32; ++v) h->Record(v);
  EXPECT_EQ(h->count(), 32u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 31u);
  // p50 of 0..31 sits around 16; unit buckets make this exact-ish.
  EXPECT_NEAR(h->Quantile(0.5), 16.0, 1.0);
}

TEST(HistogramTest, QuantilesOnUniformDistribution) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.uniform", "ns");
  for (uint64_t v = 1; v <= 100000; ++v) h->Record(v);
  EXPECT_EQ(h->count(), 100000u);
  EXPECT_EQ(h->min(), 1u);
  EXPECT_EQ(h->max(), 100000u);
  EXPECT_EQ(h->sum(), 100000ull * 100001ull / 2);
  // Log-linear buckets (32 per power of two) bound relative error ~3%;
  // allow 5% slack for interpolation.
  EXPECT_NEAR(h->Quantile(0.50), 50000.0, 50000.0 * 0.05);
  EXPECT_NEAR(h->Quantile(0.95), 95000.0, 95000.0 * 0.05);
  EXPECT_NEAR(h->Quantile(0.99), 99000.0, 99000.0 * 0.05);
}

TEST(HistogramTest, QuantilesOnSkewedDistribution) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.skewed", "ns");
  // 99 fast events, 1 slow outlier.
  for (int i = 0; i < 99; ++i) h->Record(10);
  h->Record(1000000);
  EXPECT_NEAR(h->Quantile(0.50), 10.0, 1.0);
  EXPECT_GE(h->Quantile(0.999), 900000.0);
  EXPECT_EQ(h->max(), 1000000u);
}

TEST(HistogramTest, ConcurrentRecordsKeepCount) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.mt", "ns");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) h->Record(t * 1000 + 17);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  EXPECT_EQ(h->min(), 17u);
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.empty", "ns");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 0u);
  EXPECT_EQ(h->Quantile(0.5), 0.0);
}

// --------------------------------------------------------------- Providers

TEST(ProviderTest, GaugesFromTwoProvidersSum) {
  MetricsRegistry registry;
  uint64_t id1 = registry.RegisterProvider(
      [](MetricsSink* sink) { sink->Gauge("cache.hits", 10, "pages"); });
  uint64_t id2 = registry.RegisterProvider(
      [](MetricsSink* sink) { sink->Gauge("cache.hits", 32, "pages"); });
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.ValueOf("cache.hits"), 42.0);
  registry.UnregisterProvider(id1);
  registry.UnregisterProvider(id2);
}

TEST(ProviderTest, UnregisterRetainsFinalValues) {
  // A torn-down component's totals stay visible: the bench --metrics-out
  // snapshot runs after the testbed is destroyed.
  MetricsRegistry registry;
  {
    ScopedProvider provider(&registry, [](MetricsSink* sink) {
      sink->Gauge("engine.reads", 7, "records");
    });
    EXPECT_EQ(registry.Snapshot().ValueOf("engine.reads"), 7.0);
  }
  EXPECT_EQ(registry.Snapshot().ValueOf("engine.reads"), 7.0);
}

TEST(ProviderTest, ScopedProviderMoveTransfersOwnership) {
  MetricsRegistry registry;
  int calls = 0;
  ScopedProvider a(&registry, [&calls](MetricsSink* sink) {
    ++calls;
    sink->Gauge("g", 1);
  });
  ScopedProvider b(std::move(a));
  registry.Snapshot();
  EXPECT_EQ(calls, 1);  // exactly one live registration
}

// ---------------------------------------------------------------- Snapshot

TEST(SnapshotTest, JsonContainsAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("c.one", "items")->Inc(5);
  registry.GetHistogram("h.lat", "ns")->Record(100);
  ScopedProvider provider(&registry, [](MetricsSink* sink) {
    sink->Gauge("g.val", 1.5, "ratio");
  });
  std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"g.val\""), std::string::npos);
  EXPECT_NE(json.find("\"h.lat\""), std::string::npos);
}

TEST(SnapshotTest, ValueOfAndHas) {
  MetricsRegistry registry;
  registry.GetCounter("present")->Inc(9);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.ValueOf("present"), 9.0);
  EXPECT_TRUE(snap.Has("present"));
  EXPECT_FALSE(snap.Has("absent"));
}

// ------------------------------------------------------------------- Trace

TEST(TraceTest, NestedSpansRecordDepthInTreeOrder) {
  TraceLog log;
  {
    TraceSpan outer(&log, "outer");
    {
      TraceSpan inner(&log, "inner");
      inner.AddItems(10);
    }
    { TraceSpan sibling(&log, "sibling"); }
    outer.AddItems(3);
  }
  ASSERT_EQ(log.spans().size(), 3u);
  EXPECT_EQ(log.spans()[0].name, "outer");
  EXPECT_EQ(log.spans()[0].depth, 0);
  EXPECT_EQ(log.spans()[0].items, 3u);
  EXPECT_EQ(log.spans()[1].name, "inner");
  EXPECT_EQ(log.spans()[1].depth, 1);
  EXPECT_EQ(log.spans()[1].items, 10u);
  EXPECT_EQ(log.spans()[2].name, "sibling");
  EXPECT_EQ(log.spans()[2].depth, 1);
  // Every span finished (duration filled in).
  for (const auto& span : log.spans()) {
    EXPECT_GE(span.duration_millis, 0.0);
  }
}

TEST(TraceTest, AppendChildNestsUnderOpenSpan) {
  TraceLog log;
  {
    TraceSpan phase(&log, "phase");
    log.AppendChild("parse", 1.5, 100);
    log.AppendChild("insert", 2.5, 100);
  }
  ASSERT_EQ(log.spans().size(), 3u);
  EXPECT_EQ(log.spans()[1].name, "parse");
  EXPECT_EQ(log.spans()[1].depth, 1);
  EXPECT_DOUBLE_EQ(log.spans()[1].duration_millis, 1.5);
  EXPECT_EQ(log.spans()[2].depth, 1);
}

TEST(TraceTest, SpanFeedsLatencyHistogram) {
  MetricsRegistry registry;
  Histogram* latency = registry.GetHistogram("test.latency", "ns");
  { TraceSpan span(latency); }
  { TraceSpan span(nullptr, "named", latency); }
  EXPECT_EQ(latency->count(), 2u);
  EXPECT_GT(latency->sum(), 0u);
}

TEST(TraceTest, TextAndJsonRenderSpans) {
  TraceLog log;
  {
    TraceSpan outer(&log, "import");
    outer.AddItems(1000);
  }
  std::string text = log.ToText();
  EXPECT_NE(text.find("import"), std::string::npos);
  EXPECT_NE(text.find("items"), std::string::npos);
  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"name\": \"import\""), std::string::npos);
  EXPECT_NE(json.find("\"items\": 1000"), std::string::npos);
}

TEST(TraceTest, ClearResetsLog) {
  TraceLog log;
  { TraceSpan span(&log, "one"); }
  log.Clear();
  EXPECT_TRUE(log.spans().empty());
  { TraceSpan span(&log, "two"); }
  ASSERT_EQ(log.spans().size(), 1u);
  EXPECT_EQ(log.spans()[0].depth, 0);
}

}  // namespace
}  // namespace mbq::obs
