#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/clock.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace mbq {
namespace {

// ------------------------------------------------------------------ Status

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::NotFound("no such node");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "no such node");
  EXPECT_EQ(st.ToString(), "NotFound: no such node");
}

TEST(StatusTest, CopyableAndCheap) {
  Status a = Status::IoError("disk");
  Status b = a;
  EXPECT_TRUE(b.IsIoError());
  EXPECT_EQ(b.message(), "disk");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Status FailingFn() { return Status::Aborted("nope"); }
Status PropagatingFn() {
  MBQ_RETURN_IF_ERROR(FailingFn());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(PropagatingFn().IsAborted());
}

// ------------------------------------------------------------------ Result

Result<int> ParseOrFail(bool fail) {
  if (fail) return Status::InvalidArgument("bad");
  return 42;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParseOrFail(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParseOrFail(true);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

Result<int> Doubled(bool fail) {
  MBQ_ASSIGN_OR_RETURN(int v, ParseOrFail(fail));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(false), 84);
  EXPECT_FALSE(Doubled(true).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r{std::make_unique<int>(5)};
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ------------------------------------------------------------------ String

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingleField) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimString("  x y\t\n"), "x y");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString("   "), "");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("4x").ok());
  EXPECT_FALSE(ParseInt64("4.2").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, CsvEscape) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, StartsWithAndLower) {
  EXPECT_TRUE(StartsWith("MATCH (u)", "MATCH"));
  EXPECT_FALSE(StartsWith("MA", "MATCH"));
  EXPECT_EQ(ToLowerAscii("MaTcH"), "match");
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// Zipf property sweep: mass concentrates on low ranks and all draws are
// in range for a spread of (n, s) configurations.
class ZipfTest : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {
};

TEST_P(ZipfTest, SamplesInRangeAndSkewed) {
  auto [n, s] = GetParam();
  ZipfSampler zipf(n, s);
  Rng rng(42);
  const int kDraws = 20000;
  uint64_t top_decile = 0;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t r = zipf.Sample(rng);
    ASSERT_LT(r, n);
    if (r < std::max<uint64_t>(1, n / 10)) ++top_decile;
  }
  // With any meaningful skew the top decile of ranks draws far more than
  // 10% of the mass.
  EXPECT_GT(top_decile, static_cast<uint64_t>(kDraws) / 5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfTest,
    ::testing::Values(std::make_tuple(uint64_t{10}, 0.8),
                      std::make_tuple(uint64_t{100}, 0.9),
                      std::make_tuple(uint64_t{100}, 1.0),
                      std::make_tuple(uint64_t{5000}, 1.0),
                      std::make_tuple(uint64_t{5000}, 1.2),
                      std::make_tuple(uint64_t{100000}, 0.9)));

TEST(ZipfTest, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, RankZeroMostFrequent) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(9);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  int max_rank = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  EXPECT_EQ(max_rank, 0);
}

// ------------------------------------------------------------------- Clock

TEST(ClockTest, VirtualClockAdvancesOnlyExplicitly) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowNanos(), 0u);
  clock.AdvanceNanos(500);
  EXPECT_EQ(clock.NowNanos(), 500u);
  clock.AdvanceNanos(250);
  EXPECT_EQ(clock.NowNanos(), 750u);
}

TEST(ClockTest, WallClockMonotonic) {
  WallClock clock;
  uint64_t a = clock.NowNanos();
  uint64_t b = clock.NowNanos();
  EXPECT_LE(a, b);
  clock.AdvanceNanos(1000000);  // no-op
  EXPECT_LE(b, clock.NowNanos() + 1000000);
}

TEST(ClockTest, StopwatchMeasuresVirtualTime) {
  VirtualClock clock;
  Stopwatch sw(clock);
  clock.AdvanceNanos(3000000);
  EXPECT_DOUBLE_EQ(sw.ElapsedMillis(), 3.0);
  sw.Restart();
  EXPECT_EQ(sw.ElapsedNanos(), 0u);
}

}  // namespace
}  // namespace mbq
