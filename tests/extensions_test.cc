#include <gtest/gtest.h>

#include <set>

#include "core/updates.h"
#include "core/bitmap_engine.h"
#include "core/nodestore_engine.h"
#include "nodestore/graph_db.h"
#include "twitter/loaders.h"
#include "twitter/stream.h"

namespace mbq {
namespace {

using common::Value;
using nodestore::Direction;
using nodestore::GraphDb;
using nodestore::GraphDbOptions;
using nodestore::NodeId;

GraphDbOptions PartitionedOptions() {
  GraphDbOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  options.wal_enabled = false;
  options.semantic_partitioning = true;
  return options;
}

// ------------------------------------- Semantic partitioning (nodestore)

class PartitionedGraphDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<GraphDb>(PartitionedOptions());
    user_ = *db_->Label("user");
    follows_ = *db_->RelType("follows");
    posts_ = *db_->RelType("posts");
    uid_ = db_->PropKey("uid");
    for (int i = 0; i < 5; ++i) {
      NodeId n = *db_->CreateNode(user_);
      EXPECT_TRUE(db_->SetNodeProperty(n, uid_, Value::Int(i)).ok());
      nodes_.push_back(n);
    }
  }

  std::unique_ptr<GraphDb> db_;
  nodestore::LabelId user_;
  nodestore::RelTypeId follows_, posts_;
  nodestore::PropKeyId uid_;
  std::vector<NodeId> nodes_;
};

TEST_F(PartitionedGraphDbTest, TypedChainsAreSeparate) {
  ASSERT_TRUE(db_->CreateRelationship(follows_, nodes_[0], nodes_[1]).ok());
  ASSERT_TRUE(db_->CreateRelationship(posts_, nodes_[0], nodes_[2]).ok());
  ASSERT_TRUE(db_->CreateRelationship(follows_, nodes_[0], nodes_[3]).ok());
  EXPECT_EQ(*db_->Degree(nodes_[0], Direction::kOutgoing, follows_), 2u);
  EXPECT_EQ(*db_->Degree(nodes_[0], Direction::kOutgoing, posts_), 1u);
  EXPECT_EQ(*db_->Degree(nodes_[0], Direction::kOutgoing, std::nullopt), 3u);
}

TEST_F(PartitionedGraphDbTest, TypedWalkSkipsOtherTypesRecords) {
  // A hub with many posts and two follows: walking follows must not read
  // the posts records.
  for (int i = 1; i < 5; ++i) {
    ASSERT_TRUE(db_->CreateRelationship(posts_, nodes_[0], nodes_[i]).ok());
    ASSERT_TRUE(db_->CreateRelationship(posts_, nodes_[0], nodes_[i]).ok());
  }
  ASSERT_TRUE(db_->CreateRelationship(follows_, nodes_[0], nodes_[1]).ok());
  db_->ResetDbHits();
  EXPECT_EQ(*db_->Degree(nodes_[0], Direction::kOutgoing, follows_), 1u);
  uint64_t partitioned_hits = db_->db_hits();

  GraphDbOptions mixed_options = PartitionedOptions();
  mixed_options.semantic_partitioning = false;
  GraphDb mixed(mixed_options);
  auto user = *mixed.Label("user");
  auto follows = *mixed.RelType("follows");
  auto posts = *mixed.RelType("posts");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(*mixed.CreateNode(user));
  for (int i = 1; i < 5; ++i) {
    ASSERT_TRUE(mixed.CreateRelationship(posts, nodes[0], nodes[i]).ok());
    ASSERT_TRUE(mixed.CreateRelationship(posts, nodes[0], nodes[i]).ok());
  }
  ASSERT_TRUE(mixed.CreateRelationship(follows, nodes[0], nodes[1]).ok());
  mixed.ResetDbHits();
  EXPECT_EQ(*mixed.Degree(nodes[0], Direction::kOutgoing, follows), 1u);
  uint64_t mixed_hits = mixed.db_hits();

  // The shared chain walks all 9 relationships; the typed chain reads the
  // group list plus one relationship.
  EXPECT_LT(partitioned_hits, mixed_hits);
}

TEST_F(PartitionedGraphDbTest, DeleteRelinksTypedChain) {
  auto r1 = *db_->CreateRelationship(follows_, nodes_[0], nodes_[1]);
  auto r2 = *db_->CreateRelationship(follows_, nodes_[0], nodes_[2]);
  auto r3 = *db_->CreateRelationship(follows_, nodes_[0], nodes_[3]);
  ASSERT_TRUE(db_->DeleteRelationship(r2).ok());
  std::set<NodeId> others;
  ASSERT_TRUE(db_->ForEachRelationship(nodes_[0], Direction::kOutgoing,
                                       follows_,
                                       [&](const GraphDb::RelInfo& rel) {
                                         others.insert(rel.other);
                                         return true;
                                       })
                  .ok());
  EXPECT_EQ(others, (std::set<NodeId>{nodes_[1], nodes_[3]}));
  ASSERT_TRUE(db_->DeleteRelationship(r1).ok());
  ASSERT_TRUE(db_->DeleteRelationship(r3).ok());
  EXPECT_EQ(*db_->Degree(nodes_[0], Direction::kOutgoing, follows_), 0u);
}

TEST_F(PartitionedGraphDbTest, DetachDeleteAcrossTypes) {
  ASSERT_TRUE(db_->CreateRelationship(follows_, nodes_[0], nodes_[1]).ok());
  ASSERT_TRUE(db_->CreateRelationship(posts_, nodes_[0], nodes_[2]).ok());
  ASSERT_TRUE(db_->CreateRelationship(follows_, nodes_[3], nodes_[0]).ok());
  EXPECT_TRUE(db_->DeleteNode(nodes_[0]).IsFailedPrecondition());
  ASSERT_TRUE(db_->DetachDeleteNode(nodes_[0]).ok());
  EXPECT_FALSE(db_->NodeExists(nodes_[0]));
  EXPECT_EQ(db_->NumRels(), 0u);
  EXPECT_EQ(*db_->Degree(nodes_[3], Direction::kOutgoing, follows_), 0u);
}

TEST_F(PartitionedGraphDbTest, DeleteNodeFreesEmptyGroups) {
  auto rel = *db_->CreateRelationship(follows_, nodes_[0], nodes_[1]);
  ASSERT_TRUE(db_->DeleteRelationship(rel).ok());
  // Groups exist but are empty; plain delete must succeed.
  EXPECT_TRUE(db_->DeleteNode(nodes_[0]).ok());
}

TEST_F(PartitionedGraphDbTest, SelfLoopInTypedChain) {
  ASSERT_TRUE(db_->CreateRelationship(follows_, nodes_[0], nodes_[0]).ok());
  int visits = 0;
  ASSERT_TRUE(db_->ForEachRelationship(nodes_[0], Direction::kBoth, follows_,
                                       [&](const GraphDb::RelInfo&) {
                                         ++visits;
                                         return true;
                                       })
                  .ok());
  EXPECT_EQ(visits, 1);
}

TEST_F(PartitionedGraphDbTest, AgreesWithSharedLayoutOnWorkload) {
  // Load the same dataset into a partitioned and a shared-store database
  // and compare a whole-workload query through the Cypher engine.
  twitter::DatasetSpec spec;
  spec.num_users = 300;
  spec.seed = 3;
  twitter::Dataset dataset = twitter::GenerateDataset(spec);

  GraphDb partitioned(PartitionedOptions());
  ASSERT_TRUE(twitter::LoadIntoNodestore(dataset, &partitioned).ok());
  GraphDbOptions mixed_options = PartitionedOptions();
  mixed_options.semantic_partitioning = false;
  GraphDb mixed(mixed_options);
  ASSERT_TRUE(twitter::LoadIntoNodestore(dataset, &mixed).ok());

  core::NodestoreEngine a(&partitioned);
  core::NodestoreEngine b(&mixed);
  for (int64_t uid : {0, 42, 299}) {
    auto ra = a.RecommendFolloweesOfFollowees(uid, 1 << 30);
    auto rb = b.RecommendFolloweesOfFollowees(uid, 1 << 30);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(*ra, *rb) << uid;
    auto ia = a.PotentialInfluence(uid, 1 << 30);
    auto ib = b.PotentialInfluence(uid, 1 << 30);
    ASSERT_TRUE(ia.ok() && ib.ok());
    EXPECT_EQ(*ia, *ib) << uid;
  }
}

// ------------------------------------------------------- Update streaming

class UpdateStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    twitter::DatasetSpec spec;
    spec.num_users = 200;
    spec.seed = 17;
    dataset_ = twitter::GenerateDataset(spec);
  }
  twitter::Dataset dataset_;
};

TEST_F(UpdateStreamTest, DeterministicFromSeed) {
  twitter::UpdateStream a(dataset_, twitter::StreamMix{}, 5);
  twitter::UpdateStream b(dataset_, twitter::StreamMix{}, 5);
  for (int i = 0; i < 500; ++i) {
    auto ea = a.Next();
    auto eb = b.Next();
    EXPECT_EQ(static_cast<int>(ea.kind), static_cast<int>(eb.kind));
    EXPECT_EQ(ea.uid, eb.uid);
    EXPECT_EQ(ea.src_uid, eb.src_uid);
    EXPECT_EQ(ea.tid, eb.tid);
  }
}

TEST_F(UpdateStreamTest, EventsAreReferentiallyConsistent) {
  twitter::UpdateStream stream(dataset_, twitter::StreamMix{}, 6);
  int64_t max_uid = static_cast<int64_t>(dataset_.users.size()) - 1;
  int64_t max_tid = static_cast<int64_t>(dataset_.tweets.size()) - 1;
  for (const auto& e : stream.Take(2000)) {
    switch (e.kind) {
      case twitter::StreamEvent::Kind::kNewUser:
        EXPECT_EQ(e.uid, max_uid + 1);
        max_uid = e.uid;
        break;
      case twitter::StreamEvent::Kind::kNewFollow:
      case twitter::StreamEvent::Kind::kUnfollow:
        EXPECT_LE(e.src_uid, max_uid);
        EXPECT_LE(e.dst_uid, max_uid);
        EXPECT_NE(e.src_uid, e.dst_uid);
        break;
      case twitter::StreamEvent::Kind::kNewTweet:
        EXPECT_EQ(e.tid, max_tid + 1);
        max_tid = e.tid;
        EXPECT_LE(e.uid, max_uid);
        break;
      case twitter::StreamEvent::Kind::kNewRetweet:
        EXPECT_EQ(e.tid, max_tid + 1);
        max_tid = e.tid;
        EXPECT_GE(e.orig_tid, 0);
        EXPECT_LT(e.orig_tid, e.tid);
        break;
      case twitter::StreamEvent::Kind::kNewMention:
        EXPECT_LE(e.tid, max_tid);
        EXPECT_LE(e.dst_uid, max_uid);
        break;
      case twitter::StreamEvent::Kind::kNewTag:
        EXPECT_LE(e.tid, max_tid);
        EXPECT_FALSE(e.text.empty());
        break;
    }
  }
}

TEST_F(UpdateStreamTest, AppliersKeepEnginesInAgreement) {
  nodestore::GraphDbOptions ndb_options;
  ndb_options.disk_profile = storage::DiskProfile::Instant();
  ndb_options.wal_enabled = true;  // exercise the transactional path
  GraphDb db(ndb_options);
  auto nh = twitter::LoadIntoNodestore(dataset_, &db);
  ASSERT_TRUE(nh.ok());
  bitmapstore::GraphOptions bg_options;
  bg_options.disk_profile = storage::DiskProfile::Instant();
  bitmapstore::Graph graph(bg_options);
  auto bh = twitter::LoadIntoBitmapstore(dataset_, &graph);
  ASSERT_TRUE(bh.ok());

  core::NodestoreUpdateApplier ns_applier(&db, *nh, dataset_);
  core::BitmapUpdateApplier bm_applier(&graph, *bh, dataset_);
  twitter::UpdateStream stream(dataset_, twitter::StreamMix{}, 9);
  for (int batch = 0; batch < 5; ++batch) {
    auto events = stream.Take(300);
    ASSERT_TRUE(ns_applier.ApplyBatch(events).ok()) << batch;
    ASSERT_TRUE(bm_applier.ApplyBatch(events).ok()) << batch;
  }
  EXPECT_EQ(ns_applier.events_applied(), 1500u);
  EXPECT_EQ(db.NumNodes(), graph.NumNodes());
  EXPECT_EQ(db.NumRels(), graph.NumEdges());

  core::NodestoreEngine ns(&db);
  core::BitmapEngine bm(&graph, *bh);
  for (int64_t uid : {0, 50, 150}) {
    auto a = ns.FolloweesOf(uid);
    auto b = bm.FolloweesOf(uid);
    ASSERT_TRUE(a.ok() && b.ok());
    core::SortRows(&*a);
    core::SortRows(&*b);
    EXPECT_EQ(*a, *b) << uid;
  }
}

TEST_F(UpdateStreamTest, ApplierRejectsUnknownReferences) {
  nodestore::GraphDbOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  options.wal_enabled = false;
  GraphDb db(options);
  auto nh = twitter::LoadIntoNodestore(dataset_, &db);
  ASSERT_TRUE(nh.ok());
  core::NodestoreUpdateApplier applier(&db, *nh, dataset_);
  twitter::StreamEvent bogus;
  bogus.kind = twitter::StreamEvent::Kind::kNewFollow;
  bogus.src_uid = 999999;
  bogus.dst_uid = 0;
  EXPECT_TRUE(applier.ApplyBatch({bogus}).IsNotFound());
}

}  // namespace
}  // namespace mbq
