#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/driver.h"
#include "bench/mix.h"
#include "bitmapstore/graph.h"
#include "core/calls.h"
#include "core/engine.h"
#include "nodestore/graph_db.h"
#include "storage/simulated_disk.h"
#include "twitter/dataset.h"
#include "twitter/loaders.h"

namespace mbq::bench::driver {
namespace {

using core::CallOutcome;
using core::CallSpec;
using core::MicroblogEngine;
using core::ParamUniverse;

/// End-to-end differential check of the built-in suites: the driver
/// issues a fixed number of requests from each suite against both
/// engines, and every recorded outcome must agree across engines and
/// with a direct (non-driver) dispatch of the same spec — extending
/// agreement_test's randomized sweep to driver-generated workloads.
class WorkloadSuiteTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kUsers = 300;
  static constexpr uint64_t kSeed = 21;

  void SetUp() override {
    twitter::DatasetSpec spec;
    spec.num_users = kUsers;
    spec.seed = kSeed;
    dataset_ = twitter::GenerateDataset(spec);
    universe_ = std::make_unique<ParamUniverse>(dataset_);

    nodestore::GraphDbOptions ndb_options;
    ndb_options.disk_profile = storage::DiskProfile::Instant();
    ndb_options.wal_enabled = false;
    db_ = std::make_unique<nodestore::GraphDb>(ndb_options);
    auto nh = twitter::LoadIntoNodestore(dataset_, db_.get());
    ASSERT_TRUE(nh.ok()) << nh.status().ToString();

    bitmapstore::GraphOptions bg_options;
    bg_options.disk_profile = storage::DiskProfile::Instant();
    graph_ = std::make_unique<bitmapstore::Graph>(bg_options);
    auto bh = twitter::LoadIntoBitmapstore(dataset_, graph_.get());
    ASSERT_TRUE(bh.ok()) << bh.status().ToString();
    bm_handles_ = *bh;

    // Writable engines so the registry's write templates (post_tweet,
    // follow, ...) dispatch too; both engines see identical write
    // streams, so cross-engine agreement still holds.
    core::EngineOptions ns_options;
    ns_options.db = db_.get();
    ns_options.enable_writes = true;
    ns_options.dataset = &dataset_;
    auto ns = core::OpenEngine(core::EngineKind::kNodestore, ns_options);
    ASSERT_TRUE(ns.ok()) << ns.status().ToString();
    nodestore_ = std::move(*ns);

    core::EngineOptions bm_options;
    bm_options.graph = graph_.get();
    bm_options.handles = &bm_handles_;
    bm_options.enable_writes = true;
    bm_options.dataset = &dataset_;
    auto bm = core::OpenEngine(core::EngineKind::kBitmap, bm_options);
    ASSERT_TRUE(bm.ok()) << bm.status().ToString();
    bitmap_ = std::move(*bm);
  }

  /// Loads the suite with every top-n widened past any tie: a small n
  /// can cut tied counts differently per engine (agreement_test avoids
  /// the same artifact the same way).
  WorkloadMix SuiteWithoutLimitTies(const std::string& name) {
    Result<WorkloadMix> suite = BuiltinSuite(name);
    EXPECT_TRUE(suite.ok());
    for (MixEntry& entry : suite->entries) entry.n = int64_t{1} << 30;
    return *suite;
  }

  /// Runs `requests` driver requests against `engine` and returns the
  /// recorded calls keyed by (client, seq) — the deterministic stream
  /// identity, independent of thread interleaving.
  std::map<std::pair<uint32_t, uint64_t>, RecordedCall> Drive(
      MicroblogEngine& engine, const WorkloadMix& mix, uint64_t requests) {
    DriverOptions options;
    options.rate_qps = 20000;  // the cap binds, not the horizon
    options.clients = 2;
    options.duration_seconds = 0;
    options.max_requests = requests;
    options.seed = kSeed;
    options.record_outcomes = true;
    LoadDriver driver(&engine, mix, *universe_, options);
    Result<DriverReport> report = driver.Run();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    std::map<std::pair<uint32_t, uint64_t>, RecordedCall> by_id;
    for (RecordedCall& call : report->calls) {
      by_id[{call.client, call.seq}] = std::move(call);
    }
    EXPECT_EQ(by_id.size(), requests);
    return by_id;
  }

  void ExpectSuiteAgreement(const std::string& suite_name,
                            uint64_t requests) {
    WorkloadMix mix = SuiteWithoutLimitTies(suite_name);
    auto on_nodestore = Drive(*nodestore_, mix, requests);
    auto on_bitmap = Drive(*bitmap_, mix, requests);
    ASSERT_EQ(on_nodestore.size(), on_bitmap.size());
    for (const auto& [id, ns_call] : on_nodestore) {
      auto it = on_bitmap.find(id);
      ASSERT_NE(it, on_bitmap.end());
      const RecordedCall& bm_call = it->second;
      // Same (seed, client, seq) must materialize the same spec on
      // both runs...
      ASSERT_EQ(core::CallSpecToString(ns_call.spec),
                core::CallSpecToString(bm_call.spec));
      // ...and both engines must agree on its outcome.
      ASSERT_TRUE(ns_call.status.ok()) << ns_call.status.ToString();
      ASSERT_TRUE(bm_call.status.ok()) << bm_call.status.ToString();
      EXPECT_TRUE(ns_call.outcome == bm_call.outcome)
          << core::CallSpecToString(ns_call.spec) << ": nodestore "
          << ns_call.outcome.rows << " rows, bitmap " << bm_call.outcome.rows
          << " rows";
      // The driver-recorded outcome matches a direct dispatch of the
      // same spec: the driver adds scheduling, not semantics.
      Result<CallOutcome> direct =
          core::DispatchCall(*bitmap_, ns_call.spec);
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();
      EXPECT_TRUE(*direct == ns_call.outcome)
          << core::CallSpecToString(ns_call.spec);
    }
  }

  twitter::Dataset dataset_;
  std::unique_ptr<ParamUniverse> universe_;
  std::unique_ptr<nodestore::GraphDb> db_;
  std::unique_ptr<bitmapstore::Graph> graph_;
  twitter::BitmapHandles bm_handles_{};
  std::unique_ptr<MicroblogEngine> nodestore_;
  std::unique_ptr<MicroblogEngine> bitmap_;
};

TEST_F(WorkloadSuiteTest, TaoSuiteAgreesAcrossEnginesAndDirectDispatch) {
  ExpectSuiteAgreement("tao", 120);
}

TEST_F(WorkloadSuiteTest, LdbcSuiteAgreesAcrossEnginesAndDirectDispatch) {
  ExpectSuiteAgreement("ldbc", 120);
}

TEST_F(WorkloadSuiteTest, SuiteWeightsShapeTheIssuedMix) {
  // With 600 draws from the tao mix, the heaviest template
  // (assoc_range, 42%) must dominate the lightest (assoc_count, 12%).
  Result<WorkloadMix> suite = BuiltinSuite("tao");
  ASSERT_TRUE(suite.ok());
  DriverOptions options;
  options.rate_qps = 50000;
  options.clients = 2;
  options.duration_seconds = 0;
  options.max_requests = 600;
  options.seed = kSeed;
  LoadDriver driver(bitmap_.get(), *suite, *universe_, options);
  Result<DriverReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::map<std::string, uint64_t> requests;
  for (const TemplateReport& tr : report->templates) {
    requests[tr.name] = tr.requests;
  }
  EXPECT_EQ(report->requests, 600u);
  EXPECT_GT(requests["assoc_range"], requests["assoc_count"]);
  EXPECT_GT(requests["assoc_range"], 600u * 30 / 100);  // ~42% expected
  EXPECT_GT(requests["assoc_count"], 0u);
}

TEST_F(WorkloadSuiteTest, DispatchCoversEveryCallKind) {
  // Every template in the registry dispatches successfully on both
  // engines with universe-drawn parameters.
  Rng rng(4);
  for (const TemplateInfo& info : Templates()) {
    MixEntry entry;
    entry.template_name = info.name;
    entry.n = int64_t{1} << 30;  // past any tie a LIMIT could cut
    CallSpec spec = MaterializeCall(entry, *universe_, rng);
    Result<CallOutcome> ns = core::DispatchCall(*nodestore_, spec);
    Result<CallOutcome> bm = core::DispatchCall(*bitmap_, spec);
    ASSERT_TRUE(ns.ok()) << info.name << ": " << ns.status().ToString();
    ASSERT_TRUE(bm.ok()) << info.name << ": " << bm.status().ToString();
    EXPECT_TRUE(*ns == *bm) << info.name;
  }
}

}  // namespace
}  // namespace mbq::bench::driver
