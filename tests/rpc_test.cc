#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "rpc/client.h"
#include "rpc/framing.h"
#include "rpc/messages.h"
#include "rpc/server.h"

namespace mbq::rpc {
namespace {

using common::Value;

// ------------------------------------------------------------- framing

TEST(Framing, BodyCodecRoundTrip) {
  std::vector<uint8_t> body;
  PutU8(&body, 7);
  PutU16(&body, 300);
  PutU32(&body, 70000);
  PutU64(&body, uint64_t{1} << 40);
  PutI64(&body, -42);
  PutString(&body, "hello");
  PutString(&body, "");

  size_t offset = 0;
  EXPECT_EQ(7, *GetU8(body, &offset));
  EXPECT_EQ(300, *GetU16(body, &offset));
  EXPECT_EQ(70000u, *GetU32(body, &offset));
  EXPECT_EQ(uint64_t{1} << 40, *GetU64(body, &offset));
  EXPECT_EQ(-42, *GetI64(body, &offset));
  EXPECT_EQ("hello", *GetString(body, &offset));
  EXPECT_EQ("", *GetString(body, &offset));
  EXPECT_EQ(body.size(), offset);
  // One byte past the end fails cleanly.
  EXPECT_TRUE(GetU8(body, &offset).status().IsCorruption());
}

TEST(Framing, FrameRoundTripThroughDecoder) {
  Frame frame;
  frame.type = static_cast<uint8_t>(MsgType::kCall);
  frame.body = {1, 2, 3, 4, 5};
  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  ASSERT_EQ(kHeaderBytes + 5, wire.size());

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame out;
  Result<bool> done = decoder.Next(&out);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  ASSERT_TRUE(*done);
  EXPECT_EQ(frame.type, out.type);
  EXPECT_EQ(frame.body, out.body);
  EXPECT_EQ(0u, decoder.buffered_bytes());
  // No second frame.
  EXPECT_FALSE(*decoder.Next(&out));
}

TEST(Framing, DecoderHandlesDribbledBytes) {
  Frame frame;
  frame.type = static_cast<uint8_t>(MsgType::kRowsReply);
  for (int i = 0; i < 100; ++i) frame.body.push_back(static_cast<uint8_t>(i));
  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  EncodeFrame(frame, &wire);  // two back-to-back frames

  FrameDecoder decoder;
  Frame out;
  int frames = 0;
  for (uint8_t byte : wire) {
    decoder.Feed(&byte, 1);
    Result<bool> done = decoder.Next(&out);
    ASSERT_TRUE(done.ok());
    if (*done) {
      EXPECT_EQ(frame.body, out.body);
      ++frames;
    }
  }
  EXPECT_EQ(2, frames);
}

TEST(Framing, HostileLengthIsRejected) {
  Frame frame;
  frame.type = 1;
  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  // Patch the length field (offset 8) to something absurd.
  uint32_t huge = kMaxBodyBytes + 1;
  std::memcpy(wire.data() + 8, &huge, sizeof(huge));

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame out;
  Result<bool> done = decoder.Next(&out);
  ASSERT_FALSE(done.ok());
  EXPECT_TRUE(done.status().IsCorruption());
  // The decoder stays poisoned even if more (valid) bytes arrive.
  std::vector<uint8_t> good;
  EncodeFrame(Frame{}, &good);
  decoder.Feed(good.data(), good.size());
  EXPECT_FALSE(decoder.Next(&out).ok());
}

TEST(Framing, BadMagicAndVersionAreRejected) {
  {
    std::vector<uint8_t> wire;
    EncodeFrame(Frame{}, &wire);
    wire[0] ^= 0xFF;  // corrupt magic
    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    Frame out;
    EXPECT_TRUE(decoder.Next(&out).status().IsCorruption());
  }
  {
    std::vector<uint8_t> wire;
    EncodeFrame(Frame{}, &wire);
    wire[4] = kProtocolVersion + 1;  // future version
    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    Frame out;
    EXPECT_TRUE(decoder.Next(&out).status().IsCorruption());
  }
  {
    std::vector<uint8_t> wire;
    EncodeFrame(Frame{}, &wire);
    wire[6] = 1;  // non-zero reserved
    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    Frame out;
    EXPECT_TRUE(decoder.Next(&out).status().IsCorruption());
  }
}

TEST(Framing, TruncatedBodyKeepsWaiting) {
  Frame frame;
  frame.type = 2;
  frame.body.assign(64, 0xAB);
  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size() - 1);  // everything but one byte
  Frame out;
  Result<bool> done = decoder.Next(&out);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(*done);  // not an error — just incomplete
  decoder.Feed(wire.data() + wire.size() - 1, 1);
  done = decoder.Next(&out);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(*done);
  EXPECT_EQ(frame.body, out.body);
}

// ------------------------------------------------------------- messages

TEST(Messages, CallRoundTrip) {
  CallRequest req;
  req.call = NavCall::kTopCoOccurringHashtags;
  req.uid = 123;
  req.arg = 10;
  req.max_hops = 3;
  req.tag = "graphs";
  Result<CallRequest> back = DecodeCall(EncodeCall(req));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(req.call, back->call);
  EXPECT_EQ(req.uid, back->uid);
  EXPECT_EQ(req.arg, back->arg);
  EXPECT_EQ(req.max_hops, back->max_hops);
  EXPECT_EQ(req.tag, back->tag);
}

TEST(Messages, RowsReplyRoundTripAllValueTypes) {
  ValueRows rows;
  rows.push_back({Value::Int(7), Value::String("seven")});
  rows.push_back({Value::Null(), Value::Bool(true), Value::Double(2.5)});
  rows.push_back({});
  Result<ValueRows> back = DecodeRowsReply(EncodeRowsReply(rows));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(rows, *back);
}

TEST(Messages, HelloReplyRoundTrip) {
  HelloReply reply;
  reply.shard_id = 3;
  reply.num_shards = 8;
  reply.partition = 2;
  reply.num_users = 1000000;
  reply.engine = "bitmap-navigation";
  Result<HelloReply> back = DecodeHelloReply(EncodeHelloReply(reply));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(reply.shard_id, back->shard_id);
  EXPECT_EQ(reply.num_shards, back->num_shards);
  EXPECT_EQ(reply.partition, back->partition);
  EXPECT_EQ(reply.num_users, back->num_users);
  EXPECT_EQ(reply.engine, back->engine);
}

TEST(Messages, ErrorRoundTripPreservesCodeAndMessage) {
  Status status = Status::NotFound("no hashtag #zzz");
  Status back = DecodeError(EncodeError(status));
  EXPECT_TRUE(back.IsNotFound());
  EXPECT_EQ(status.message(), back.message());
}

TEST(Messages, QueryRoundTrip) {
  QueryRequest req;
  req.text = "MATCH (u:user) RETURN u.uid";
  req.merge = QueryMerge::kDistinct;
  req.route_shard = 2;
  Result<QueryRequest> back = DecodeQuery(EncodeQuery(req));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(req.text, back->text);
  EXPECT_EQ(req.merge, back->merge);
  EXPECT_EQ(req.route_shard, back->route_shard);

  QueryReply reply;
  reply.columns = {"uid", "name"};
  reply.rows.push_back({Value::Int(1), Value::String("user_1")});
  Result<QueryReply> reply_back = DecodeQueryReply(EncodeQueryReply(reply));
  ASSERT_TRUE(reply_back.ok());
  EXPECT_EQ(reply.columns, reply_back->columns);
  EXPECT_EQ(reply.rows, reply_back->rows);
}

TEST(Messages, DecodeChecksFrameType) {
  Frame frame = EncodeIntReply(5);
  EXPECT_TRUE(DecodeRowsReply(frame).status().IsCorruption());
  // An error frame surfaces as the carried status, not a type mismatch.
  Frame error = EncodeError(Status::Aborted("shard shutting down"));
  EXPECT_TRUE(DecodeRowsReply(error).status().IsAborted());
}

TEST(Messages, TruncatedBodiesFailCleanly) {
  Frame frame = EncodeCall(CallRequest{});
  frame.body.resize(frame.body.size() / 2);
  EXPECT_TRUE(DecodeCall(frame).status().IsCorruption());

  ValueRows rows;
  rows.push_back({Value::String("x")});
  Frame rows_frame = EncodeRowsReply(rows);
  rows_frame.body.pop_back();
  EXPECT_TRUE(DecodeRowsReply(rows_frame).status().IsCorruption());
}

// ------------------------------------------------------------- transport

/// Echo-style test service: kCall answers with a one-row reply carrying
/// the request uid, everything else per protocol.
Frame TestHandler(const Frame& request) {
  switch (static_cast<MsgType>(request.type)) {
    case MsgType::kHello: {
      HelloReply reply;
      reply.shard_id = 0;
      reply.num_shards = 1;
      reply.engine = "rpc-test";
      return EncodeHelloReply(reply);
    }
    case MsgType::kPing:
      return EmptyFrame(MsgType::kPong);
    case MsgType::kCall: {
      Result<CallRequest> req = DecodeCall(request);
      if (!req.ok()) return EncodeError(req.status());
      ValueRows rows;
      rows.push_back({Value::Int(req->uid)});
      return EncodeRowsReply(rows);
    }
    default:
      return EncodeError(
          Status::NotImplemented("rpc-test: unhandled message type"));
  }
}

class RpcServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RpcServer::Options options;
    Result<std::unique_ptr<RpcServer>> server =
        RpcServer::Start(options, TestHandler);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  std::unique_ptr<RpcServer> server_;
};

TEST_F(RpcServerTest, HelloPingAndCallRoundTrip) {
  RpcClient::Options options;
  options.port = server_->port();
  Result<std::unique_ptr<RpcClient>> client = RpcClient::Connect(options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ("rpc-test", (*client)->server_info().engine);
  EXPECT_TRUE((*client)->Ping().ok());

  CallRequest req;
  req.uid = 99;
  Result<Frame> reply = (*client)->Call(EncodeCall(req));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  Result<ValueRows> rows = DecodeRowsReply(*reply);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(1u, rows->size());
  EXPECT_EQ(Value::Int(99), (*rows)[0][0]);
}

TEST_F(RpcServerTest, ServerSurvivesFourByteAtATimeRequests) {
  // Raw socket, dribbling the request across many tiny writes: the
  // server's per-connection decoder must reassemble it.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(1, ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr));
  ASSERT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)));

  CallRequest req;
  req.uid = 1234;
  std::vector<uint8_t> wire;
  EncodeFrame(EncodeCall(req), &wire);
  for (size_t i = 0; i < wire.size(); i += 4) {
    size_t n = std::min<size_t>(4, wire.size() - i);
    ASSERT_EQ(static_cast<ssize_t>(n), ::send(fd, wire.data() + i, n, 0));
  }
  Result<Frame> reply = ReadFrame(fd, 10000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  Result<ValueRows> rows = DecodeRowsReply(*reply);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(Value::Int(1234), (*rows)[0][0]);
  ::close(fd);
}

TEST_F(RpcServerTest, HostileFrameGetsErrorThenClose) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(1, ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr));
  ASSERT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)));

  // A header claiming a body far beyond the cap.
  std::vector<uint8_t> wire;
  EncodeFrame(Frame{}, &wire);
  uint32_t huge = 0xFFFFFFFF;
  std::memcpy(wire.data() + 8, &huge, sizeof(huge));
  ASSERT_EQ(static_cast<ssize_t>(wire.size()),
            ::send(fd, wire.data(), wire.size(), 0));

  Result<Frame> reply = ReadFrame(fd, 10000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  Status error = DecodeError(*reply);
  EXPECT_TRUE(error.IsCorruption()) << error.ToString();
  // The server hangs up after a framing violation.
  char byte;
  EXPECT_EQ(0, ::recv(fd, &byte, 1, 0));
  ::close(fd);

  // ...and keeps serving everyone else.
  RpcClient::Options options;
  options.port = server_->port();
  Result<std::unique_ptr<RpcClient>> client = RpcClient::Connect(options);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST_F(RpcServerTest, ConcurrentClients) {
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      RpcClient::Options options;
      options.port = server_->port();
      Result<std::unique_ptr<RpcClient>> client =
          RpcClient::Connect(options);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kCallsPerThread; ++i) {
        CallRequest req;
        req.uid = t * 1000 + i;
        Result<Frame> reply = (*client)->Call(EncodeCall(req));
        Result<ValueRows> rows =
            reply.ok() ? DecodeRowsReply(*reply) : reply.status();
        if (!rows.ok() || rows->size() != 1 ||
            (*rows)[0][0] != Value::Int(req.uid)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(0, failures.load());
}

TEST(RpcServer, PortConflictFailsCleanly) {
  RpcServer::Options options;
  Result<std::unique_ptr<RpcServer>> first =
      RpcServer::Start(options, TestHandler);
  ASSERT_TRUE(first.ok());
  options.port = (*first)->port();
  Result<std::unique_ptr<RpcServer>> second =
      RpcServer::Start(options, TestHandler);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsIoError()) << second.status().ToString();
}

TEST(RpcClient, ConnectToDeadPortFails) {
  // Bind-then-close to find a port that is almost certainly unused.
  RpcServer::Options options;
  Result<std::unique_ptr<RpcServer>> server =
      RpcServer::Start(options, TestHandler);
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();
  (*server)->Stop();
  server->reset();

  RpcClient::Options client_options;
  client_options.port = port;
  client_options.timeout_millis = 2000;
  Result<std::unique_ptr<RpcClient>> client =
      RpcClient::Connect(client_options);
  EXPECT_FALSE(client.ok());
}

TEST(RpcClient, ReconnectsAfterServerRestart) {
  RpcServer::Options options;
  Result<std::unique_ptr<RpcServer>> server =
      RpcServer::Start(options, TestHandler);
  ASSERT_TRUE(server.ok());
  uint16_t port = (*server)->port();

  RpcClient::Options client_options;
  client_options.port = port;
  client_options.timeout_millis = 5000;
  Result<std::unique_ptr<RpcClient>> client =
      RpcClient::Connect(client_options);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Ping().ok());

  // Restart the server on the same port; the client's next call rides
  // its one-redial retry.
  (*server)->Stop();
  server->reset();
  options.port = port;
  Result<std::unique_ptr<RpcServer>> restarted =
      RpcServer::Start(options, TestHandler);
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  EXPECT_TRUE((*client)->Ping().ok());
}

}  // namespace
}  // namespace mbq::rpc
