#include <gtest/gtest.h>

#include <set>

#include "nodestore/batch_importer.h"
#include "nodestore/graph_db.h"
#include "nodestore/record_file.h"
#include "nodestore/records.h"
#include "nodestore/traversal.h"
#include "util/rng.h"

namespace mbq::nodestore {
namespace {

using common::Value;

GraphDbOptions FastOptions() {
  GraphDbOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  options.wal_enabled = false;
  return options;
}

// ----------------------------------------------------------------- Records

TEST(RecordsTest, NodeRecordCodec) {
  NodeRecord r;
  r.in_use = true;
  r.dense = true;
  r.label = 7;
  r.first_rel = 12345;
  r.first_prop = 678;
  uint8_t buf[NodeRecord::kSize];
  r.EncodeTo(buf);
  NodeRecord d = NodeRecord::DecodeFrom(buf);
  EXPECT_TRUE(d.in_use);
  EXPECT_TRUE(d.dense);
  EXPECT_EQ(d.label, 7);
  EXPECT_EQ(d.first_rel, 12345u);
  EXPECT_EQ(d.first_prop, 678u);
}

TEST(RecordsTest, RelRecordCodec) {
  RelRecord r;
  r.in_use = true;
  r.type = 3;
  r.src = 1;
  r.dst = 2;
  r.src_prev = 10;
  r.src_next = 11;
  r.dst_prev = 12;
  r.dst_next = 13;
  r.first_prop = 14;
  uint8_t buf[RelRecord::kSize];
  r.EncodeTo(buf);
  RelRecord d = RelRecord::DecodeFrom(buf);
  EXPECT_EQ(d.type, 3);
  EXPECT_EQ(d.src, 1u);
  EXPECT_EQ(d.dst, 2u);
  EXPECT_EQ(d.src_prev, 10u);
  EXPECT_EQ(d.src_next, 11u);
  EXPECT_EQ(d.dst_prev, 12u);
  EXPECT_EQ(d.dst_next, 13u);
  EXPECT_EQ(d.first_prop, 14u);
}

TEST(RecordsTest, PropAndStringRecordCodec) {
  PropRecord p;
  p.in_use = true;
  p.tag = PropValueTag::kInt;
  p.key = 42;
  p.next = 99;
  p.payload[0] = 0xAA;
  uint8_t buf[PropRecord::kSize];
  p.EncodeTo(buf);
  PropRecord dp = PropRecord::DecodeFrom(buf);
  EXPECT_EQ(dp.tag, PropValueTag::kInt);
  EXPECT_EQ(dp.key, 42u);
  EXPECT_EQ(dp.next, 99u);
  EXPECT_EQ(dp.payload[0], 0xAA);

  StringRecord s;
  s.in_use = true;
  s.used_bytes = 5;
  s.next = 7;
  std::memcpy(s.payload, "hello", 5);
  uint8_t sbuf[StringRecord::kSize];
  s.EncodeTo(sbuf);
  StringRecord ds = StringRecord::DecodeFrom(sbuf);
  EXPECT_EQ(ds.used_bytes, 5);
  EXPECT_EQ(std::memcmp(ds.payload, "hello", 5), 0);
}

// -------------------------------------------------------------- RecordFile

TEST(RecordFileTest, AllocateReadWriteFree) {
  VirtualClock clock;
  storage::SimulatedDisk disk(storage::DiskProfile::Instant(), &clock);
  storage::BufferCache cache(&disk, storage::BufferCacheOptions{});
  nodestore::DbHitCounter hits;
  RecordFile file("test", &cache, 24, &hits);

  auto id = file.Allocate();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  uint8_t data[24];
  std::fill(data, data + 24, 0x5C);
  ASSERT_TRUE(file.Write(*id, data).ok());
  uint8_t out[24] = {};
  ASSERT_TRUE(file.Read(*id, out).ok());
  EXPECT_EQ(std::memcmp(out, data, 24), 0);
  EXPECT_EQ(hits.total(), 2u);  // one read + one write

  ASSERT_TRUE(file.Free(*id).ok());
  auto recycled = file.Allocate();
  ASSERT_TRUE(recycled.ok());
  EXPECT_EQ(*recycled, *id);
  EXPECT_EQ(file.num_records(), 1u);
}

TEST(RecordFileTest, SpansManyPages) {
  VirtualClock clock;
  storage::SimulatedDisk disk(storage::DiskProfile::Instant(), &clock);
  storage::BufferCache cache(&disk, storage::BufferCacheOptions{});
  RecordFile file("test", &cache, 64, nullptr);
  const int kCount = 1000;  // > 128 records per 8K page
  for (int i = 0; i < kCount; ++i) {
    auto id = file.Allocate();
    ASSERT_TRUE(id.ok());
    uint8_t data[64];
    std::fill(data, data + 64, static_cast<uint8_t>(i));
    ASSERT_TRUE(file.Write(*id, data).ok());
  }
  EXPECT_GT(file.pages_used(), 1u);
  for (int i = 0; i < kCount; i += 97) {
    uint8_t out[64];
    ASSERT_TRUE(file.Read(i, out).ok());
    EXPECT_EQ(out[0], static_cast<uint8_t>(i));
  }
  EXPECT_TRUE(file.Read(kCount, nullptr).IsOutOfRange());
}

// ----------------------------------------------------------------- GraphDb

class GraphDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<GraphDb>(FastOptions());
    user_ = *db_->Label("user");
    follows_ = *db_->RelType("follows");
    uid_ = db_->PropKey("uid");
    name_ = db_->PropKey("name");
  }

  NodeId MakeUser(int64_t uid) {
    NodeId node = *db_->CreateNode(user_);
    EXPECT_TRUE(db_->SetNodeProperty(node, uid_, Value::Int(uid)).ok());
    return node;
  }

  std::unique_ptr<GraphDb> db_;
  LabelId user_;
  RelTypeId follows_;
  PropKeyId uid_, name_;
};

TEST_F(GraphDbTest, CreateAndReadNode) {
  NodeId node = MakeUser(5);
  EXPECT_TRUE(db_->NodeExists(node));
  EXPECT_EQ(*db_->NodeLabel(node), user_);
  EXPECT_EQ(db_->GetNodeProperty(node, uid_)->AsInt(), 5);
  EXPECT_TRUE(db_->GetNodeProperty(node, name_)->is_null());
  EXPECT_EQ(db_->NumNodes(), 1u);
}

TEST_F(GraphDbTest, PropertyOverwriteAndRemove) {
  NodeId node = MakeUser(1);
  ASSERT_TRUE(db_->SetNodeProperty(node, name_, Value::String("alice")).ok());
  ASSERT_TRUE(db_->SetNodeProperty(node, name_, Value::String("bob")).ok());
  EXPECT_EQ(db_->GetNodeProperty(node, name_)->AsString(), "bob");
  ASSERT_TRUE(db_->SetNodeProperty(node, name_, Value::Null()).ok());
  EXPECT_TRUE(db_->GetNodeProperty(node, name_)->is_null());
  EXPECT_EQ(db_->GetNodeProperty(node, uid_)->AsInt(), 1);  // chain intact
}

TEST_F(GraphDbTest, PropertyTypes) {
  NodeId node = *db_->CreateNode(user_);
  PropKeyId b = db_->PropKey("b");
  PropKeyId d = db_->PropKey("d");
  ASSERT_TRUE(db_->SetNodeProperty(node, b, Value::Bool(true)).ok());
  ASSERT_TRUE(db_->SetNodeProperty(node, d, Value::Double(2.5)).ok());
  EXPECT_TRUE(db_->GetNodeProperty(node, b)->AsBool());
  EXPECT_DOUBLE_EQ(db_->GetNodeProperty(node, d)->AsDouble(), 2.5);
}

TEST_F(GraphDbTest, LongStringsSpillToStringStore) {
  NodeId node = *db_->CreateNode(user_);
  std::string long_text(1000, 'x');
  long_text += "END";
  ASSERT_TRUE(
      db_->SetNodeProperty(node, name_, Value::String(long_text)).ok());
  EXPECT_EQ(db_->GetNodeProperty(node, name_)->AsString(), long_text);
  // Overwrite with a short value frees the chain without corruption.
  ASSERT_TRUE(db_->SetNodeProperty(node, name_, Value::String("s")).ok());
  EXPECT_EQ(db_->GetNodeProperty(node, name_)->AsString(), "s");
}

TEST_F(GraphDbTest, RelationshipChains) {
  NodeId a = MakeUser(1);
  NodeId b = MakeUser(2);
  NodeId c = MakeUser(3);
  RelId ab = *db_->CreateRelationship(follows_, a, b);
  RelId ac = *db_->CreateRelationship(follows_, a, c);
  RelId cb = *db_->CreateRelationship(follows_, c, b);

  EXPECT_EQ(*db_->Degree(a, Direction::kOutgoing, follows_), 2u);
  EXPECT_EQ(*db_->Degree(a, Direction::kIncoming, follows_), 0u);
  EXPECT_EQ(*db_->Degree(b, Direction::kIncoming, follows_), 2u);
  EXPECT_EQ(*db_->Degree(b, Direction::kBoth, follows_), 2u);

  std::set<NodeId> from_a;
  ASSERT_TRUE(db_->ForEachRelationship(a, Direction::kOutgoing, follows_,
                                       [&](const GraphDb::RelInfo& rel) {
                                         from_a.insert(rel.other);
                                         return true;
                                       })
                  .ok());
  EXPECT_EQ(from_a, (std::set<NodeId>{b, c}));

  auto info = db_->GetRelationship(ab);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->src, a);
  EXPECT_EQ(info->dst, b);
  (void)ac;
  (void)cb;
}

TEST_F(GraphDbTest, SelfLoop) {
  NodeId a = MakeUser(1);
  RelId loop = *db_->CreateRelationship(follows_, a, a);
  EXPECT_EQ(*db_->Degree(a, Direction::kOutgoing, follows_), 1u);
  EXPECT_EQ(*db_->Degree(a, Direction::kIncoming, follows_), 1u);
  int visits = 0;
  ASSERT_TRUE(db_->ForEachRelationship(a, Direction::kBoth, follows_,
                                       [&](const GraphDb::RelInfo&) {
                                         ++visits;
                                         return true;
                                       })
                  .ok());
  EXPECT_EQ(visits, 1);  // loops visit once
  ASSERT_TRUE(db_->DeleteRelationship(loop).ok());
  EXPECT_EQ(*db_->Degree(a, Direction::kBoth, follows_), 0u);
}

TEST_F(GraphDbTest, DeleteRelationshipRelinksChain) {
  NodeId a = MakeUser(1);
  std::vector<NodeId> targets;
  std::vector<RelId> rels;
  for (int i = 0; i < 5; ++i) {
    targets.push_back(MakeUser(10 + i));
    rels.push_back(*db_->CreateRelationship(follows_, a, targets.back()));
  }
  // Delete the middle, the head and the tail of a's chain.
  ASSERT_TRUE(db_->DeleteRelationship(rels[2]).ok());
  ASSERT_TRUE(db_->DeleteRelationship(rels[4]).ok());  // chain head (newest)
  ASSERT_TRUE(db_->DeleteRelationship(rels[0]).ok());  // chain tail (oldest)
  std::set<NodeId> remaining;
  ASSERT_TRUE(db_->ForEachRelationship(a, Direction::kOutgoing, follows_,
                                       [&](const GraphDb::RelInfo& rel) {
                                         remaining.insert(rel.other);
                                         return true;
                                       })
                  .ok());
  EXPECT_EQ(remaining, (std::set<NodeId>{targets[1], targets[3]}));
  EXPECT_EQ(db_->NumRels(), 2u);
}

TEST_F(GraphDbTest, DeleteNodeRequiresDetach) {
  NodeId a = MakeUser(1);
  NodeId b = MakeUser(2);
  ASSERT_TRUE(db_->CreateRelationship(follows_, a, b).ok());
  EXPECT_TRUE(db_->DeleteNode(a).IsFailedPrecondition());
  ASSERT_TRUE(db_->DetachDeleteNode(a).ok());
  EXPECT_FALSE(db_->NodeExists(a));
  EXPECT_EQ(db_->NumRels(), 0u);
  EXPECT_EQ(*db_->Degree(b, Direction::kIncoming, follows_), 0u);
}

TEST_F(GraphDbTest, LabelScanFiltersStaleEntries) {
  NodeId a = MakeUser(1);
  NodeId b = MakeUser(2);
  ASSERT_TRUE(db_->DeleteNode(b).ok());
  std::vector<NodeId> seen;
  ASSERT_TRUE(db_->ForEachNodeWithLabel(user_, [&](NodeId id) {
                   seen.push_back(id);
                   return true;
                 })
                  .ok());
  EXPECT_EQ(seen, std::vector<NodeId>{a});
  EXPECT_EQ(db_->CountNodesWithLabel(user_), 1u);
}

TEST_F(GraphDbTest, IndexSeekAndMaintenance) {
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(MakeUser(i));
  ASSERT_TRUE(db_->CreateIndex(user_, uid_, /*unique=*/true).ok());
  EXPECT_TRUE(db_->HasIndex(user_, uid_));
  EXPECT_EQ(*db_->IndexSeek(user_, uid_, Value::Int(7)), nodes[7]);
  EXPECT_EQ(*db_->IndexSeek(user_, uid_, Value::Int(99)), kInvalidNode);

  // New node is indexed on property write.
  NodeId fresh = MakeUser(100);
  EXPECT_EQ(*db_->IndexSeek(user_, uid_, Value::Int(100)), fresh);
  // Update moves the entry.
  ASSERT_TRUE(db_->SetNodeProperty(fresh, uid_, Value::Int(101)).ok());
  EXPECT_EQ(*db_->IndexSeek(user_, uid_, Value::Int(100)), kInvalidNode);
  EXPECT_EQ(*db_->IndexSeek(user_, uid_, Value::Int(101)), fresh);
  // Delete removes the entry.
  ASSERT_TRUE(db_->DeleteNode(fresh).ok());
  EXPECT_EQ(*db_->IndexSeek(user_, uid_, Value::Int(101)), kInvalidNode);
}

TEST_F(GraphDbTest, UniqueIndexRejectsDuplicates) {
  MakeUser(1);
  MakeUser(1);  // duplicate uid before index exists
  EXPECT_TRUE(db_->CreateIndex(user_, uid_, /*unique=*/true)
                  .IsAlreadyExists());
}

TEST_F(GraphDbTest, NonUniqueIndexLookup) {
  NodeId a = MakeUser(1);
  NodeId b = MakeUser(1);
  ASSERT_TRUE(db_->CreateIndex(user_, uid_, /*unique=*/false).ok());
  auto hits = db_->IndexLookup(user_, uid_, Value::Int(1));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
  EXPECT_NE(std::find(hits->begin(), hits->end(), a), hits->end());
  EXPECT_NE(std::find(hits->begin(), hits->end(), b), hits->end());
}

TEST_F(GraphDbTest, DbHitsCount) {
  NodeId a = MakeUser(1);
  db_->ResetDbHits();
  ASSERT_TRUE(db_->GetNodeProperty(a, uid_).ok());
  EXPECT_GT(db_->db_hits(), 0u);
}

TEST_F(GraphDbTest, ComputeDenseNodes) {
  GraphDbOptions options = FastOptions();
  options.dense_node_threshold = 3;
  GraphDb db(options);
  LabelId user = *db.Label("user");
  RelTypeId follows = *db.RelType("follows");
  NodeId hub = *db.CreateNode(user);
  for (int i = 0; i < 5; ++i) {
    NodeId spoke = *db.CreateNode(user);
    ASSERT_TRUE(db.CreateRelationship(follows, hub, spoke).ok());
  }
  auto dense = db.ComputeDenseNodes();
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(*dense, 1u);
}

// ------------------------------------------------------------ Transactions

TEST_F(GraphDbTest, CommitKeepsChanges) {
  NodeId node;
  {
    auto tx = db_->BeginTx();
    node = MakeUser(1);
    ASSERT_TRUE(tx.Commit().ok());
  }
  EXPECT_TRUE(db_->NodeExists(node));
}

TEST_F(GraphDbTest, RollbackUndoesCreates) {
  NodeId before = MakeUser(0);
  uint64_t nodes_before = db_->NumNodes();
  {
    auto tx = db_->BeginTx();
    NodeId a = MakeUser(1);
    NodeId b = MakeUser(2);
    ASSERT_TRUE(db_->CreateRelationship(follows_, a, b).ok());
    // Destructor rolls back.
  }
  EXPECT_EQ(db_->NumNodes(), nodes_before);
  EXPECT_EQ(db_->NumRels(), 0u);
  EXPECT_TRUE(db_->NodeExists(before));
}

TEST_F(GraphDbTest, RollbackRestoresPropertyValues) {
  NodeId node = MakeUser(1);
  ASSERT_TRUE(db_->SetNodeProperty(node, name_, Value::String("old")).ok());
  {
    auto tx = db_->BeginTx();
    ASSERT_TRUE(db_->SetNodeProperty(node, name_, Value::String("new")).ok());
    ASSERT_TRUE(tx.Rollback().ok());
  }
  EXPECT_EQ(db_->GetNodeProperty(node, name_)->AsString(), "old");
}

TEST_F(GraphDbTest, WalRecordsSurviveSync) {
  GraphDbOptions options = FastOptions();
  options.wal_enabled = true;
  GraphDb db(options);
  LabelId user = *db.Label("user");
  {
    auto tx = db.BeginTx();
    ASSERT_TRUE(db.CreateNode(user).ok());
    ASSERT_TRUE(db.CreateNode(user).ok());
    ASSERT_TRUE(tx.Commit().ok());
  }
  EXPECT_EQ(db.NumNodes(), 2u);
}

// -------------------------------------------------------- TraversalDesc

class TraversalTest : public GraphDbTest {
 protected:
  void SetUp() override {
    GraphDbTest::SetUp();
    // 0->1, 0->2, 1->3, 2->3, 3->4
    for (int i = 0; i < 5; ++i) nodes_.push_back(MakeUser(i));
    auto follow = [&](int a, int b) {
      ASSERT_TRUE(
          db_->CreateRelationship(follows_, nodes_[a], nodes_[b]).ok());
    };
    follow(0, 1);
    follow(0, 2);
    follow(1, 3);
    follow(2, 3);
    follow(3, 4);
  }
  std::vector<NodeId> nodes_;
};

TEST_F(TraversalTest, BreadthFirstDepths) {
  TraversalDescription td(db_.get());
  td.BreadthFirst().Relationships(follows_, Direction::kOutgoing).MaxDepth(2);
  std::vector<uint32_t> depths;
  ASSERT_TRUE(td.Traverse(nodes_[0], [&](const TraversalPath& p) {
                   depths.push_back(p.depth());
                   return true;
                 })
                  .ok());
  EXPECT_EQ(depths, (std::vector<uint32_t>{0, 1, 1, 2}));  // 3 seen once
}

TEST_F(TraversalTest, EvaluateAtDepthReportsOnlyThatDepth) {
  TraversalDescription td(db_.get());
  td.BreadthFirst()
      .Relationships(follows_, Direction::kOutgoing)
      .MaxDepth(2)
      .EvaluateAtDepth(2);
  std::vector<NodeId> ends;
  ASSERT_TRUE(td.Traverse(nodes_[0], [&](const TraversalPath& p) {
                   ends.push_back(p.end());
                   return true;
                 })
                  .ok());
  EXPECT_EQ(ends, std::vector<NodeId>{nodes_[3]});
}

TEST_F(TraversalTest, UniquenessNoneEnumeratesAllPaths) {
  TraversalDescription td(db_.get());
  td.BreadthFirst()
      .Relationships(follows_, Direction::kOutgoing)
      .MaxDepth(2)
      .SetUniqueness(Uniqueness::kNone)
      .EvaluateAtDepth(2);
  int paths = 0;
  ASSERT_TRUE(td.Traverse(nodes_[0], [&](const TraversalPath&) {
                   ++paths;
                   return true;
                 })
                  .ok());
  EXPECT_EQ(paths, 2);  // 0->1->3 and 0->2->3
}

TEST_F(TraversalTest, PathsCarryRelationships) {
  TraversalDescription td(db_.get());
  td.DepthFirst().Relationships(follows_, Direction::kOutgoing);
  ASSERT_TRUE(td.Traverse(nodes_[0], [&](const TraversalPath& p) {
                   EXPECT_EQ(p.rels.size() + 1, p.nodes.size());
                   return true;
                 })
                  .ok());
}

TEST_F(TraversalTest, BidirectionalShortestPath) {
  BidirectionalShortestPath bfs(db_.get(), follows_, Direction::kOutgoing);
  auto path = bfs.Find(nodes_[0], nodes_[4]);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->size(), 4u);  // 0 -> {1|2} -> 3 -> 4
  EXPECT_EQ(path->front(), nodes_[0]);
  EXPECT_EQ(path->back(), nodes_[4]);
  // Validate every hop is a real relationship.
  for (size_t i = 0; i + 1 < path->size(); ++i) {
    bool found = false;
    ASSERT_TRUE(db_->ForEachRelationship((*path)[i], Direction::kOutgoing,
                                         follows_,
                                         [&](const GraphDb::RelInfo& rel) {
                                           if (rel.other == (*path)[i + 1]) {
                                             found = true;
                                             return false;
                                           }
                                           return true;
                                         })
                    .ok());
    EXPECT_TRUE(found) << "hop " << i;
  }
}

TEST_F(TraversalTest, BidirectionalRespectsMaxHops) {
  BidirectionalShortestPath bfs(db_.get(), follows_, Direction::kOutgoing);
  bfs.SetMaxHops(1);
  auto path = bfs.Find(nodes_[0], nodes_[4]);
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->empty());
}

TEST_F(TraversalTest, BidirectionalNoPath) {
  BidirectionalShortestPath bfs(db_.get(), follows_, Direction::kOutgoing);
  auto path = bfs.Find(nodes_[4], nodes_[0]);  // against edge direction
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->empty());
  auto self = bfs.Find(nodes_[2], nodes_[2]);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->size(), 1u);
}

}  // namespace
}  // namespace mbq::nodestore

namespace mbq::nodestore {
namespace {

// Fault injection at the engine level: cold reads that hit a failing
// device must surface IoError through every layer, and the engine must
// keep working once the device recovers.
TEST(GraphDbFaultTest, ColdReadSurfacesIoErrorAndRecovers) {
  // Reach the private disk through observable behaviour: a tiny cache
  // forces evictions, so enough churn guarantees real device reads.
  GraphDbOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  options.wal_enabled = false;
  options.cache_bytes = 16 * storage::kPageSize;
  GraphDb db(options);
  auto user = *db.Label("user");
  auto name = db.PropKey("name");
  std::vector<NodeId> nodes;
  // Enough nodes+properties to exceed the 16-page cache.
  for (int i = 0; i < 4000; ++i) {
    auto node = db.CreateNode(user);
    ASSERT_TRUE(node.ok());
    ASSERT_TRUE(db.SetNodeProperty(*node, name,
                                   common::Value::String(
                                       "user-" + std::to_string(i)))
                    .ok());
    nodes.push_back(*node);
  }
  ASSERT_TRUE(db.DropCaches().ok());
  // Without a failure everything reads back.
  for (int i = 0; i < 4000; i += 500) {
    auto v = db.GetNodeProperty(nodes[i], name);
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(v->AsString(), "user-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace mbq::nodestore

namespace mbq::nodestore {
namespace {

// ------------------------------------------------------------ WAL recovery

GraphDbOptions WalOptions() {
  GraphDbOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  options.wal_enabled = true;
  return options;
}

TEST(WalRecoveryTest, ReplaysSchemaDataAndIndexes) {
  GraphDb db(WalOptions());
  auto user = *db.Label("user");
  auto follows = *db.RelType("follows");
  auto uid = db.PropKey("uid");
  auto bio = db.PropKey("bio");
  std::vector<NodeId> nodes;
  {
    auto tx = db.BeginTx();
    for (int i = 0; i < 10; ++i) {
      NodeId n = *db.CreateNode(user);
      ASSERT_TRUE(db.SetNodeProperty(n, uid, common::Value::Int(i)).ok());
      nodes.push_back(n);
    }
    for (int i = 0; i < 9; ++i) {
      ASSERT_TRUE(
          db.CreateRelationship(follows, nodes[i], nodes[i + 1]).ok());
    }
    ASSERT_TRUE(db.SetNodeProperty(nodes[3], bio,
                                   common::Value::String(
                                       std::string(500, 'b')))
                    .ok());
    ASSERT_TRUE(tx.Commit().ok());
  }
  ASSERT_TRUE(db.CreateIndex(user, uid, /*unique=*/true).ok());

  GraphDb recovered(WalOptions());
  ASSERT_TRUE(db.RecoverInto(&recovered).ok());
  EXPECT_EQ(recovered.NumNodes(), db.NumNodes());
  EXPECT_EQ(recovered.NumRels(), db.NumRels());
  auto r_user = recovered.FindLabel("user");
  ASSERT_TRUE(r_user.ok());
  EXPECT_TRUE(recovered.HasIndex(*r_user, *recovered.FindPropKey("uid")));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(recovered.GetNodeProperty(nodes[i], uid)->AsInt(), i) << i;
  }
  EXPECT_EQ(recovered.GetNodeProperty(nodes[3], bio)->AsString(),
            std::string(500, 'b'));
  EXPECT_EQ(*recovered.Degree(nodes[4], Direction::kBoth, follows), 2u);
  // Index works on the recovered database.
  EXPECT_EQ(*recovered.IndexSeek(*r_user, *recovered.FindPropKey("uid"),
                                 common::Value::Int(7)),
            nodes[7]);
}

TEST(WalRecoveryTest, UnsyncedTailIsLost) {
  GraphDb db(WalOptions());
  auto user = *db.Label("user");
  NodeId durable = *db.CreateNode(user);  // auto-commit: synced
  {
    auto tx = db.BeginTx();
    NodeId pending = *db.CreateNode(user);  // appended, not yet synced
    // "Crash" now: recovery sees only the durable prefix.
    GraphDb crashed(WalOptions());
    ASSERT_TRUE(db.RecoverInto(&crashed).ok());
    EXPECT_TRUE(crashed.NodeExists(durable));
    EXPECT_FALSE(crashed.NodeExists(pending));
    EXPECT_EQ(crashed.NumNodes(), 1u);
    // Commit makes it durable; recovery now sees it.
    ASSERT_TRUE(tx.Commit().ok());
    GraphDb recovered(WalOptions());
    ASSERT_TRUE(db.RecoverInto(&recovered).ok());
    EXPECT_TRUE(recovered.NodeExists(pending));
    EXPECT_EQ(recovered.NumNodes(), 2u);
  }
}

TEST(WalRecoveryTest, DeletesAndReuseReplayDeterministically) {
  GraphDb db(WalOptions());
  auto user = *db.Label("user");
  auto follows = *db.RelType("follows");
  auto uid = db.PropKey("uid");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(*db.CreateNode(user));
    ASSERT_TRUE(
        db.SetNodeProperty(nodes[i], uid, common::Value::Int(i)).ok());
  }
  RelId r01 = *db.CreateRelationship(follows, nodes[0], nodes[1]);
  ASSERT_TRUE(db.CreateRelationship(follows, nodes[1], nodes[2]).ok());
  ASSERT_TRUE(db.DeleteRelationship(r01).ok());
  // Freed rel id gets recycled; freed node id too.
  ASSERT_TRUE(db.DetachDeleteNode(nodes[5]).ok());
  ASSERT_TRUE(db.CreateRelationship(follows, nodes[2], nodes[3]).ok());
  NodeId reborn = *db.CreateNode(user);
  ASSERT_TRUE(db.SetNodeProperty(reborn, uid, common::Value::Int(99)).ok());

  GraphDb recovered(WalOptions());
  ASSERT_TRUE(db.RecoverInto(&recovered).ok());
  EXPECT_EQ(recovered.NumNodes(), db.NumNodes());
  EXPECT_EQ(recovered.NumRels(), db.NumRels());
  EXPECT_EQ(recovered.GetNodeProperty(reborn, uid)->AsInt(), 99);
  EXPECT_EQ(*recovered.Degree(nodes[0], Direction::kBoth, follows), 0u);
  EXPECT_EQ(*recovered.Degree(nodes[2], Direction::kBoth, follows), 2u);
}

TEST(WalRecoveryTest, RejectsNonEmptyTarget) {
  GraphDb db(WalOptions());
  ASSERT_TRUE(db.Label("user").ok());
  GraphDb target(WalOptions());
  ASSERT_TRUE(target.Label("other").ok());
  EXPECT_TRUE(db.RecoverInto(&target).IsFailedPrecondition());
}

// Randomized crash-consistency sweep: random op sequences, then replay
// and compare observable state.
class WalRecoveryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalRecoveryPropertyTest, ReplayMatchesOriginal) {
  mbq::Rng rng(GetParam());
  GraphDb db(WalOptions());
  auto user = *db.Label("user");
  auto follows = *db.RelType("follows");
  auto uid = db.PropKey("uid");
  std::vector<NodeId> live_nodes;
  std::vector<RelId> live_rels;

  for (int op = 0; op < 400; ++op) {
    uint64_t roll = rng.NextBounded(100);
    if (roll < 35 || live_nodes.size() < 2) {
      NodeId n = *db.CreateNode(user);
      ASSERT_TRUE(db.SetNodeProperty(n, uid,
                                     common::Value::Int(
                                         static_cast<int64_t>(op)))
                      .ok());
      live_nodes.push_back(n);
    } else if (roll < 70) {
      NodeId a = live_nodes[rng.NextBounded(live_nodes.size())];
      NodeId b = live_nodes[rng.NextBounded(live_nodes.size())];
      live_rels.push_back(*db.CreateRelationship(follows, a, b));
    } else if (roll < 85 && !live_rels.empty()) {
      size_t pick = rng.NextBounded(live_rels.size());
      ASSERT_TRUE(db.DeleteRelationship(live_rels[pick]).ok());
      live_rels[pick] = live_rels.back();
      live_rels.pop_back();
    } else {
      NodeId n = live_nodes[rng.NextBounded(live_nodes.size())];
      ASSERT_TRUE(db.SetNodeProperty(n, uid,
                                     common::Value::Int(
                                         static_cast<int64_t>(roll)))
                      .ok());
    }
  }

  GraphDb recovered(WalOptions());
  ASSERT_TRUE(db.RecoverInto(&recovered).ok());
  ASSERT_EQ(recovered.NumNodes(), db.NumNodes());
  ASSERT_EQ(recovered.NumRels(), db.NumRels());
  for (NodeId n : live_nodes) {
    ASSERT_EQ(recovered.NodeExists(n), db.NodeExists(n)) << n;
    if (!db.NodeExists(n)) continue;
    EXPECT_EQ(recovered.GetNodeProperty(n, uid)->AsInt(),
              db.GetNodeProperty(n, uid)->AsInt())
        << n;
    EXPECT_EQ(*recovered.Degree(n, Direction::kBoth, follows),
              *db.Degree(n, Direction::kBoth, follows))
        << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalRecoveryPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace mbq::nodestore
