#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "common/csv.h"
#include "common/value.h"

namespace mbq::common {
namespace {

// ------------------------------------------------------------------- Value

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(3).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
}

TEST(ValueTest, NumbersCompareAcrossIntAndDouble) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.0).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, CrossTypeOrderIsTotal) {
  // null < bool < number < string
  EXPECT_LT(Value::Null().Compare(Value::Bool(false)), 0);
  EXPECT_LT(Value::Bool(true).Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(99).Compare(Value::String("")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-4).ToString(), "-4");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(ValueTest, ToNumber) {
  EXPECT_DOUBLE_EQ(*Value::Int(3).ToNumber(), 3.0);
  EXPECT_DOUBLE_EQ(*Value::Double(2.5).ToNumber(), 2.5);
  EXPECT_FALSE(Value::String("3").ToNumber().ok());
  EXPECT_FALSE(Value::Null().ToNumber().ok());
}

TEST(ValueTest, StorageBytes) {
  EXPECT_EQ(Value::Int(1).StorageBytes(), 8u);
  EXPECT_EQ(Value::String("abcd").StorageBytes(), 8u);  // 4 + length
}

// --------------------------------------------------------------------- CSV

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mbq_csv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, ReadsSimpleRows) {
  WriteFile("a.csv", "x,y\n1,2\n3,4\n");
  auto reader = CsvReader::Open(Path("a.csv"));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->header(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(*reader->ColumnIndex("y"), 1u);
  EXPECT_FALSE(reader->ColumnIndex("z").ok());
  std::vector<std::string> row;
  ASSERT_TRUE(reader->NextRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"1", "2"}));
  ASSERT_TRUE(reader->NextRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"3", "4"}));
  EXPECT_FALSE(reader->NextRow(&row));
  EXPECT_TRUE(reader->status().ok());
  EXPECT_EQ(reader->rows_read(), 2u);
}

TEST_F(CsvTest, HandlesQuotedFields) {
  WriteFile("q.csv",
            "id,text\n1,\"hello, world\"\n2,\"say \"\"hi\"\"\"\n3,\"a\nb\"\n");
  auto reader = CsvReader::Open(Path("q.csv"));
  ASSERT_TRUE(reader.ok());
  std::vector<std::string> row;
  ASSERT_TRUE(reader->NextRow(&row));
  EXPECT_EQ(row[1], "hello, world");
  ASSERT_TRUE(reader->NextRow(&row));
  EXPECT_EQ(row[1], "say \"hi\"");
  ASSERT_TRUE(reader->NextRow(&row));
  EXPECT_EQ(row[1], "a\nb");
}

TEST_F(CsvTest, HandlesCrLf) {
  WriteFile("crlf.csv", "a,b\r\n1,2\r\n");
  auto reader = CsvReader::Open(Path("crlf.csv"));
  ASSERT_TRUE(reader.ok());
  std::vector<std::string> row;
  ASSERT_TRUE(reader->NextRow(&row));
  EXPECT_EQ(row, (std::vector<std::string>{"1", "2"}));
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  WriteFile("bad.csv", "a,b\n1,2,3\n");
  auto reader = CsvReader::Open(Path("bad.csv"));
  ASSERT_TRUE(reader.ok());
  std::vector<std::string> row;
  EXPECT_FALSE(reader->NextRow(&row));
  EXPECT_FALSE(reader->status().ok());
}

TEST_F(CsvTest, MissingFileFails) {
  EXPECT_TRUE(CsvReader::Open(Path("nope.csv")).status().IsIoError());
}

TEST_F(CsvTest, WriterRoundTrip) {
  auto writer = CsvWriter::Create(Path("w.csv"), {"id", "text"});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->WriteRow({"1", "plain"}).ok());
  ASSERT_TRUE(writer->WriteRow({"2", "with,comma"}).ok());
  ASSERT_TRUE(writer->WriteRow({"3", "with \"quotes\""}).ok());
  EXPECT_FALSE(writer->WriteRow({"too", "many", "fields"}).ok());
  ASSERT_TRUE(writer->Flush().ok());
  EXPECT_EQ(writer->rows_written(), 3u);

  auto reader = CsvReader::Open(Path("w.csv"));
  ASSERT_TRUE(reader.ok());
  std::vector<std::string> row;
  ASSERT_TRUE(reader->NextRow(&row));
  EXPECT_EQ(row[1], "plain");
  ASSERT_TRUE(reader->NextRow(&row));
  EXPECT_EQ(row[1], "with,comma");
  ASSERT_TRUE(reader->NextRow(&row));
  EXPECT_EQ(row[1], "with \"quotes\"");
}

}  // namespace
}  // namespace mbq::common

#include "common/value_codec.h"

namespace mbq::common {
namespace {

TEST(ValueCodecTest, RoundTripsAllTypes) {
  std::vector<Value> values{
      Value::Null(),         Value::Bool(true),
      Value::Bool(false),    Value::Int(-123456789),
      Value::Int(0),         Value::Double(3.25),
      Value::String(""),     Value::String("hello world"),
      Value::String(std::string(10000, 'z')),
  };
  std::vector<uint8_t> buf;
  for (const Value& v : values) EncodeValue(v, &buf);
  size_t offset = 0;
  for (const Value& expected : values) {
    auto decoded = DecodeValue(buf, &offset);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->Compare(expected), 0) << expected.ToString();
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(ValueCodecTest, RejectsTruncation) {
  std::vector<uint8_t> buf;
  EncodeValue(Value::String("hello"), &buf);
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    std::vector<uint8_t> trunc(buf.begin(), buf.end() - cut);
    size_t offset = 0;
    EXPECT_FALSE(DecodeValue(trunc, &offset).ok()) << cut;
  }
}

TEST(ValueCodecTest, RejectsBadTag) {
  std::vector<uint8_t> buf{0xEE};
  size_t offset = 0;
  EXPECT_TRUE(DecodeValue(buf, &offset).status().IsCorruption());
}

}  // namespace
}  // namespace mbq::common
