// Tests for the semantic analyzer and query linter (cypher/semantic.h):
// one accepting and one rejecting case per lint rule, strict-mode
// enforcement in the session, and the diagnostics surfaced through the
// LINT verb and PROFILE/EXPLAIN output.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cypher/diag.h"
#include "cypher/parser.h"
#include "cypher/semantic.h"
#include "cypher/session.h"
#include "obs/metrics.h"
#include "twitter/dataset.h"
#include "twitter/loaders.h"
#include "util/logging.h"

namespace mbq::cypher {
namespace {

nodestore::GraphDb* SharedDb() {
  static nodestore::GraphDb* db = [] {
    nodestore::GraphDbOptions options;
    options.disk_profile = storage::DiskProfile::Instant();
    options.wal_enabled = false;
    auto* d = new nodestore::GraphDb(options);
    twitter::DatasetSpec spec;
    spec.num_users = 60;
    spec.retweet_fraction = 0.2;
    auto handles = twitter::LoadIntoNodestore(twitter::GenerateDataset(spec), d);
    MBQ_CHECK(handles.ok());
    return d;
  }();
  return db;
}

AnalysisResult Analyze(const std::string& text) {
  auto query = ParseQuery(text);
  MBQ_CHECK(query.ok());
  return AnalyzeQuery(*query, SharedDb());
}

/// First diagnostic with `rule`, or null.
const Diagnostic* FindRule(const AnalysisResult& result,
                           const std::string& rule) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

// --------------------------------------------------------------- Rules

TEST(SemanticTest, UnknownLabelNamesNearestValidLabel) {
  auto result = Analyze("MATCH (u:usr) RETURN u.uid");
  const Diagnostic* d = FindRule(result, "unknown-label");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("did you mean 'user'"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("never produce rows"), std::string::npos);
  EXPECT_TRUE(d->span.known());

  EXPECT_EQ(FindRule(Analyze("MATCH (u:user) RETURN u.uid"), "unknown-label"),
            nullptr);
}

TEST(SemanticTest, UnknownRelType) {
  auto result =
      Analyze("MATCH (a:user {uid: 1})-[:folows]->(b:user) RETURN b.uid");
  const Diagnostic* d = FindRule(result, "unknown-rel-type");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("did you mean 'follows'"), std::string::npos)
      << d->message;

  EXPECT_EQ(
      FindRule(Analyze("MATCH (a:user {uid: 1})-[:follows]->(b:user) "
                       "RETURN b.uid"),
               "unknown-rel-type"),
      nullptr);
}

TEST(SemanticTest, UndefinedVariable) {
  auto result = Analyze("MATCH (u:user {uid: 1}) WHERE x.uid = 2 RETURN u.uid");
  const Diagnostic* d = FindRule(result, "undefined-variable");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("'x'"), std::string::npos) << d->message;

  EXPECT_EQ(FindRule(Analyze("MATCH (u:user {uid: 1}) WHERE u.uid = 2 "
                             "RETURN u.uid"),
                     "undefined-variable"),
            nullptr);
}

TEST(SemanticTest, TypeMismatchOnImpossibleComparison) {
  auto result =
      Analyze("MATCH (u:user {uid: 1}) WHERE u.uid = 2 AND 1 = 'one' "
              "RETURN u.uid");
  const Diagnostic* d = FindRule(result, "type-mismatch");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("can never be true"), std::string::npos);

  // Properties and parameters are kAny: comparing them never warns.
  EXPECT_EQ(FindRule(Analyze("MATCH (u:user {uid: 1}) WHERE u.uid = 'abc' "
                             "RETURN u.uid"),
                     "type-mismatch"),
            nullptr);
}

TEST(SemanticTest, AggregateInWhere) {
  auto result =
      Analyze("MATCH (u:user {uid: 1}) WHERE count(u) > 1 RETURN u.uid");
  const Diagnostic* d = FindRule(result, "aggregate-in-where");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);

  EXPECT_EQ(FindRule(Analyze("MATCH (u:user) RETURN count(u)"),
                     "aggregate-in-where"),
            nullptr);
}

TEST(SemanticTest, UnknownProperty) {
  auto result = Analyze("MATCH (u:user {uid: 1}) RETURN u.nonexistent");
  const Diagnostic* d = FindRule(result, "unknown-property");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("nonexistent"), std::string::npos);

  EXPECT_EQ(FindRule(Analyze("MATCH (u:user {uid: 1}) RETURN u.screen_name"),
                     "unknown-property"),
            nullptr);
}

TEST(SemanticTest, FullScanOnUnindexedFilter) {
  auto result = Analyze("MATCH (u:user {screen_name: 'x'}) RETURN u.uid");
  const Diagnostic* d = FindRule(result, "full-scan-no-index");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("CREATE INDEX on :user(screen_name)"),
            std::string::npos)
      << d->message;

  // uid is indexed and inline: the planner seeks, no warning.
  EXPECT_EQ(FindRule(Analyze("MATCH (u:user {uid: 5}) RETURN u.uid"),
                     "full-scan-no-index"),
            nullptr);
}

TEST(SemanticTest, FullScanWhenIndexedKeyOnlyInWhere) {
  // The planner only seeks inline property maps — an equivalent WHERE
  // filter scans, and the linter says how to rewrite it.
  auto result = Analyze("MATCH (u:user) WHERE u.uid = 5 RETURN u.uid");
  const Diagnostic* d = FindRule(result, "full-scan-no-index");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("inline property maps"), std::string::npos)
      << d->message;
}

TEST(SemanticTest, FullScanOnUnlabelledAnchor) {
  auto result = Analyze("MATCH (n {uid: 5}) RETURN n.uid");
  const Diagnostic* d = FindRule(result, "full-scan-no-index");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("unlabelled"), std::string::npos) << d->message;
}

TEST(SemanticTest, CartesianProduct) {
  auto result = Analyze(
      "MATCH (a:user {uid: 1}), (t:tweet {tid: 2}) RETURN a.uid, t.tid");
  const Diagnostic* d = FindRule(result, "cartesian-product");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);

  // Sharing a variable connects the parts.
  EXPECT_EQ(FindRule(Analyze("MATCH (a:user {uid: 1})-[:posts]->(t:tweet), "
                             "(t)-[:tags]->(h:hashtag) "
                             "RETURN h.tag"),
                     "cartesian-product"),
            nullptr);
}

TEST(SemanticTest, UnboundedVarlengthPath) {
  auto result = Analyze(
      "MATCH (a:user {uid: 1})-[:follows*]->(b:user) RETURN b.uid");
  const Diagnostic* d = FindRule(result, "unbounded-varlength-path");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("*..k"), std::string::npos) << d->message;

  EXPECT_EQ(FindRule(Analyze("MATCH (a:user {uid: 1})-[:follows*1..2]->"
                             "(b:user) RETURN b.uid"),
                     "unbounded-varlength-path"),
            nullptr);
}

TEST(SemanticTest, ShortestPathIsNotUnbounded) {
  // BFS stops at the first hit; an open upper bound is fine there.
  auto result = Analyze(
      "MATCH p = shortestPath((a:user {uid: 1})-[:follows*]->"
      "(b:user {uid: 2})) RETURN length(p)");
  EXPECT_EQ(FindRule(result, "unbounded-varlength-path"), nullptr);
}

TEST(SemanticTest, UnusedBinding) {
  auto result = Analyze(
      "MATCH (u:user {uid: 1})-[:follows]->(f:user) RETURN u.uid");
  const Diagnostic* d = FindRule(result, "unused-binding");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kHint);
  EXPECT_NE(d->message.find("'f'"), std::string::npos) << d->message;

  EXPECT_EQ(FindRule(Analyze("MATCH (u:user {uid: 1})-[:follows]->(f:user) "
                             "RETURN u.uid, f.uid"),
                     "unused-binding"),
            nullptr);
}

TEST(SemanticTest, NullDbSkipsSchemaRules) {
  auto query = ParseQuery("MATCH (u:usr) RETURN u.uid");
  ASSERT_TRUE(query.ok());
  auto result = AnalyzeQuery(*query, nullptr);
  EXPECT_EQ(FindRule(result, "unknown-label"), nullptr);
  // Pure rules still run.
  auto unused = ParseQuery("MATCH (u:user)-[:follows]->(f) RETURN u.uid");
  ASSERT_TRUE(unused.ok());
  EXPECT_NE(FindRule(AnalyzeQuery(*unused, nullptr), "unused-binding"),
            nullptr);
}

// ----------------------------------------------------------- Utilities

TEST(SemanticTest, NearestNameFindsCloseMatch) {
  EXPECT_EQ(NearestName("usr", {"user", "tweet", "hashtag"}), "user");
  EXPECT_EQ(NearestName("Tweet", {"user", "tweet"}), "tweet");
  EXPECT_EQ(NearestName("zzzzzz", {"user", "tweet"}), "");
}

TEST(SemanticTest, InferExprTypeBasics) {
  auto query = ParseQuery(
      "MATCH (u:user)-[r:follows]->(f:user) "
      "WHERE u.uid > 1 RETURN count(u), length(u)");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(InferExprType(*query->where->children[0], *query), InferredType::kAny);
  EXPECT_EQ(InferExprType(*query->where, *query), InferredType::kBool);
  EXPECT_EQ(InferExprType(*query->return_items[0].expr, *query),
            InferredType::kInt);
}

TEST(SemanticTest, AnalysisResultSeverityAndBlocking) {
  auto errors = Analyze("MATCH (u:usr) RETURN u.uid");
  EXPECT_TRUE(errors.has_errors());
  EXPECT_TRUE(errors.BlockedAt(LintLevel::kError));
  EXPECT_FALSE(errors.BlockedAt(LintLevel::kOff));

  auto hints = Analyze("MATCH (u:user {uid: 1})-[:follows]->(f:user) "
                       "RETURN u.uid");
  EXPECT_FALSE(hints.has_errors());
  EXPECT_FALSE(hints.BlockedAt(LintLevel::kError));
  EXPECT_TRUE(hints.BlockedAt(LintLevel::kHint));
}

// ------------------------------------------------------------- Session

TEST(SessionLintTest, LintVerbReportsWithoutExecuting) {
  CypherSession session(SharedDb());
  auto* queries = obs::MetricsRegistry::Default().GetCounter("cypher.queries");
  auto* lint_runs =
      obs::MetricsRegistry::Default().GetCounter("cypher.lint.runs");
  uint64_t queries_before = queries->value();
  uint64_t lint_runs_before = lint_runs->value();

  auto result = session.Run("LINT MATCH (u:usr) RETURN u.uid");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->lint_only);
  ASSERT_EQ(result->columns.size(), 4u);
  EXPECT_EQ(result->columns[0], "severity");
  EXPECT_EQ(result->columns[1], "rule");
  ASSERT_FALSE(result->rows.empty());
  EXPECT_NE(result->profile.find("unknown-label"), std::string::npos);

  // LINT is an analysis verb: no execution, no query metrics, no cached
  // result.
  EXPECT_EQ(queries->value(), queries_before);
  EXPECT_EQ(lint_runs->value(), lint_runs_before + 1);
  EXPECT_EQ(session.result_cache_stats().entries, 0u);
}

TEST(SessionLintTest, LintReportsParseErrorsAsDiagnostics) {
  CypherSession session(SharedDb());
  auto result = session.Run("LINT MATCH (u:user RETURN u");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->lint_only);
  ASSERT_FALSE(result->rows.empty());
  EXPECT_NE(result->profile.find("parse-error"), std::string::npos);
}

TEST(SessionLintTest, CleanQueryLintsClean) {
  CypherSession session(SharedDb());
  auto result = session.Run("LINT MATCH (u:user {uid: 1}) RETURN u.uid");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST(SessionLintTest, StrictModeRefusesErrorQueries) {
  CypherSession session(SharedDb());
  session.SetLintLevel(LintLevel::kError);

  auto rejected = session.Run("MATCH (u:usr) RETURN u.uid");
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().ToString().find("strict lint mode"),
            std::string::npos)
      << rejected.status().ToString();
  EXPECT_NE(rejected.status().ToString().find("unknown-label"),
            std::string::npos);

  // Warnings pass at kError; the clean query runs.
  auto accepted = session.Run("MATCH (u:user {uid: 1}) RETURN u.uid");
  EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();

  // The rejection repeats on the plan-cache hit path too.
  auto rejected_again = session.Run("MATCH (u:usr) RETURN u.uid");
  EXPECT_FALSE(rejected_again.ok());
}

TEST(SessionLintTest, StrictModeStillAllowsAnalysisVerbs) {
  CypherSession session(SharedDb());
  session.SetLintLevel(LintLevel::kError);

  auto lint = session.Run("LINT MATCH (u:usr) RETURN u.uid");
  EXPECT_TRUE(lint.ok()) << lint.status().ToString();
  auto explain = session.Run("EXPLAIN MATCH (u:usr) RETURN u.uid");
  EXPECT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_TRUE(explain->explain_only);
}

TEST(SessionLintTest, LintLevelConfigurableViaOptions) {
  CypherSession session(SharedDb());
  SessionOptions options;
  options.lint_level = LintLevel::kWarning;
  session.Configure(options);
  EXPECT_EQ(session.lint_level(), LintLevel::kWarning);

  // A warning-carrying query is refused at kWarning.
  auto rejected =
      session.Run("MATCH (u:user {screen_name: 'x'}) RETURN u.uid");
  EXPECT_FALSE(rejected.ok());
}

TEST(SessionLintTest, DiagnosticsPrependedToExplainAndProfile) {
  CypherSession session(SharedDb());
  auto explain = session.Run("EXPLAIN MATCH (u:user) WHERE u.uid = 5 "
                             "RETURN u.uid");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->profile.find("full-scan-no-index"), std::string::npos)
      << explain->profile;

  auto profile = session.Run("PROFILE MATCH (u:user) WHERE u.uid = 5 "
                             "RETURN u.uid");
  ASSERT_TRUE(profile.ok());
  EXPECT_NE(profile->profile.find("full-scan-no-index"), std::string::npos)
      << profile->profile;
  // Diagnostics come before the operator tree.
  EXPECT_LT(profile->profile.find("full-scan-no-index"),
            profile->profile.find("rows="));
}

}  // namespace
}  // namespace mbq::cypher
