#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/bitmap_engine.h"
#include "core/engine.h"
#include "core/nodestore_engine.h"
#include "core/partition.h"
#include "core/remote_engine.h"
#include "core/shard_service.h"
#include "core/workload.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "rpc/server.h"
#include "storage/simulated_disk.h"
#include "twitter/loaders.h"
#include "util/rng.h"

namespace mbq::core {
namespace {

using twitter::Dataset;
using twitter::DatasetSpec;

// ------------------------------------------------------------ partition

TEST(Partitioner, HashTranslationIsABijection) {
  Partitioner p(PartitionKind::kHash, 3, 100);
  uint64_t seen = 0;
  for (int64_t uid = 0; uid < 100; ++uid) {
    uint32_t shard = p.OwnerShard(uid);
    ASSERT_LT(shard, 3u);
    uint64_t local = p.GlobalToLocal(uid);
    ASSERT_LT(local, p.OwnedCount(shard));
    EXPECT_EQ(uid, p.LocalToGlobal(shard, local));
    ++seen;
  }
  EXPECT_EQ(100u, seen);
  EXPECT_EQ(100u, p.OwnedCount(0) + p.OwnedCount(1) + p.OwnedCount(2));
}

TEST(Partitioner, RangeTranslationIsABijection) {
  Partitioner p(PartitionKind::kRange, 4, 103);
  uint64_t total = 0;
  for (uint32_t s = 0; s < 4; ++s) total += p.OwnedCount(s);
  EXPECT_EQ(103u, total);
  uint32_t last_shard = 0;
  for (int64_t uid = 0; uid < 103; ++uid) {
    uint32_t shard = p.OwnerShard(uid);
    // Range partitioning is monotone in uid.
    ASSERT_GE(shard, last_shard);
    last_shard = shard;
    EXPECT_EQ(uid, p.LocalToGlobal(shard, p.GlobalToLocal(uid)));
  }
}

TEST(Partitioner, SliceCoversActivityExactlyOnce) {
  DatasetSpec spec;
  spec.num_users = 300;
  spec.seed = 7;
  Dataset full = twitter::GenerateDataset(spec);
  Partitioner p(PartitionKind::kHash, 3, spec.num_users);

  uint64_t tweets = 0, mentions = 0, tag_edges = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    SliceCounts counts;
    Dataset slice = MakeShardSlice(full, p, s, &counts);
    // Social skeleton replicated in full.
    EXPECT_EQ(full.users.size(), slice.users.size());
    EXPECT_EQ(full.follows.size(), slice.follows.size());
    EXPECT_EQ(full.hashtags.size(), slice.hashtags.size());
    // Every tweet's poster is owned by this shard.
    for (const Dataset::Tweet& tweet : slice.tweets) {
      EXPECT_EQ(s, p.OwnerShard(tweet.poster_uid));
    }
    tweets += slice.tweets.size();
    mentions += slice.mentions.size();
    tag_edges += slice.tags.size();
  }
  // The slices partition the activity graph: nothing lost, nothing
  // duplicated.
  EXPECT_EQ(full.tweets.size(), tweets);
  EXPECT_EQ(full.mentions.size(), mentions);
  EXPECT_EQ(full.tags.size(), tag_edges);
}

// -------------------------------------------------------------- cluster

/// One in-process shard: slice, stores, engine, service, RPC server.
struct Shard {
  std::unique_ptr<nodestore::GraphDb> db;
  std::unique_ptr<bitmapstore::Graph> graph;
  twitter::BitmapHandles bitmap_handles{};
  std::unique_ptr<MicroblogEngine> engine;
  std::unique_ptr<ShardService> service;
  std::unique_ptr<rpc::RpcServer> server;
};

/// Spins up `num_shards` shard servers over slices of `full` on loopback
/// and returns them plus their addresses. `engine_kind` selects the
/// per-shard engine; mixing engines across shards is fine (and tested) —
/// the protocol hides the implementation.
class ClusterFixture {
 public:
  ClusterFixture(const Dataset& full, uint32_t num_shards,
                 PartitionKind partition, EngineKind engine_kind,
                 uint64_t num_users) {
    status_ = Init(full, num_shards, partition, engine_kind, num_users);
  }

  const Status& status() const { return status_; }
  const std::vector<RemoteEngine::ShardAddress>& addresses() const {
    return addresses_;
  }

 private:
  Status Init(const Dataset& full, uint32_t num_shards,
              PartitionKind partition, EngineKind engine_kind,
              uint64_t num_users) {
    Partitioner partitioner(partition, num_shards, num_users);
    for (uint32_t s = 0; s < num_shards; ++s) {
      auto shard = std::make_unique<Shard>();
      Dataset slice = MakeShardSlice(full, partitioner, s);
      EngineOptions options;
      EngineKind kind =
          engine_kind == EngineKind::kRemote
              // "kRemote" is reused here to mean "alternate per shard".
              ? (s % 2 == 0 ? EngineKind::kNodestore : EngineKind::kBitmap)
              : engine_kind;
      if (kind == EngineKind::kNodestore) {
        nodestore::GraphDbOptions ndb;
        ndb.disk_profile = storage::DiskProfile::Instant();
        ndb.wal_enabled = false;
        shard->db = std::make_unique<nodestore::GraphDb>(ndb);
        auto handles = twitter::LoadIntoNodestore(slice, shard->db.get());
        MBQ_RETURN_IF_ERROR(handles.status());
        options.db = shard->db.get();
      } else {
        bitmapstore::GraphOptions bg;
        bg.disk_profile = storage::DiskProfile::Instant();
        shard->graph = std::make_unique<bitmapstore::Graph>(bg);
        auto handles = twitter::LoadIntoBitmapstore(slice, shard->graph.get());
        MBQ_RETURN_IF_ERROR(handles.status());
        shard->bitmap_handles = *handles;
        options.graph = shard->graph.get();
        options.handles = &shard->bitmap_handles;
      }
      MBQ_ASSIGN_OR_RETURN(shard->engine, OpenEngine(kind, options));

      rpc::HelloReply info;
      info.shard_id = s;
      info.num_shards = num_shards;
      info.partition = static_cast<uint8_t>(partition);
      info.num_users = num_users;
      info.engine = shard->engine->name();
      shard->service = std::make_unique<ShardService>(shard->engine.get(),
                                                      info);
      ShardService* service = shard->service.get();
      MBQ_ASSIGN_OR_RETURN(
          shard->server,
          rpc::RpcServer::Start(rpc::RpcServer::Options{},
                                [service](const rpc::Frame& f) {
                                  return service->Handle(f);
                                }));
      addresses_.push_back(
          {std::string("127.0.0.1"), shard->server->port()});
      shards_.push_back(std::move(shard));
    }
    return Status::OK();
  }

  Status status_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<RemoteEngine::ShardAddress> addresses_;
};

struct ClusterCase {
  uint64_t seed;
  uint64_t users;
  uint32_t shards;
  PartitionKind partition;
  EngineKind engine;  // kRemote = alternate nodestore/bitmap per shard
};

class ClusterAgreementTest : public ::testing::TestWithParam<ClusterCase> {
 protected:
  void SetUp() override {
    const ClusterCase& c = GetParam();
    DatasetSpec spec;
    spec.num_users = c.users;
    spec.seed = c.seed;
    spec.tweets_per_active_user = 5;
    spec.active_user_fraction = 0.3;
    spec.follows_per_user = 6;
    spec.mentions_per_tweet = 1.2;
    dataset_ = twitter::GenerateDataset(spec);

    // Reference: the whole dataset in one local engine.
    nodestore::GraphDbOptions ndb;
    ndb.disk_profile = storage::DiskProfile::Instant();
    ndb.wal_enabled = false;
    db_ = std::make_unique<nodestore::GraphDb>(ndb);
    auto handles = twitter::LoadIntoNodestore(dataset_, db_.get());
    ASSERT_TRUE(handles.ok()) << handles.status().ToString();
    EngineOptions options;
    options.db = db_.get();
    auto local = OpenEngine(EngineKind::kNodestore, options);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    local_ = std::move(*local);

    cluster_ = std::make_unique<ClusterFixture>(dataset_, c.shards,
                                                c.partition, c.engine,
                                                c.users);
    ASSERT_TRUE(cluster_->status().ok()) << cluster_->status().ToString();
    auto remote = RemoteEngine::Connect(cluster_->addresses());
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    remote_ = std::move(*remote);
  }

  void ExpectSame(Result<ValueRows> a, Result<ValueRows> b,
                  const std::string& what) {
    ASSERT_TRUE(a.ok()) << what << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << what << ": " << b.status().ToString();
    SortRows(&*a);
    SortRows(&*b);
    EXPECT_EQ(*a, *b) << what;
  }

  Dataset dataset_;
  std::unique_ptr<nodestore::GraphDb> db_;
  std::unique_ptr<MicroblogEngine> local_;
  std::unique_ptr<ClusterFixture> cluster_;
  std::unique_ptr<RemoteEngine> remote_;
};

/// The randomized differential sweep's call set (agreement_test.cc),
/// pointed at the aggregation plane instead of a second local engine:
/// the shards + merge must reproduce the single-process engine exactly.
TEST_P(ClusterAgreementTest, AggregatedResultsMatchSingleProcess) {
  const uint64_t seed = GetParam().seed;
  SCOPED_TRACE("reproduce with seed=" + std::to_string(seed));
  auto tags = HashtagsByUse(dataset_);
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  const int64_t num_users = static_cast<int64_t>(dataset_.users.size());
  const int64_t kAll = int64_t{1} << 30;

  constexpr int kCallsPerSeed = 25;
  for (int call = 0; call < kCallsPerSeed; ++call) {
    SCOPED_TRACE("call #" + std::to_string(call));
    int64_t uid = static_cast<int64_t>(rng.NextBounded(num_users));
    switch (rng.NextBounded(11)) {
      case 0: {
        int64_t threshold = static_cast<int64_t>(rng.NextBounded(30));
        ExpectSame(local_->SelectUsersByFollowerCount(threshold),
                   remote_->SelectUsersByFollowerCount(threshold), "Q1.1");
        break;
      }
      case 1:
        ExpectSame(local_->FolloweesOf(uid), remote_->FolloweesOf(uid),
                   "Q2.1");
        break;
      case 2:
        ExpectSame(local_->TweetsOfFollowees(uid),
                   remote_->TweetsOfFollowees(uid), "Q2.2");
        break;
      case 3:
        ExpectSame(local_->HashtagsUsedByFollowees(uid),
                   remote_->HashtagsUsedByFollowees(uid), "Q2.3");
        break;
      case 4:
        ExpectSame(local_->TopCoMentionedUsers(uid, kAll),
                   remote_->TopCoMentionedUsers(uid, kAll), "Q3.1");
        break;
      case 5: {
        std::string tag = tags.empty()
                              ? "missing"
                              : tags[rng.NextBounded(tags.size())].second;
        ExpectSame(local_->TopCoOccurringHashtags(tag, kAll),
                   remote_->TopCoOccurringHashtags(tag, kAll), "Q3.2");
        break;
      }
      case 6:
        ExpectSame(local_->RecommendFolloweesOfFollowees(uid, kAll),
                   remote_->RecommendFolloweesOfFollowees(uid, kAll),
                   "Q4.1");
        break;
      case 7:
        ExpectSame(local_->RecommendFollowersOfFollowees(uid, kAll),
                   remote_->RecommendFollowersOfFollowees(uid, kAll),
                   "Q4.2");
        break;
      case 8:
        ExpectSame(local_->CurrentInfluence(uid, kAll),
                   remote_->CurrentInfluence(uid, kAll), "Q5.1");
        break;
      case 9:
        ExpectSame(local_->PotentialInfluence(uid, kAll),
                   remote_->PotentialInfluence(uid, kAll), "Q5.2");
        break;
      case 10: {
        int64_t b = static_cast<int64_t>(rng.NextBounded(num_users));
        auto la = local_->ShortestPathLength(uid, b, 3);
        auto lb = remote_->ShortestPathLength(uid, b, 3);
        ASSERT_TRUE(la.ok() && lb.ok());
        EXPECT_EQ(*la, *lb) << "Q6.1 " << uid << "->" << b;
        break;
      }
    }
  }
}

/// An unknown hashtag must answer the way a single-process engine of the
/// same kind would: Cypher shards return empty rows, bitmap shards
/// return NotFound — and the merge must not turn either into something
/// else. (Mixed topologies behave like the Cypher side: NotFound is
/// propagated only when every shard reports it.)
TEST_P(ClusterAgreementTest, UnknownHashtagMatchesSingleProcessSemantics) {
  auto got = remote_->TopCoOccurringHashtags("no_such_tag_zzz", 10);
  if (GetParam().engine == EngineKind::kBitmap) {
    EXPECT_TRUE(got.status().IsNotFound()) << got.status().ToString();
  } else {
    auto want = local_->TopCoOccurringHashtags("no_such_tag_zzz", 10);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*want, *got);
  }
}

TEST_P(ClusterAgreementTest, DropCachesReachesEveryShard) {
  EXPECT_TRUE(remote_->DropCaches().ok());
}

/// Client and shards share one process here, so the global span ring
/// sees both halves of a traced call: the RemoteEngine nav span and
/// every shard's execute span must carry the one installed trace id
/// (wire-propagated via kTracedEnvelope over real loopback sockets),
/// and the aggregation plane must attribute latency to each shard.
TEST_P(ClusterAgreementTest, TracedCallsStitchAcrossTheRpcBoundary) {
  obs::SpanRecorder::Global().Clear();
  obs::TraceContext root = obs::MintTraceContext();
  {
    obs::ScopedTraceContext scope(root);
    // A fan-out call: every shard answers, so every shard's histogram
    // and execute span participate in the trace.
    ASSERT_TRUE(remote_->TweetsOfFollowees(1).ok());
  }
  std::string json = obs::SpanRecorder::Global().ToTraceJson();
  const std::string id = "\"trace_id\": \"" + obs::TraceIdHex(root) + "\"";
  size_t stitched = 0;
  for (size_t at = json.find(id); at != std::string::npos;
       at = json.find(id, at + 1)) {
    ++stitched;
  }
  // At least the client-side nav span plus one span per shard, all
  // under the same trace even though the context crossed the wire.
  EXPECT_GE(stitched, 1u + GetParam().shards) << json;

  // Latency attribution: every shard's histogram saw the call.
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Default().Snapshot();
  for (uint32_t s = 0; s < GetParam().shards; ++s) {
    const std::string name = "rpc.shard." + std::to_string(s) + ".latency";
    bool found = false;
    for (const auto& h : snap.histograms) {
      if (h.name == name) {
        found = true;
        EXPECT_GT(h.count, 0u) << name;
      }
    }
    EXPECT_TRUE(found) << "missing histogram " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ClusterAgreementTest,
    ::testing::Values(
        // The acceptance topology: 2 nodestore shards, hash partition.
        ClusterCase{11, 240, 2, PartitionKind::kHash, EngineKind::kNodestore},
        // Range partitioning.
        ClusterCase{12, 240, 2, PartitionKind::kRange,
                    EngineKind::kNodestore},
        // Bitmap shards.
        ClusterCase{13, 240, 2, PartitionKind::kHash, EngineKind::kBitmap},
        // 3 shards, mixed engine kinds across shards.
        ClusterCase{14, 300, 3, PartitionKind::kHash, EngineKind::kRemote}));

/// OpenEngine(kRemote) is the factory face of the same machinery; it
/// must dial, validate and answer like a directly constructed
/// RemoteEngine.
TEST(RemoteFactory, OpenEngineRemoteWorksAndValidates) {
  DatasetSpec spec;
  spec.num_users = 120;
  spec.seed = 5;
  Dataset full = twitter::GenerateDataset(spec);
  ClusterFixture cluster(full, 2, PartitionKind::kHash,
                         EngineKind::kNodestore, spec.num_users);
  ASSERT_TRUE(cluster.status().ok()) << cluster.status().ToString();

  EngineOptions options;
  for (const RemoteEngine::ShardAddress& addr : cluster.addresses()) {
    options.shard_addresses.push_back(addr.host + ":" +
                                      std::to_string(addr.port));
  }
  auto engine = OpenEngine(EngineKind::kRemote, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto rows = (*engine)->FolloweesOf(0);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();

  // Addressing only one shard of a two-shard topology must be refused.
  EngineOptions partial;
  partial.shard_addresses = {options.shard_addresses[0]};
  auto bad = OpenEngine(EngineKind::kRemote, partial);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsFailedPrecondition())
      << bad.status().ToString();

  // And no addresses at all is an argument error.
  EXPECT_TRUE(OpenEngine(EngineKind::kRemote, EngineOptions{})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace mbq::core
