#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/adjacency_cache.h"
#include "cache/epoch.h"
#include "cache/lru_cache.h"
#include "cache/result_cache.h"
#include "core/bitmap_engine.h"
#include "core/engine.h"
#include "core/nodestore_engine.h"
#include "twitter/loaders.h"

namespace mbq::cache {
namespace {

// ------------------------------------------------------------- Epochs

TEST(CacheEpochTest, BumpInvalidatesOnlyTouchedDomains) {
  EpochRegistry epochs;
  EpochStamp stamp = CaptureStamp(
      epochs, {LabelDomain(1), RelTypeDomain(2)}, /*use_global=*/false);
  EXPECT_TRUE(stamp.Valid(epochs));

  epochs.Bump(LabelDomain(3));  // disjoint domain (and disjoint slot)
  EXPECT_TRUE(stamp.Valid(epochs));

  epochs.Bump(LabelDomain(1));
  EXPECT_FALSE(stamp.Valid(epochs));
}

TEST(CacheEpochTest, GlobalStampInvalidatedByAnyWrite) {
  EpochRegistry epochs;
  EpochStamp stamp = CaptureStamp(epochs, {}, /*use_global=*/true);
  EXPECT_TRUE(stamp.Valid(epochs));
  epochs.Bump(RelTypeDomain(7));
  EXPECT_FALSE(stamp.Valid(epochs));
}

TEST(CacheEpochTest, BumpAllInvalidatesEverything) {
  EpochRegistry epochs;
  EpochStamp slotted =
      CaptureStamp(epochs, {LabelDomain(4)}, /*use_global=*/false);
  EpochStamp global = CaptureStamp(epochs, {}, /*use_global=*/true);
  epochs.BumpAll();
  EXPECT_FALSE(slotted.Valid(epochs));
  EXPECT_FALSE(global.Valid(epochs));
}

TEST(CacheEpochTest, SlotCollisionInvalidatesSpuriouslyNeverStalely) {
  EpochRegistry epochs;
  // Two domains that share a slot (kSlots apart): a write to one must
  // invalidate stamps of the other — the conservative direction.
  uint32_t domain = 5;
  uint32_t collider = domain + EpochRegistry::kSlots;
  EpochStamp stamp = CaptureStamp(epochs, {domain}, /*use_global=*/false);
  epochs.Bump(collider);
  EXPECT_FALSE(stamp.Valid(epochs));
}

// ---------------------------------------------------------------- LRU

TEST(CacheLruTest, EvictsLeastRecentlyUsedUnderTinyCapacity) {
  EpochRegistry epochs;
  ShardedLruCache<int, int> cache(LruOptions{/*capacity=*/2, /*shards=*/1,
                                             /*metric_prefix=*/""},
                                  &epochs);
  EpochStamp stamp = CaptureStamp(epochs, {}, /*use_global=*/true);
  cache.Put(1, 10, 8, stamp);
  cache.Put(2, 20, 8, stamp);
  int out = 0;
  ASSERT_TRUE(cache.Get(1, &out));  // touch 1 -> 2 becomes the LRU victim
  cache.Put(3, 30, 8, stamp);
  EXPECT_TRUE(cache.Get(1, &out));
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(cache.Get(2, &out));
  EXPECT_TRUE(cache.Get(3, &out));
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(CacheLruTest, StaleEntriesDropOnGetAndStalePutsAreRefused) {
  EpochRegistry epochs;
  ShardedLruCache<int, int> cache(LruOptions{4, 1, ""}, &epochs);
  EpochStamp stamp =
      CaptureStamp(epochs, {RelTypeDomain(1)}, /*use_global=*/false);
  cache.Put(1, 10, 8, stamp);
  int out = 0;
  ASSERT_TRUE(cache.Get(1, &out));

  epochs.Bump(RelTypeDomain(1));
  EXPECT_FALSE(cache.Get(1, &out));  // lazily dropped
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);

  // A stamp that expired before Put never enters the cache.
  cache.Put(2, 20, 8, stamp);
  EXPECT_FALSE(cache.Get(2, &out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(CacheLruTest, ClearDropsEntriesAndBytes) {
  EpochRegistry epochs;
  ShardedLruCache<int, int> cache(LruOptions{8, 2, ""}, &epochs);
  EpochStamp stamp = CaptureStamp(epochs, {}, /*use_global=*/true);
  for (int i = 0; i < 6; ++i) cache.Put(i, i, 16, stamp);
  cache.Clear();
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(CacheCanonicalTextTest, CollapsesWhitespaceRuns) {
  EXPECT_EQ(CanonicalQueryText("MATCH (n)\n\t RETURN  n"),
            "MATCH (n) RETURN n");
  EXPECT_EQ(CanonicalQueryText("  MATCH (n) RETURN n  "),
            "MATCH (n) RETURN n");
  EXPECT_EQ(CanonicalQueryText(""), "");
}

// -------------------------------------------- Cypher layer (nodestore)

class ResultCacheCypherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    twitter::DatasetSpec spec;
    spec.num_users = 300;
    spec.follows_per_user = 6;
    spec.active_user_fraction = 0.4;
    spec.tweets_per_active_user = 4;
    spec.mentions_per_tweet = 1.0;
    spec.tags_per_tweet = 0.8;
    spec.seed = 99;
    dataset_ = twitter::GenerateDataset(spec);

    nodestore::GraphDbOptions options;
    options.disk_profile = storage::DiskProfile::Instant();
    options.wal_enabled = false;
    db_ = std::make_unique<nodestore::GraphDb>(options);
    auto nh = twitter::LoadIntoNodestore(dataset_, db_.get());
    ASSERT_TRUE(nh.ok()) << nh.status().ToString();
    h_ = *nh;

    core::EngineOptions engine_options;
    engine_options.db = db_.get();
    engine_options.result_cache = true;
    auto engine = core::OpenEngine(core::EngineKind::kNodestore,
                                   engine_options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_.reset(static_cast<core::NodestoreEngine*>(engine->release()));
  }

  cypher::CypherSession& session() { return engine_->session(); }

  nodestore::NodeId User(int64_t uid) {
    auto node = db_->IndexSeek(h_.user, h_.uid, common::Value::Int(uid));
    EXPECT_TRUE(node.ok());
    return *node;
  }

  twitter::Dataset dataset_;
  std::unique_ptr<nodestore::GraphDb> db_;
  twitter::NodestoreHandles h_;
  std::unique_ptr<core::NodestoreEngine> engine_;
};

TEST_F(ResultCacheCypherTest, SecondRunIsServedFromTheCacheWithZeroDbHits) {
  const std::string q =
      "MATCH (a:user {uid: $uid})-[:follows]->(f:user) RETURN f.uid";
  cypher::Params params{{"uid", common::Value::Int(3)}};

  auto first = session().Run(q, params);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->result_cached);
  EXPECT_GT(first->db_hits, 0u);

  auto second = session().Run(q, params);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->result_cached);
  EXPECT_EQ(second->db_hits, 0u);
  EXPECT_EQ(second->rows.size(), first->rows.size());
  EXPECT_EQ(second->columns, first->columns);

  cache::CacheStats stats = session().result_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);
}

TEST_F(ResultCacheCypherTest, ProfileShowsCacheMissThenHit) {
  const std::string q =
      "PROFILE MATCH (a:user {uid: $uid})-[:follows]->(f:user) RETURN f.uid";
  cypher::Params params{{"uid", common::Value::Int(5)}};

  // Semantic diagnostics (if any) are prepended before the cache line,
  // so assert the line precedes the operator tree rather than being
  // byte zero.
  auto miss = session().Run(q, params);
  ASSERT_TRUE(miss.ok());
  size_t miss_at = miss->profile.find("cache=miss\n");
  ASSERT_NE(miss_at, std::string::npos) << miss->profile;
  EXPECT_LT(miss_at, miss->profile.find("rows=")) << miss->profile;

  auto hit = session().Run(q, params);
  ASSERT_TRUE(hit.ok());
  size_t hit_at = hit->profile.find("cache=hit\n");
  ASSERT_NE(hit_at, std::string::npos) << hit->profile;
  EXPECT_LT(hit_at, hit->profile.find("rows=")) << hit->profile;
}

TEST_F(ResultCacheCypherTest, ReformattedQueryTextSharesTheEntry) {
  cypher::Params params{{"uid", common::Value::Int(4)}};
  auto first = session().Run(
      "MATCH (a:user {uid: $uid})-[:follows]->(f:user) RETURN f.uid", params);
  ASSERT_TRUE(first.ok());
  auto second = session().Run(
      "MATCH  (a:user {uid: $uid})-[:follows]->(f:user)\n  RETURN f.uid",
      params);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->result_cached);
}

TEST_F(ResultCacheCypherTest, DifferentParamsDoNotShareEntries) {
  const std::string q =
      "MATCH (a:user {uid: $uid})-[:follows]->(f:user) RETURN f.uid";
  auto a = session().Run(q, {{"uid", common::Value::Int(1)}});
  ASSERT_TRUE(a.ok());
  auto b = session().Run(q, {{"uid", common::Value::Int(2)}});
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->result_cached);
}

TEST_F(ResultCacheCypherTest, WriteThenReadIsNeverStale) {
  const std::string q =
      "MATCH (a:user {uid: $uid})-[:follows]->(f:user) RETURN f.uid";
  cypher::Params params{{"uid", common::Value::Int(7)}};

  auto before = session().Run(q, params);
  ASSERT_TRUE(before.ok());
  size_t rows_before = before->rows.size();
  ASSERT_TRUE(session().Run(q, params)->result_cached);  // entry is live

  // User 7 follows a user it could not have followed yet: uid 7's own
  // followee list never contains every user, so pick one it lacks.
  std::set<std::string> followees;
  for (const auto& row : before->rows) followees.insert(row[0].ToString());
  int64_t target = -1;
  for (int64_t uid = 0; uid < 300; ++uid) {
    if (uid != 7 && followees.count(std::to_string(uid)) == 0) {
      target = uid;
      break;
    }
  }
  ASSERT_GE(target, 0);
  auto rel = db_->CreateRelationship(h_.follows, User(7), User(target));
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();

  auto after = session().Run(q, params);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->result_cached) << "stale result served after a write";
  EXPECT_EQ(after->rows.size(), rows_before + 1);
  EXPECT_GE(session().result_cache_stats().invalidations, 1u);
}

TEST_F(ResultCacheCypherTest, UnrelatedWriteKeepsTheEntry) {
  const std::string q =
      "MATCH (a:user {uid: $uid})-[:follows]->(f:user) RETURN f.uid";
  cypher::Params params{{"uid", common::Value::Int(9)}};
  ASSERT_TRUE(session().Run(q, params).ok());

  // A posts edge touches neither the user label nor the follows type, so
  // the per-domain footprint keeps the entry alive.
  auto tweet = db_->CreateNode(h_.tweet);
  ASSERT_TRUE(tweet.ok());
  auto rel = db_->CreateRelationship(h_.posts, User(9), *tweet);
  ASSERT_TRUE(rel.ok());

  auto again = session().Run(q, params);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->result_cached)
      << "per-domain footprint should survive unrelated writes";
}

TEST_F(ResultCacheCypherTest, EvictionUnderTinyCapacity) {
  cypher::SessionOptions options;
  options.result_cache = true;
  options.result_cache_capacity = 8;  // one entry per shard
  engine_->Configure(options);
  const std::string q =
      "MATCH (a:user {uid: $uid})-[:follows]->(f:user) RETURN f.uid";
  for (int64_t uid = 0; uid < 64; ++uid) {
    ASSERT_TRUE(session().Run(q, {{"uid", common::Value::Int(uid)}}).ok());
  }
  cache::CacheStats stats = session().result_cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 8u);
}

TEST_F(ResultCacheCypherTest, AdjacencyCacheCutsDbHitsAndStaysCorrect) {
  cypher::SessionOptions options;
  options.result_cache = false;  // isolate the adjacency layer
  options.adjacency_cache = true;
  options.adjacency_min_degree = 0;  // cache every expansion
  engine_->Configure(options);

  const std::string q = core::NodestoreEngine::kRecommendVariantB;
  cypher::Params params{{"uid", common::Value::Int(11)},
                        {"n", common::Value::Int(1 << 30)}};
  auto cold = session().Run(q, params);
  ASSERT_TRUE(cold.ok());
  auto warm = session().Run(q, params);
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->db_hits, cold->db_hits)
      << "cached expansions should not recharge store walks";
  EXPECT_EQ(warm->rows.size(), cold->rows.size());
  EXPECT_GT(session().adjacency_cache_stats().hits, 0u);

  // A follows write invalidates the cached neighbor lists: the next run
  // must see the new edge (compare against an uncached session).
  auto rel = db_->CreateRelationship(h_.follows, User(11), User(250));
  ASSERT_TRUE(rel.ok());
  auto after = session().Run(q, params);
  ASSERT_TRUE(after.ok());
  cypher::CypherSession fresh(db_.get());
  auto expect = fresh.Run(q, params);
  ASSERT_TRUE(expect.ok());
  ASSERT_EQ(after->rows.size(), expect->rows.size());
  for (size_t i = 0; i < after->rows.size(); ++i) {
    for (size_t j = 0; j < after->rows[i].size(); ++j) {
      EXPECT_TRUE(after->rows[i][j].Equals(expect->rows[i][j]))
          << "row " << i << " col " << j;
    }
  }
}

// ------------------------------------------------- Bitmap engine cache

class BitmapAdjacencyCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    twitter::DatasetSpec spec;
    spec.num_users = 250;
    spec.follows_per_user = 8;
    spec.active_user_fraction = 0.4;
    spec.tweets_per_active_user = 4;
    spec.seed = 123;
    dataset_ = twitter::GenerateDataset(spec);

    bitmapstore::GraphOptions options;
    options.disk_profile = storage::DiskProfile::Instant();
    graph_ = std::make_unique<bitmapstore::Graph>(options);
    auto bh = twitter::LoadIntoBitmapstore(dataset_, graph_.get());
    ASSERT_TRUE(bh.ok()) << bh.status().ToString();
    h_ = *bh;

    core::EngineOptions engine_options;
    engine_options.graph = graph_.get();
    engine_options.handles = &h_;
    engine_options.adjacency_cache = true;
    engine_options.adjacency_min_degree = 0;
    auto engine = core::OpenEngine(core::EngineKind::kBitmap, engine_options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_.reset(static_cast<core::BitmapEngine*>(engine->release()));
  }

  twitter::Dataset dataset_;
  std::unique_ptr<bitmapstore::Graph> graph_;
  twitter::BitmapHandles h_;
  std::unique_ptr<core::BitmapEngine> engine_;
};

TEST_F(BitmapAdjacencyCacheTest, RepeatedReadsHitAndWritesInvalidate) {
  auto first = engine_->FolloweesOf(5);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = engine_->FolloweesOf(5);
  ASSERT_TRUE(second.ok());
  core::SortRows(&*first);
  core::SortRows(&*second);
  EXPECT_EQ(*first, *second);
  EXPECT_GT(engine_->adjacency_cache_stats().hits, 0u);

  // A new follows edge must appear in the next read.
  auto a = graph_->FindObject(h_.uid, common::Value::Int(5));
  ASSERT_TRUE(a.ok());
  auto b = graph_->FindObject(h_.uid, common::Value::Int(249));
  ASSERT_TRUE(b.ok());
  // uid 249 might already be followed; count either way and compare sizes.
  size_t before = first->size();
  auto edge = graph_->NewEdge(h_.follows, *a, *b);
  ASSERT_TRUE(edge.ok()) << edge.status().ToString();
  auto after = engine_->FolloweesOf(5);
  ASSERT_TRUE(after.ok());
  bool already_followed = false;
  for (const auto& row : *first) {
    if (row[0].Compare(common::Value::Int(249)) == 0) already_followed = true;
  }
  EXPECT_EQ(after->size(), already_followed ? before : before + 1)
      << "cached neighbor list served after a write";
  EXPECT_GE(engine_->adjacency_cache_stats().invalidations, 1u);
}

TEST_F(BitmapAdjacencyCacheTest, HeavyQueriesAgreeWithUncachedEngine) {
  core::BitmapEngine uncached(graph_.get(), h_);
  auto cached_rows = engine_->RecommendFolloweesOfFollowees(3, 1 << 30);
  auto plain_rows = uncached.RecommendFolloweesOfFollowees(3, 1 << 30);
  ASSERT_TRUE(cached_rows.ok() && plain_rows.ok());
  core::SortRows(&*cached_rows);
  core::SortRows(&*plain_rows);
  EXPECT_EQ(*cached_rows, *plain_rows);

  auto cached_inf = engine_->PotentialInfluence(3, 1 << 30);
  auto plain_inf = uncached.PotentialInfluence(3, 1 << 30);
  ASSERT_TRUE(cached_inf.ok() && plain_inf.ok());
  core::SortRows(&*cached_inf);
  core::SortRows(&*plain_inf);
  EXPECT_EQ(*cached_inf, *plain_inf);
}

// --------------------------------------------------------- Concurrency

/// Concurrent readers keep hitting the cache while epochs advance — the
/// single-writer/concurrent-reader model: the writer thread only bumps
/// the registry (as every store write does first), readers Get/Put.
/// TSan-clean by construction: shard mutexes + atomic epochs.
TEST(CacheConcurrencyTest, ReadersRaceEpochBumpsWithoutTearing) {
  EpochRegistry epochs;
  ShardedLruCache<int, int> cache(LruOptions{64, 8, ""}, &epochs);
  std::atomic<int> readers_live{4};
  std::atomic<uint64_t> served{0};

  std::thread writer([&] {
    uint32_t i = 0;
    while (readers_live.load(std::memory_order_acquire) > 0) {
      epochs.Bump(RelTypeDomain(i++ % 4));
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int round = 0; round < 2000; ++round) {
        for (int key = 0; key < 16; ++key) {
          int out = 0;
          if (!cache.Get(key, &out)) {
            EpochStamp stamp = CaptureStamp(
                epochs, {RelTypeDomain(static_cast<uint32_t>(key % 4))},
                /*use_global=*/false);
            cache.Put(key, key * 100 + t, 8, std::move(stamp));
          } else {
            // Values are only ever key*100+t for some t: a torn or stale
            // mix would break this invariant.
            EXPECT_EQ(out / 100, key);
            served.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      readers_live.fetch_sub(1, std::memory_order_release);
    });
  }
  for (auto& r : readers) r.join();
  writer.join();
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, served.load());
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace mbq::cache
