#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/bitmap_engine.h"
#include "core/engine.h"
#include "cypher/session.h"
#include "nodestore/graph_db.h"
#include "obs/export.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "twitter/loaders.h"

namespace mbq::obs {
namespace {

// --------------------------------------------------------- QueryRegistry

TEST(IntrospectTest, ActiveQueryAppearsAndDisappears) {
  QueryRegistry registry;
  {
    ActiveQueryScope scope(&registry, "MATCH (u) RETURN u", "cypher", 4);
    scope.SetRows(7);
    scope.SetDbHits(42);
    auto active = registry.Snapshot();
    ASSERT_EQ(active.size(), 1u);
    EXPECT_EQ(active[0].query, "MATCH (u) RETURN u");
    EXPECT_EQ(active[0].engine, "cypher");
    EXPECT_EQ(active[0].threads, 4u);
    EXPECT_EQ(active[0].rows_emitted, 7u);
    EXPECT_EQ(active[0].db_hits, 42u);
  }
  EXPECT_TRUE(registry.Snapshot().empty());
  EXPECT_EQ(registry.started(), 1u);
  EXPECT_EQ(registry.finished(), 1u);
  EXPECT_EQ(registry.dropped(), 0u);
}

TEST(IntrospectTest, NullRegistryMakesScopeInert) {
  ActiveQueryScope scope(nullptr, "q", "cypher", 1);
  scope.SetRows(1);  // must not crash
  EXPECT_GT(scope.ElapsedNanos(), 0u);
}

TEST(IntrospectTest, FullTableCountsDrops) {
  QueryRegistry registry;
  std::vector<std::unique_ptr<ActiveQueryScope>> scopes;
  for (size_t i = 0; i < QueryRegistry::kSlots + 3; ++i) {
    scopes.push_back(std::make_unique<ActiveQueryScope>(
        &registry, "q" + std::to_string(i), "cypher", 1));
  }
  EXPECT_EQ(registry.Snapshot().size(), QueryRegistry::kSlots);
  EXPECT_EQ(registry.dropped(), 3u);
  scopes.clear();
  EXPECT_TRUE(registry.Snapshot().empty());
  // Unregistered executions still count as started and finished.
  EXPECT_EQ(registry.started(), QueryRegistry::kSlots + 3);
  EXPECT_EQ(registry.finished(), QueryRegistry::kSlots + 3);
}

TEST(IntrospectTest, RegistryJsonEscapesHostileQueryText) {
  QueryRegistry registry;
  ActiveQueryScope scope(&registry, "RETURN \"quoted\"\nline2", "cypher", 1);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("RETURN \\\"quoted\\\"\\nline2"), std::string::npos);
  EXPECT_EQ(json.find('\n') == std::string::npos,
            false);  // payload has line breaks between objects...
  // ...but never a raw newline inside a string literal: unescaping the
  // escaped form recovers the original text.
  EXPECT_EQ(JsonUnescape("RETURN \\\"quoted\\\"\\nline2"),
            "RETURN \"quoted\"\nline2");
}

TEST(IntrospectTest, ConcurrentScopesAndSnapshotsAreSafe) {
  QueryRegistry registry;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto active = registry.Snapshot();
      EXPECT_LE(active.size(), QueryRegistry::kSlots);
    }
  });
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      for (int i = 0; i < kIters; ++i) {
        ActiveQueryScope scope(&registry, "thread query", "bitmap",
                               static_cast<uint32_t>(t + 1));
        scope.SetRows(static_cast<uint64_t>(i));
        scope.SetDbHits(static_cast<uint64_t>(i) * 2);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_TRUE(registry.Snapshot().empty());
  EXPECT_EQ(registry.started(), kThreads * kIters);
  EXPECT_EQ(registry.finished(), kThreads * kIters);
}

// -------------------------------------------------------- FlightRecorder

SlowQuery MakeSlow(const std::string& query, double millis) {
  SlowQuery slow;
  slow.query = query;
  slow.engine = "cypher";
  slow.millis = millis;
  return slow;
}

TEST(IntrospectTest, RingKeepsTheNewestCapturesAfterWraparound) {
  FlightRecorder recorder(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(MakeSlow("q" + std::to_string(i), i));
  }
  EXPECT_EQ(recorder.captured(), 10u);
  auto slow = recorder.Snapshot();
  ASSERT_EQ(slow.size(), 4u);
  // Oldest first; wraparound discarded q0..q5.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(slow[i].query, "q" + std::to_string(i + 6));
    EXPECT_EQ(slow[i].seq, static_cast<uint64_t>(i + 6));
  }
}

TEST(IntrospectTest, ClearEmptiesTheRingButKeepsTheLifetimeCount) {
  FlightRecorder recorder(/*capacity=*/4);
  recorder.Record(MakeSlow("q", 1));
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.captured(), 1u);
}

TEST(IntrospectTest, ThresholdBoundaryIsInclusive) {
  EXPECT_TRUE(IsSlowQuery(50.0, 50));   // exactly the threshold: captured
  EXPECT_FALSE(IsSlowQuery(49.999, 50));
  EXPECT_TRUE(IsSlowQuery(50.001, 50));
  EXPECT_TRUE(IsSlowQuery(0.0, 0));  // threshold 0 captures everything
}

TEST(IntrospectTest, DefaultThresholdHonoursTheEnvironmentIncludingZero) {
  ::setenv("MBQ_SLOW_QUERY_MILLIS", "0", 1);
  EXPECT_EQ(DefaultSlowQueryMillis(), 0u);
  ::setenv("MBQ_SLOW_QUERY_MILLIS", "125", 1);
  EXPECT_EQ(DefaultSlowQueryMillis(), 125u);
  ::setenv("MBQ_SLOW_QUERY_MILLIS", "not-a-number", 1);
  EXPECT_EQ(DefaultSlowQueryMillis(), 50u);
  ::unsetenv("MBQ_SLOW_QUERY_MILLIS");
  EXPECT_EQ(DefaultSlowQueryMillis(), 50u);
}

TEST(IntrospectTest, ConcurrentRecordersNeverLoseACapture) {
  FlightRecorder recorder(/*capacity=*/64);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto slow = recorder.Snapshot();
      EXPECT_LE(slow.size(), 64u);
    }
  });
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kIters; ++i) {
        recorder.Record(MakeSlow("t" + std::to_string(t), i));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(recorder.captured(), kThreads * kIters);
  auto slow = recorder.Snapshot();
  ASSERT_EQ(slow.size(), 64u);
  // Sequence numbers are unique and strictly increasing oldest-first.
  for (size_t i = 1; i < slow.size(); ++i) {
    EXPECT_LT(slow[i - 1].seq, slow[i].seq);
  }
}

TEST(IntrospectTest, FlightRecorderJsonAndTextRenderCaptures) {
  FlightRecorder recorder(/*capacity=*/8);
  SlowQuery slow = MakeSlow("MATCH (u:user) RETURN \"x\"", 75.5);
  slow.profile = "ProduceResults\n  NodeByLabelScan\n";
  slow.cache = "miss";
  recorder.Record(std::move(slow));
  std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"captured\": 1"), std::string::npos);
  EXPECT_NE(json.find("RETURN \\\"x\\\""), std::string::npos);
  std::string text = recorder.ToText();
  EXPECT_NE(text.find("NodeByLabelScan"), std::string::npos);
  EXPECT_NE(text.find("cache=miss"), std::string::npos);
}

// ---------------------------------------------------------- SpanRecorder

TEST(IntrospectTest, SpanRecorderExportsChromeTraceEvents) {
  SpanRecorder recorder(/*capacity=*/8);
  recorder.Record("query one", "cypher", 1000, 2000);
  recorder.Record("import phase", "import", 4000, 500);
  std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("query one"), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"import\""), std::string::npos);
  EXPECT_EQ(recorder.size(), 2u);
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(IntrospectTest, SpanRecorderRingBoundsMemory) {
  SpanRecorder recorder(/*capacity=*/4);
  for (int i = 0; i < 20; ++i) {
    recorder.Record("s" + std::to_string(i), "cypher", 1000 + i, 10);
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.recorded(), 20u);
}

// ----------------------------------------------- export name round-trips

TEST(IntrospectTest, JsonEscapeRoundTripsHostileStrings) {
  const std::string hostile[] = {
      "plain", "with \"quotes\"", "back\\slash", "new\nline\ttab",
      std::string("nul\0byte", 8), "\x01\x1f control", "caf\xc3\xa9 utf8",
  };
  for (const std::string& s : hostile) {
    EXPECT_EQ(JsonUnescape(JsonEscape(s)), s) << "for: " << s;
    // The escaped form never carries raw control bytes.
    for (char c : JsonEscape(s)) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    }
  }
}

TEST(IntrospectTest, PrometheusNamesAreSanitizedAndValid) {
  EXPECT_EQ(PrometheusName("cypher.query_latency"), "cypher_query_latency");
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusName(""), "_");
  EXPECT_TRUE(IsValidPrometheusName(PrometheusName("weird name!{}\"")));
  EXPECT_FALSE(IsValidPrometheusName("has.dots"));
  EXPECT_FALSE(IsValidPrometheusName(""));
}

TEST(IntrospectTest, PrometheusExportDeduplicatesCollidingNames) {
  MetricsRegistry registry;
  // Both sanitize to a_b; the exporter must keep them distinct.
  registry.GetCounter("a.b", "items")->Inc(1);
  registry.GetCounter("a_b", "items")->Inc(2);
  registry.RegisterProvider([](MetricsSink* sink) {
    sink->Gauge("weird name!", 3, "items");
  });
  std::string text = registry.Snapshot().ToPrometheus();
  std::vector<std::string> names;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    std::string name = line.substr(0, line.find_first_of(" {"));
    EXPECT_TRUE(IsValidPrometheusName(name)) << "illegal name: " << name;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  // Sample lines of one metric (summary quantiles) repeat the name;
  // distinct *metrics* must never share one.
  names.erase(std::unique(names.begin(), names.end()), names.end());
  ASSERT_GE(names.size(), 3u);
  for (size_t i = 1; i < names.size(); ++i) {
    EXPECT_NE(names[i - 1], names[i]);
  }
}

TEST(IntrospectTest, PrometheusExportCoversWritePathFamilies) {
  // The write path, WAL and load driver register dotted names; their
  // exposition must sanitize cleanly, suffix counters with _total and
  // render histograms as p50/p95/p99 summaries — the exact families the
  // live write path and mbqbench publish.
  MetricsRegistry registry;
  registry.GetCounter("write.commits", "batches")->Inc(4);
  registry.GetCounter("write.ops.post_tweet", "ops")->Inc(9);
  registry.GetCounter("wal.fsyncs", "fsyncs")->Inc(2);
  registry.GetCounter("wal.group_commits", "commits")->Inc(1);
  registry.GetCounter("driver.requests", "requests")->Inc(100);
  Histogram* commit = registry.GetHistogram("write.commit_micros", "us");
  Histogram* latency = registry.GetHistogram("driver.latency_micros", "us");
  for (int i = 1; i <= 100; ++i) {
    commit->Record(static_cast<uint64_t>(i));
    latency->Record(static_cast<uint64_t>(i * 10));
  }
  std::string text = registry.Snapshot().ToPrometheus();

  // Counters: sanitized name + _total, with the value.
  EXPECT_NE(text.find("write_commits_total 4"), std::string::npos);
  EXPECT_NE(text.find("write_ops_post_tweet_total 9"), std::string::npos);
  EXPECT_NE(text.find("wal_fsyncs_total 2"), std::string::npos);
  EXPECT_NE(text.find("wal_group_commits_total 1"), std::string::npos);
  EXPECT_NE(text.find("driver_requests_total 100"), std::string::npos);

  // Histograms: summary type with all three quantiles and sum/count.
  for (const char* family : {"write_commit_micros", "driver_latency_micros"}) {
    std::string base(family);
    EXPECT_NE(text.find("# TYPE " + base + " summary"), std::string::npos);
    EXPECT_NE(text.find(base + "{quantile=\"0.5\"} "), std::string::npos);
    EXPECT_NE(text.find(base + "{quantile=\"0.95\"} "), std::string::npos);
    EXPECT_NE(text.find(base + "{quantile=\"0.99\"} "), std::string::npos);
    EXPECT_NE(text.find(base + "_count 100"), std::string::npos);
  }

  // Every exposed sample line carries a legal name — no dots survive.
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    std::string name = line.substr(0, line.find_first_of(" {"));
    EXPECT_TRUE(IsValidPrometheusName(name)) << "illegal name: " << name;
  }
}

TEST(IntrospectTest, MetricsJsonMatchesTheSnapshotPath) {
  MetricsRegistry registry;
  registry.GetCounter("hostile \"name\"\n", "items")->Inc(7);
  std::string shared = MetricsJson(&registry);
  EXPECT_EQ(shared, registry.Snapshot().ToJson());
  EXPECT_NE(shared.find(JsonEscape("hostile \"name\"\n")), std::string::npos);
}

}  // namespace
}  // namespace mbq::obs

// ------------------------------------------------- end-to-end slow capture

namespace mbq {
namespace {

class SlowQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    twitter::DatasetSpec spec;
    spec.num_users = 120;
    spec.seed = 7;
    dataset_ = twitter::GenerateDataset(spec);

    nodestore::GraphDbOptions options;
    options.disk_profile = storage::DiskProfile::Instant();
    options.wal_enabled = false;
    db_ = std::make_unique<nodestore::GraphDb>(options);
    auto nh = twitter::LoadIntoNodestore(dataset_, db_.get());
    ASSERT_TRUE(nh.ok()) << nh.status().ToString();

    graph_ = std::make_unique<bitmapstore::Graph>();
    auto bh = twitter::LoadIntoBitmapstore(dataset_, graph_.get());
    ASSERT_TRUE(bh.ok()) << bh.status().ToString();
    bm_handles_ = *bh;

    obs::FlightRecorder::Global().Clear();
  }

  twitter::Dataset dataset_;
  std::unique_ptr<nodestore::GraphDb> db_;
  std::unique_ptr<bitmapstore::Graph> graph_;
  twitter::BitmapHandles bm_handles_;
};

TEST_F(SlowQueryTest, CypherCaptureCarriesTheProfileTree) {
  cypher::CypherSession session(db_.get());
  cypher::SessionOptions options;
  options.slow_query_millis = 0;  // capture everything
  session.Configure(options);
  auto result = session.Run("MATCH (u:user) RETURN count(u)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto slow = obs::FlightRecorder::Global().Snapshot();
  ASSERT_GE(slow.size(), 1u);
  const obs::SlowQuery& capture = slow.back();
  EXPECT_EQ(capture.engine, "cypher");
  EXPECT_EQ(capture.query, "MATCH (u:user) RETURN count(u)");
  EXPECT_GT(capture.db_hits, 0u);
  EXPECT_FALSE(capture.profile.empty());
  // The profile is the executed operator tree, not just the plan shape.
  EXPECT_NE(capture.profile.find("rows="), std::string::npos);
}

TEST_F(SlowQueryTest, HighThresholdCapturesNothing) {
  cypher::CypherSession session(db_.get());
  cypher::SessionOptions options;
  options.slow_query_millis = 1000000;  // nothing here takes 1000 s
  session.Configure(options);
  ASSERT_TRUE(session.Run("MATCH (u:user) RETURN count(u)").ok());
  EXPECT_TRUE(obs::FlightRecorder::Global().Snapshot().empty());
}

TEST_F(SlowQueryTest, KeepCurrentThresholdDoesNotReset) {
  cypher::CypherSession session(db_.get());
  session.SetSlowQueryMillis(7);
  cypher::SessionOptions options;  // slow_query_millis = -1: keep current
  session.Configure(options);
  EXPECT_EQ(session.slow_query_millis(), 7u);
}

TEST_F(SlowQueryTest, BitmapEngineCapturesNavigationCalls) {
  core::EngineOptions engine_options;
  engine_options.graph = graph_.get();
  engine_options.handles = &bm_handles_;
  auto engine = core::OpenEngine(core::EngineKind::kBitmap, engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto* bitmap = static_cast<core::BitmapEngine*>(engine->get());
  bitmap->SetSlowQueryMillis(0);  // capture everything

  auto rows = bitmap->FolloweesOf(dataset_.users[0].uid);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();

  auto slow = obs::FlightRecorder::Global().Snapshot();
  ASSERT_GE(slow.size(), 1u);
  const obs::SlowQuery& capture = slow.back();
  EXPECT_EQ(capture.engine, "bitmap");
  EXPECT_NE(capture.query.find("FolloweesOf"), std::string::npos);
}

}  // namespace
}  // namespace mbq
