#include <gtest/gtest.h>

#include <cstring>

#include "storage/buffer_cache.h"
#include "storage/extent_allocator.h"
#include "storage/simulated_disk.h"
#include "storage/storage_accountant.h"
#include "storage/wal.h"
#include "util/clock.h"

namespace mbq::storage {
namespace {

// ---------------------------------------------------------- SimulatedDisk

TEST(SimulatedDiskTest, RoundTripsPages) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  PageId p0 = disk.AllocatePage();
  PageId p1 = disk.AllocatePage();
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);

  std::vector<uint8_t> data(kPageSize, 0xAB);
  ASSERT_TRUE(disk.WritePage(p1, data.data()).ok());
  std::vector<uint8_t> out(kPageSize, 0);
  ASSERT_TRUE(disk.ReadPage(p1, out.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kPageSize), 0);
  // p0 stays zeroed.
  ASSERT_TRUE(disk.ReadPage(p0, out.data()).ok());
  EXPECT_EQ(out[0], 0);
}

TEST(SimulatedDiskTest, RejectsOutOfRange) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  std::vector<uint8_t> buf(kPageSize);
  EXPECT_TRUE(disk.ReadPage(0, buf.data()).IsOutOfRange());
  disk.AllocatePage();
  EXPECT_TRUE(disk.ReadPage(1, buf.data()).IsOutOfRange());
  EXPECT_TRUE(disk.WritePage(9, buf.data()).IsOutOfRange());
}

TEST(SimulatedDiskTest, ChargesSeekForRandomAccess) {
  VirtualClock clock;
  DiskProfile profile;  // HDD-like
  SimulatedDisk disk(profile, &clock);
  for (int i = 0; i < 1000; ++i) disk.AllocatePage();
  std::vector<uint8_t> buf(kPageSize);

  // Sequential scan: one seek then transfers.
  disk.ResetStats();
  for (PageId p = 0; p < 100; ++p) ASSERT_TRUE(disk.ReadPage(p, buf.data()).ok());
  uint64_t seq_seeks = disk.stats().seeks;
  uint64_t seq_nanos = disk.stats().busy_nanos;

  // Strided scan: every access seeks.
  disk.ResetStats();
  for (PageId p = 0; p < 1000; p += 100) {
    ASSERT_TRUE(disk.ReadPage(p, buf.data()).ok());
  }
  EXPECT_LE(seq_seeks, 2u);
  EXPECT_EQ(disk.stats().seeks, 10u);
  EXPECT_GT(disk.stats().busy_nanos / 10, seq_nanos / 100);
}

TEST(SimulatedDiskTest, TimeFlowsToClock) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile(), &clock);
  disk.AllocatePage();
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(disk.ReadPage(0, buf.data()).ok());
  EXPECT_EQ(clock.NowNanos(), disk.stats().busy_nanos);
  EXPECT_GT(clock.NowNanos(), 0u);
}

// ------------------------------------------------------------ BufferCache

BufferCacheOptions SmallCache(size_t pages) {
  BufferCacheOptions options;
  options.capacity_pages = pages;
  return options;
}

TEST(BufferCacheTest, CachesReads) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCache cache(&disk, SmallCache(4));
  PageId id;
  {
    auto page = cache.NewPage();
    ASSERT_TRUE(page.ok());
    id = page->page_id();
  }
  uint64_t misses = cache.stats().misses;
  for (int i = 0; i < 10; ++i) {
    auto ref = cache.GetPage(id);
    ASSERT_TRUE(ref.ok());
  }
  EXPECT_EQ(cache.stats().misses, misses);  // all hits
  EXPECT_GE(cache.stats().hits, 10u);
}

TEST(BufferCacheTest, WritesBackDirtyPagesOnEviction) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCache cache(&disk, SmallCache(2));
  PageId first;
  {
    auto page = cache.NewPage();
    ASSERT_TRUE(page.ok());
    first = page->page_id();
    page->data()[0] = 0x7F;
    page->MarkDirty();
  }
  // Fill the cache to force eviction of `first`.
  for (int i = 0; i < 4; ++i) {
    auto page = cache.NewPage();
    ASSERT_TRUE(page.ok());
    page->MarkDirty();
  }
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(disk.ReadPage(first, buf.data()).ok());
  EXPECT_EQ(buf[0], 0x7F);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(BufferCacheTest, PinnedPagesSurviveEviction) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCache cache(&disk, SmallCache(3));
  auto pinned = cache.NewPage();
  ASSERT_TRUE(pinned.ok());
  pinned->data()[1] = 0x55;
  // Churn through many pages; the pinned frame must not be reused.
  for (int i = 0; i < 10; ++i) {
    auto page = cache.NewPage();
    ASSERT_TRUE(page.ok());
  }
  EXPECT_EQ(pinned->data()[1], 0x55);
}

TEST(BufferCacheTest, AllPinnedFails) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCache cache(&disk, SmallCache(2));
  auto a = cache.NewPage();
  auto b = cache.NewPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = cache.NewPage();
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsFailedPrecondition());
}

TEST(BufferCacheTest, WriteThroughPropagatesImmediately) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCacheOptions options = SmallCache(4);
  options.write_policy = WritePolicy::kWriteThrough;
  BufferCache cache(&disk, options);
  auto page = cache.NewPage();
  ASSERT_TRUE(page.ok());
  page->data()[5] = 0x11;
  page->MarkDirty();
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(disk.ReadPage(page->page_id(), buf.data()).ok());
  EXPECT_EQ(buf[5], 0x11);
}

TEST(BufferCacheTest, FlushAllStallCountsOnce) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCacheOptions options = SmallCache(4);
  options.flush_all_when_full = true;
  BufferCache cache(&disk, options);
  for (int i = 0; i < 12; ++i) {
    auto page = cache.NewPage();
    ASSERT_TRUE(page.ok());
    page->MarkDirty();
  }
  EXPECT_GT(cache.stats().flush_stalls, 0u);
}

TEST(BufferCacheTest, EvictAllColdStart) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCache cache(&disk, SmallCache(8));
  PageId id;
  {
    auto page = cache.NewPage();
    ASSERT_TRUE(page.ok());
    id = page->page_id();
    page->data()[0] = 9;
    page->MarkDirty();
  }
  ASSERT_TRUE(cache.EvictAll().ok());
  EXPECT_EQ(cache.cached_pages(), 0u);
  uint64_t misses = cache.stats().misses;
  auto ref = cache.GetPage(id);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(cache.stats().misses, misses + 1);  // cold read
  EXPECT_EQ(ref->data()[0], 9);                 // data survived the flush
}

// -------------------------------------------------------------------- WAL

TEST(WalTest, AppendsAndReplaysDurableRecords) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  Wal wal(&disk);
  std::vector<uint8_t> rec1{1, 2, 3};
  std::vector<uint8_t> rec2{4, 5};
  EXPECT_EQ(wal.Append(rec1), 0u);
  EXPECT_EQ(wal.Append(rec2), 1u);
  ASSERT_TRUE(wal.Sync().ok());

  std::vector<std::vector<uint8_t>> seen;
  ASSERT_TRUE(wal.Replay([&](uint64_t lsn, const std::vector<uint8_t>& p) {
                   EXPECT_EQ(lsn, seen.size());
                   seen.push_back(p);
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], rec1);
  EXPECT_EQ(seen[1], rec2);
}

TEST(WalTest, UnsyncedRecordsAreNotDurable) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  Wal wal(&disk);
  wal.Append({1});
  ASSERT_TRUE(wal.Sync().ok());
  wal.Append({2});  // not synced
  size_t count = 0;
  ASSERT_TRUE(wal.Replay([&](uint64_t, const std::vector<uint8_t>&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 1u);
}

TEST(WalTest, LargeRecordsSpanPages) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  Wal wal(&disk);
  std::vector<uint8_t> big(3 * kPageSize, 0xEE);
  wal.Append(big);
  ASSERT_TRUE(wal.Sync().ok());
  size_t count = 0;
  ASSERT_TRUE(wal.Replay([&](uint64_t, const std::vector<uint8_t>& p) {
                   EXPECT_EQ(p, big);
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 1u);
  EXPECT_GE(disk.num_pages(), 3u);
}

TEST(WalTest, ResetClearsLog) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  Wal wal(&disk);
  wal.Append({1});
  ASSERT_TRUE(wal.Sync().ok());
  wal.Reset();
  EXPECT_EQ(wal.next_lsn(), 0u);
  size_t count = 0;
  ASSERT_TRUE(wal.Replay([&](uint64_t, const std::vector<uint8_t>&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 0u);
}

// -------------------------------------------------------- ExtentAllocator

TEST(ExtentAllocatorTest, StreamsGetContiguousRuns) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  ExtentAllocator extents(&disk, /*extent_pages=*/4);
  std::vector<PageId> a;
  for (int i = 0; i < 4; ++i) a.push_back(extents.AllocatePage(0));
  // One extent: consecutive page ids.
  for (int i = 1; i < 4; ++i) EXPECT_EQ(a[i], a[i - 1] + 1);
  EXPECT_EQ(extents.extents_allocated(), 1u);
}

TEST(ExtentAllocatorTest, InterleavedStreamsFragmentWithSmallExtents) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  ExtentAllocator small(&disk, 1);
  // Alternate two streams: with 1-page extents their pages interleave.
  PageId s0a = small.AllocatePage(0);
  PageId s1a = small.AllocatePage(1);
  PageId s0b = small.AllocatePage(0);
  EXPECT_EQ(s1a, s0a + 1);
  EXPECT_EQ(s0b, s1a + 1);  // stream 0 is no longer contiguous

  ExtentAllocator big(&disk, 8);
  PageId b0a = big.AllocatePage(0);
  big.AllocatePage(1);
  PageId b0b = big.AllocatePage(0);
  EXPECT_EQ(b0b, b0a + 1);  // still inside stream 0's extent
}

TEST(ExtentAllocatorTest, TracksStreamPages) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  ExtentAllocator extents(&disk, 2);
  extents.AllocatePage(3);
  extents.AllocatePage(3);
  extents.AllocatePage(3);
  EXPECT_EQ(extents.StreamPages(3).size(), 3u);
  EXPECT_TRUE(extents.StreamPages(99).empty());
  EXPECT_EQ(extents.extents_allocated(), 2u);
}

// ------------------------------------------------------ StorageAccountant

TEST(StorageAccountantTest, AppendsAllocatePagesAndFlush) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCache cache(&disk, BufferCacheOptions{});
  ExtentAllocator extents(&disk, 8);
  StorageAccountant acct(&cache, &extents);
  uint32_t stream = acct.NewStream();
  auto off0 = acct.AppendBytes(stream, 100);
  ASSERT_TRUE(off0.ok());
  EXPECT_EQ(*off0, 0u);
  auto off1 = acct.AppendBytes(stream, kPageSize);
  ASSERT_TRUE(off1.ok());
  EXPECT_EQ(*off1, 100u);
  EXPECT_EQ(acct.StreamBytes(stream), 100 + kPageSize);
  ASSERT_TRUE(acct.Finalize().ok());
  EXPECT_GT(disk.stats().page_writes, 0u);
}

TEST(StorageAccountantTest, TouchReadChargesColdPages) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCacheOptions options;
  options.capacity_pages = 16;
  BufferCache cache(&disk, options);
  ExtentAllocator extents(&disk, 8);
  StorageAccountant acct(&cache, &extents);
  uint32_t stream = acct.NewStream();
  ASSERT_TRUE(acct.AppendBytes(stream, 4 * kPageSize).ok());
  ASSERT_TRUE(acct.Finalize().ok());
  ASSERT_TRUE(cache.EvictAll().ok());
  uint64_t reads = disk.stats().page_reads;
  ASSERT_TRUE(acct.TouchRead(stream, 0, 2 * kPageSize).ok());
  EXPECT_GE(disk.stats().page_reads, reads + 2);
  // Warm now: no further reads.
  reads = disk.stats().page_reads;
  ASSERT_TRUE(acct.TouchRead(stream, 0, 2 * kPageSize).ok());
  EXPECT_EQ(disk.stats().page_reads, reads);
}

TEST(StorageAccountantTest, TouchPastEndIsSafe) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCache cache(&disk, BufferCacheOptions{});
  ExtentAllocator extents(&disk, 8);
  StorageAccountant acct(&cache, &extents);
  uint32_t stream = acct.NewStream();
  EXPECT_TRUE(acct.TouchRead(stream, 0, 100).ok());  // empty stream
  ASSERT_TRUE(acct.AppendBytes(stream, 10).ok());
  EXPECT_TRUE(acct.TouchRead(stream, 5 * kPageSize, 100).ok());
}

}  // namespace
}  // namespace mbq::storage

namespace mbq::storage {
namespace {

// --------------------------------------------------------- Fault injection

TEST(FaultInjectionTest, DiskFailsAfterBudget) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  disk.AllocatePage();
  std::vector<uint8_t> buf(kPageSize);
  disk.InjectFailureAfter(2);
  EXPECT_TRUE(disk.ReadPage(0, buf.data()).ok());
  EXPECT_TRUE(disk.WritePage(0, buf.data()).ok());
  EXPECT_TRUE(disk.ReadPage(0, buf.data()).IsIoError());
  EXPECT_TRUE(disk.WritePage(0, buf.data()).IsIoError());
  disk.ClearFailure();
  EXPECT_TRUE(disk.ReadPage(0, buf.data()).ok());
}

TEST(FaultInjectionTest, BufferCachePropagatesReadFailure) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCacheOptions options;
  options.capacity_pages = 4;
  BufferCache cache(&disk, options);
  PageId id;
  {
    auto page = cache.NewPage();
    ASSERT_TRUE(page.ok());
    id = page->page_id();
    page->MarkDirty();
  }
  ASSERT_TRUE(cache.EvictAll().ok());
  disk.InjectFailureAfter(0);
  auto ref = cache.GetPage(id);
  EXPECT_FALSE(ref.ok());
  EXPECT_TRUE(ref.status().IsIoError());
  // The cache stays usable after the device recovers.
  disk.ClearFailure();
  auto again = cache.GetPage(id);
  EXPECT_TRUE(again.ok());
}

TEST(FaultInjectionTest, FlushSurfacesWriteFailure) {
  VirtualClock clock;
  SimulatedDisk disk(DiskProfile::Instant(), &clock);
  BufferCache cache(&disk, BufferCacheOptions{});
  {
    auto page = cache.NewPage();
    ASSERT_TRUE(page.ok());
    page->MarkDirty();
  }
  disk.InjectFailureAfter(0);
  EXPECT_TRUE(cache.FlushAll().IsIoError());
  disk.ClearFailure();
  EXPECT_TRUE(cache.FlushAll().ok());
}

}  // namespace
}  // namespace mbq::storage
