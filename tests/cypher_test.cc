#include <gtest/gtest.h>

#include "cypher/lexer.h"
#include "util/rng.h"
#include "cypher/parser.h"
#include "cypher/session.h"
#include "nodestore/graph_db.h"

namespace mbq::cypher {
namespace {

using common::Value;
using nodestore::GraphDb;
using nodestore::GraphDbOptions;

GraphDbOptions FastOptions() {
  GraphDbOptions options;
  options.disk_profile = storage::DiskProfile::Instant();
  options.wal_enabled = false;
  return options;
}

// ------------------------------------------------------------------ Lexer

TEST(LexerTest, TokenizesPatterns) {
  auto tokens = Tokenize("MATCH (u:user {uid: $id})-[:follows]->(f) RETURN f");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "MATCH");
}

TEST(LexerTest, TokenizesOperators) {
  auto tokens = Tokenize("a <> b <= c >= d < e > f = g");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds[1], TokenKind::kNe);
  EXPECT_EQ(kinds[3], TokenKind::kLe);
  EXPECT_EQ(kinds[5], TokenKind::kGe);
  EXPECT_EQ(kinds[7], TokenKind::kLt);
  EXPECT_EQ(kinds[9], TokenKind::kGt);
  EXPECT_EQ(kinds[11], TokenKind::kEq);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize("RETURN 'it\\'s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[1].text, "it's");
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("RETURN 'oops").ok());
}

TEST(LexerTest, RejectsBadCharacter) {
  EXPECT_FALSE(Tokenize("RETURN @x").ok());
}

TEST(LexerTest, VariableLengthSpec) {
  auto tokens = Tokenize("-[:follows*2..3]->");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds[0], TokenKind::kDash);
  EXPECT_EQ(kinds[4], TokenKind::kStar);
  EXPECT_EQ(kinds[6], TokenKind::kDotDot);
}

// ----------------------------------------------------------------- Parser

TEST(ParserTest, ParsesSimpleMatch) {
  auto q = ParseQuery("MATCH (u:user) RETURN u.uid");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->patterns.size(), 1u);
  EXPECT_EQ(q->patterns[0].nodes.size(), 1u);
  EXPECT_EQ(q->patterns[0].nodes[0].variable, "u");
  EXPECT_EQ(q->patterns[0].nodes[0].label, "user");
  ASSERT_EQ(q->return_items.size(), 1u);
  EXPECT_EQ(q->return_items[0].expr->kind, ExprKind::kProperty);
}

TEST(ParserTest, ParsesChainWithDirections) {
  auto q = ParseQuery(
      "MATCH (a:user {uid: $uid})<-[:mentions]-(t:tweet)-[m:mentions]->"
      "(b:user) RETURN b.uid");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const PatternPart& part = q->patterns[0];
  ASSERT_EQ(part.nodes.size(), 3u);
  ASSERT_EQ(part.rels.size(), 2u);
  EXPECT_EQ(part.rels[0].dir, RelPattern::Dir::kIn);
  EXPECT_EQ(part.rels[1].dir, RelPattern::Dir::kOut);
  EXPECT_EQ(part.rels[1].variable, "m");
  ASSERT_EQ(part.nodes[0].properties.size(), 1u);
  EXPECT_EQ(part.nodes[0].properties[0].first, "uid");
}

TEST(ParserTest, ParsesWhereOrderLimit) {
  auto q = ParseQuery(
      "MATCH (u:user) WHERE u.followers_count > 10 AND NOT u.uid = 3 "
      "RETURN u.uid AS id, count(u) AS c ORDER BY c DESC, id ASC LIMIT 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_NE(q->where, nullptr);
  EXPECT_EQ(q->where->kind, ExprKind::kAnd);
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_FALSE(q->order_by[0].ascending);
  EXPECT_TRUE(q->order_by[1].ascending);
  ASSERT_NE(q->limit, nullptr);
  EXPECT_EQ(q->return_items[1].alias, "c");
}

TEST(ParserTest, ParsesShortestPath) {
  auto q = ParseQuery(
      "MATCH (a:user {uid: $a}), (b:user {uid: $b}), "
      "p = shortestPath((a)-[:follows*..3]->(b)) RETURN length(p)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->patterns.size(), 3u);
  EXPECT_TRUE(q->patterns[2].shortest_path);
  EXPECT_EQ(q->patterns[2].path_variable, "p");
  EXPECT_EQ(q->patterns[2].rels[0].max_hops, 3u);
  EXPECT_EQ(q->return_items[0].expr->kind, ExprKind::kLengthCall);
}

TEST(ParserTest, ParsesPatternPredicate) {
  auto q = ParseQuery(
      "MATCH (a:user)-[:follows]->(c:user) "
      "WHERE NOT (a)-[:follows]->(c) RETURN c.uid");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where->kind, ExprKind::kNot);
  EXPECT_EQ(q->where->children[0]->kind, ExprKind::kPatternPred);
}

TEST(ParserTest, ParsesDistinct) {
  auto q = ParseQuery("MATCH (u:user) RETURN DISTINCT u.uid");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->return_distinct);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseQuery("FETCH (u) RETURN u").ok());
  EXPECT_FALSE(ParseQuery("MATCH (u:user) RETURN").ok());
  EXPECT_FALSE(ParseQuery("MATCH (u:user RETURN u").ok());
  EXPECT_FALSE(ParseQuery("MATCH (a)-[:x]->-(b) RETURN a").ok());
  EXPECT_FALSE(ParseQuery("MATCH (u:user) RETURN u.uid trailing").ok());
}

// ------------------------------------------------------------ Spans

TEST(LexerTest, TokensCarryLineAndColumn) {
  auto tokens = Tokenize("MATCH (u)\nRETURN u");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1u);
  EXPECT_EQ((*tokens)[0].column, 1u);
  const Token* ret = nullptr;
  for (const Token& t : *tokens) {
    if (t.text == "RETURN") ret = &t;
  }
  ASSERT_NE(ret, nullptr);
  EXPECT_EQ(ret->line, 2u);
  EXPECT_EQ(ret->column, 1u);
}

TEST(LexerTest, ErrorsNameLineAndColumn) {
  auto bad_char = Tokenize("RETURN @x");
  ASSERT_FALSE(bad_char.ok());
  EXPECT_NE(bad_char.status().message().find("at line 1, column 8"),
            std::string::npos)
      << bad_char.status().ToString();

  auto unterminated = Tokenize("RETURN\n  'oops");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find("at line 2, column 3"),
            std::string::npos)
      << unterminated.status().ToString();
}

TEST(ParserTest, ErrorsCarrySourceSpans) {
  auto missing_paren = ParseQuery("MATCH (u:user RETURN u");
  ASSERT_FALSE(missing_paren.ok());
  EXPECT_NE(missing_paren.status().message().find("line 1, column 15"),
            std::string::npos)
      << missing_paren.status().ToString();
  EXPECT_NE(missing_paren.status().message().find("('RETURN')"),
            std::string::npos);

  auto truncated = ParseQuery("MATCH (u:user) RETURN");
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find("(end of input)"),
            std::string::npos)
      << truncated.status().ToString();
}

TEST(ParserTest, PatternsCarrySpans) {
  auto q = ParseQuery("MATCH (u:user)-[:follows]->(f:user) RETURN f.uid");
  ASSERT_TRUE(q.ok());
  const NodePattern& anchor = q->patterns[0].nodes[0];
  EXPECT_TRUE(anchor.span.known());
  EXPECT_EQ(anchor.span.column, 7u);
  EXPECT_EQ(anchor.label_span.column, 10u);
  const RelPattern& rel = q->patterns[0].rels[0];
  EXPECT_TRUE(rel.type_span.known());
  EXPECT_EQ(rel.type_span.column, 18u);
}

// ------------------------------------------------------------- Execution

class CypherExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<GraphDb>(FastOptions());
    auto user = db_->Label("user");
    auto tweet = db_->Label("tweet");
    ASSERT_TRUE(user.ok());
    ASSERT_TRUE(tweet.ok());
    user_ = *user;
    tweet_ = *tweet;
    follows_ = *db_->RelType("follows");
    posts_ = *db_->RelType("posts");
    mentions_ = *db_->RelType("mentions");
    uid_ = db_->PropKey("uid");
    tid_ = db_->PropKey("tid");
    name_ = db_->PropKey("name");

    // Users 0..4; follows: 0->1, 0->2, 1->2, 2->3, 3->4, 1->0
    for (int i = 0; i < 5; ++i) {
      auto node = db_->CreateNode(user_);
      ASSERT_TRUE(node.ok());
      users_.push_back(*node);
      ASSERT_TRUE(
          db_->SetNodeProperty(*node, uid_, Value::Int(i)).ok());
      ASSERT_TRUE(db_->SetNodeProperty(*node, name_,
                                       Value::String("u" + std::to_string(i)))
                      .ok());
    }
    auto follow = [&](int a, int b) {
      ASSERT_TRUE(
          db_->CreateRelationship(follows_, users_[a], users_[b]).ok());
    };
    follow(0, 1);
    follow(0, 2);
    follow(1, 2);
    follow(2, 3);
    follow(3, 4);
    follow(1, 0);
    // Tweets: t0 by user1 mentioning user0; t1 by user2 mentioning user0
    // and user3.
    auto make_tweet = [&](int tid, int poster,
                          std::vector<int> mentioned) {
      auto node = db_->CreateNode(tweet_);
      ASSERT_TRUE(node.ok());
      ASSERT_TRUE(db_->SetNodeProperty(*node, tid_, Value::Int(tid)).ok());
      ASSERT_TRUE(
          db_->CreateRelationship(posts_, users_[poster], *node).ok());
      for (int m : mentioned) {
        ASSERT_TRUE(
            db_->CreateRelationship(mentions_, *node, users_[m]).ok());
      }
    };
    make_tweet(100, 1, {0});
    make_tweet(101, 2, {0, 3});
    ASSERT_TRUE(db_->CreateIndex(user_, uid_, /*unique=*/true).ok());
    session_ = std::make_unique<CypherSession>(db_.get());
  }

  Result<QueryResult> Run(const std::string& q, Params params = {}) {
    return session_->Run(q, params);
  }

  std::unique_ptr<GraphDb> db_;
  std::unique_ptr<CypherSession> session_;
  nodestore::LabelId user_, tweet_;
  nodestore::RelTypeId follows_, posts_, mentions_;
  nodestore::PropKeyId uid_, tid_, name_;
  std::vector<nodestore::NodeId> users_;
};

TEST_F(CypherExecTest, LabelScanReturnsAll) {
  auto r = Run("MATCH (u:user) RETURN u.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 5u);
  EXPECT_EQ(r->columns, std::vector<std::string>{"u.uid"});
}

TEST_F(CypherExecTest, IndexSeekFindsOne) {
  auto r = Run("MATCH (u:user {uid: $id}) RETURN u.name",
               {{"id", Value::Int(3)}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].value.AsString(), "u3");
}

TEST_F(CypherExecTest, ExpandOutgoing) {
  auto r = Run("MATCH (a:user {uid: 0})-[:follows]->(f:user) RETURN f.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<int64_t> uids;
  for (const auto& row : r->rows) uids.push_back(row[0].value.AsInt());
  std::sort(uids.begin(), uids.end());
  EXPECT_EQ(uids, (std::vector<int64_t>{1, 2}));
}

TEST_F(CypherExecTest, ExpandIncoming) {
  auto r = Run("MATCH (a:user {uid: 2})<-[:follows]-(f:user) RETURN f.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<int64_t> uids;
  for (const auto& row : r->rows) uids.push_back(row[0].value.AsInt());
  std::sort(uids.begin(), uids.end());
  EXPECT_EQ(uids, (std::vector<int64_t>{0, 1}));
}

TEST_F(CypherExecTest, TwoHopChain) {
  auto r = Run(
      "MATCH (a:user {uid: 0})-[:follows]->(f:user)-[:follows]->(c:user) "
      "RETURN c.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<int64_t> uids;
  for (const auto& row : r->rows) uids.push_back(row[0].value.AsInt());
  std::sort(uids.begin(), uids.end());
  // 0->1->{2,0}, 0->2->{3}
  EXPECT_EQ(uids, (std::vector<int64_t>{0, 2, 3}));
}

TEST_F(CypherExecTest, WhereFilter) {
  auto r = Run("MATCH (u:user) WHERE u.uid > 2 RETURN u.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(CypherExecTest, PatternPredicateNegation) {
  // Users user0 follows: 1, 2. 2-step candidates not followed: 0, 3.
  auto r = Run(
      "MATCH (a:user {uid: 0})-[:follows]->(f:user)-[:follows]->(c:user) "
      "WHERE NOT (a)-[:follows]->(c) AND c.uid <> 0 RETURN c.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<int64_t> uids;
  for (const auto& row : r->rows) uids.push_back(row[0].value.AsInt());
  std::sort(uids.begin(), uids.end());
  EXPECT_EQ(uids, (std::vector<int64_t>{3}));
}

TEST_F(CypherExecTest, AggregationCountsPerGroup) {
  auto r = Run(
      "MATCH (a:user {uid: 0})<-[:mentions]-(t:tweet)<-[:posts]-(u:user) "
      "RETURN u.uid, count(t) AS c ORDER BY c DESC, u.uid ASC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);  // posters 1 and 2 each mention user0 once
  EXPECT_EQ(r->rows[0][1].value.AsInt(), 1);
}

TEST_F(CypherExecTest, OrderByAndLimit) {
  auto r = Run("MATCH (u:user) RETURN u.uid ORDER BY u.uid DESC LIMIT 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].value.AsInt(), 4);
  EXPECT_EQ(r->rows[1][0].value.AsInt(), 3);
}

TEST_F(CypherExecTest, DistinctDeduplicates) {
  auto r = Run(
      "MATCH (a:user)-[:follows]->(f:user) RETURN DISTINCT f.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 5u);  // targets: 1,2,3,4,0
}

TEST_F(CypherExecTest, VariableLengthTwoHops) {
  auto r = Run(
      "MATCH (a:user {uid: 0})-[:follows*2..2]->(c:user) RETURN c.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<int64_t> uids;
  for (const auto& row : r->rows) uids.push_back(row[0].value.AsInt());
  std::sort(uids.begin(), uids.end());
  EXPECT_EQ(uids, (std::vector<int64_t>{0, 2, 3}));
}

TEST_F(CypherExecTest, ShortestPathLength) {
  auto r = Run(
      "MATCH (a:user {uid: 0}), (b:user {uid: 4}), "
      "p = shortestPath((a)-[:follows*..5]->(b)) RETURN length(p)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].value.AsInt(), 3);  // 0->2->3->4
}

TEST_F(CypherExecTest, ShortestPathRespectsMaxHops) {
  auto r = Run(
      "MATCH (a:user {uid: 0}), (b:user {uid: 4}), "
      "p = shortestPath((a)-[:follows*..2]->(b)) RETURN length(p)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(CypherExecTest, PlanCacheReusesPlans) {
  Params p1{{"id", Value::Int(1)}};
  Params p2{{"id", Value::Int(2)}};
  auto r1 = Run("MATCH (u:user {uid: $id}) RETURN u.uid", p1);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->plan_cached);
  auto r2 = Run("MATCH (u:user {uid: $id}) RETURN u.uid", p2);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->plan_cached);
  ASSERT_EQ(r2->rows.size(), 1u);
  EXPECT_EQ(r2->rows[0][0].value.AsInt(), 2);
}

TEST_F(CypherExecTest, ProfileReportsDbHits) {
  auto r = Run("MATCH (u:user) RETURN u.uid");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->db_hits, 0u);
  EXPECT_NE(r->profile.find("NodeByLabelScan"), std::string::npos);
}

TEST_F(CypherExecTest, MissingParameterFails) {
  auto r = Run("MATCH (u:user {uid: $id}) RETURN u.uid");
  EXPECT_FALSE(r.ok());
}

TEST_F(CypherExecTest, UnknownLabelYieldsEmpty) {
  auto r = Run("MATCH (u:ghost) RETURN u.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(CypherExecTest, UnknownRelTypeYieldsEmpty) {
  auto r = Run("MATCH (u:user {uid: 0})-[:ghost]->(x:user) RETURN x.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->rows.empty());
}

}  // namespace
}  // namespace mbq::cypher

namespace mbq::cypher {
namespace {

using common::Value;
using nodestore::GraphDb;

// --------------------------------------------------- Planner corner cases

class CypherPlannerTest : public CypherExecTest {};

TEST_F(CypherPlannerTest, CartesianApplyForDisconnectedPatterns) {
  auto r = Run("MATCH (a:user {uid: 0}), (b:user {uid: 4}) "
               "RETURN a.uid, b.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].value.AsInt(), 0);
  EXPECT_EQ(r->rows[0][1].value.AsInt(), 4);
  EXPECT_NE(r->profile.find("Apply"), std::string::npos);
}

TEST_F(CypherPlannerTest, SharedVariableJoinsPatterns) {
  // Second pattern reuses f: planner must expand from the bound variable
  // rather than rescanning.
  auto r = Run(
      "MATCH (a:user {uid: 0})-[:follows]->(f:user), "
      "(f)-[:follows]->(c:user) RETURN f.uid, c.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 0->1->{2,0}, 0->2->{3}
  EXPECT_EQ(r->rows.size(), 3u);
}

TEST_F(CypherPlannerTest, ExpandIntoForCyclicPattern) {
  // (a)-[:follows]->(b)-[:follows]->(a) — the second hop targets a bound
  // variable (cycle check). 0->1 and 1->0 close a cycle.
  auto r = Run(
      "MATCH (a:user {uid: 0})-[:follows]->(b:user)-[:follows]->(a) "
      "RETURN b.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].value.AsInt(), 1);
}

TEST_F(CypherPlannerTest, AnchorsOnIndexedPropertyOverLabelScan) {
  auto plan = session_->Prepare("MATCH (u:user {uid: 3}) RETURN u.uid");
  ASSERT_TRUE(plan.ok());
  std::string tree = (*plan)->Explain();
  EXPECT_NE(tree.find("NodeIndexSeek"), std::string::npos) << tree;
  EXPECT_EQ(tree.find("NodeByLabelScan"), std::string::npos) << tree;
}

TEST_F(CypherPlannerTest, FallsBackToLabelScanWithoutIndex) {
  auto plan = session_->Prepare("MATCH (u:user {name: 'u3'}) RETURN u.uid");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE((*plan)->Explain().find("NodeByLabelScan"), std::string::npos);
  // ... and still answers correctly via a residual filter.
  auto r = Run("MATCH (u:user {name: 'u3'}) RETURN u.uid");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].value.AsInt(), 3);
}

TEST_F(CypherPlannerTest, OrderByHiddenColumn) {
  // ORDER BY on an expression that is not returned: hidden column is
  // added, used for the sort, then trimmed.
  auto r = Run("MATCH (u:user) RETURN u.name ORDER BY u.uid DESC LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  ASSERT_EQ(r->rows[0].size(), 1u);  // hidden column trimmed
  EXPECT_EQ(r->rows[0][0].value.AsString(), "u4");
  EXPECT_EQ(r->rows[2][0].value.AsString(), "u2");
}

TEST_F(CypherPlannerTest, CountDistinct) {
  // user0 is mentioned by t100 and t101 (posters 1 and 2).
  auto r = Run(
      "MATCH (a:user {uid: 0})<-[:mentions]-(t:tweet)<-[:posts]-(u:user) "
      "RETURN count(DISTINCT u)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].value.AsInt(), 2);
}

TEST_F(CypherPlannerTest, CountStar) {
  auto r = Run("MATCH (u:user) RETURN count(*)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].value.AsInt(), 5);
}

TEST_F(CypherPlannerTest, IdFunction) {
  auto r = Run("MATCH (u:user {uid: 0}) RETURN id(u)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].value.AsInt(),
            static_cast<int64_t>(users_[0]));
}

TEST_F(CypherPlannerTest, RejectsUnplannableQueries) {
  // Unlabeled disconnected anchor cannot be planned.
  EXPECT_FALSE(Run("MATCH (x) RETURN x.uid").ok());
  // Aggregate nested in a comparison is unsupported (NotImplemented).
  EXPECT_FALSE(
      Run("MATCH (u:user) RETURN count(u) = 5").status().ok());
}

TEST_F(CypherPlannerTest, UndirectedRelationshipMatchesBothWays) {
  auto r = Run("MATCH (a:user {uid: 3})-[:follows]-(x:user) RETURN x.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<int64_t> uids;
  for (const auto& row : r->rows) uids.push_back(row[0].value.AsInt());
  std::sort(uids.begin(), uids.end());
  // follows: 2->3 (incoming) and 3->4 (outgoing).
  EXPECT_EQ(uids, (std::vector<int64_t>{2, 4}));
}

TEST_F(CypherPlannerTest, RelationshipVariableBinds) {
  auto r = Run(
      "MATCH (a:user {uid: 0})-[r:follows]->(b:user) RETURN id(r), b.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
  for (const auto& row : r->rows) {
    EXPECT_EQ(row[0].value.type(), common::ValueType::kInt);
  }
}

TEST_F(CypherPlannerTest, BooleanConnectives) {
  auto r = Run(
      "MATCH (u:user) WHERE u.uid = 1 OR (u.uid > 2 AND NOT u.uid = 4) "
      "RETURN u.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<int64_t> uids;
  for (const auto& row : r->rows) uids.push_back(row[0].value.AsInt());
  std::sort(uids.begin(), uids.end());
  EXPECT_EQ(uids, (std::vector<int64_t>{1, 3}));
}

TEST_F(CypherPlannerTest, NullPropertyComparisonsAreNotTrue) {
  // tweet nodes have no uid property: comparisons on null never match.
  auto r = Run("MATCH (t:tweet) WHERE t.uid > 0 RETURN t.tid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->rows.empty());
}

// ------------------------------------------------------ Parser robustness

// Feed the parser structured garbage: it must return a Status, never
// crash, and valid queries embedded in the sweep must parse.
TEST(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  const char* fragments[] = {
      "MATCH",  "RETURN", "WHERE",  "(",      ")",     "[",    "]",
      "{",      "}",      ":",      ",",      "-",     "->",   "<-",
      "*",      "..",     "user",   "follows", "u",    ".",    "uid",
      "$p",     "42",     "'str'",  "count",  "ORDER", "BY",   "LIMIT",
      "DISTINCT", "AND",  "OR",     "NOT",    "=",     "<>",   "<",
      "shortestPath", "length", "AS",
  };
  Rng rng(2025);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string query;
    size_t len = 1 + rng.NextBounded(24);
    for (size_t i = 0; i < len; ++i) {
      query += fragments[rng.NextBounded(std::size(fragments))];
      query += ' ';
    }
    auto result = ParseQuery(query);  // must not crash or hang
    if (result.ok()) ++parsed_ok;
  }
  // The soup occasionally forms valid queries; mostly it must not.
  EXPECT_LT(parsed_ok, 3000);
}

TEST(ParserRobustnessTest, DeeplyNestedExpressions) {
  std::string query = "MATCH (u:user) WHERE ";
  for (int i = 0; i < 200; ++i) query += "NOT ";
  query += "u.uid = 1 RETURN u.uid";
  auto result = ParseQuery(query);
  EXPECT_TRUE(result.ok());
}

TEST(ParserRobustnessTest, LongQueryText) {
  std::string query = "MATCH (u:user) WHERE u.uid = 0";
  for (int i = 1; i < 500; ++i) {
    query += " OR u.uid = " + std::to_string(i);
  }
  query += " RETURN u.uid";
  EXPECT_TRUE(ParseQuery(query).ok());
}

}  // namespace
}  // namespace mbq::cypher

namespace mbq::cypher {
namespace {

// --------------------------------------------------------- Aggregates

class CypherAggregateTest : public CypherExecTest {};

TEST_F(CypherAggregateTest, SumMinMaxAvgOverProperty) {
  // uids of users are 0..4 -> sum 10, min 0, max 4, avg 2.0.
  auto r = Run(
      "MATCH (u:user) RETURN sum(u.uid), min(u.uid), max(u.uid), avg(u.uid)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].value.AsInt(), 10);
  EXPECT_EQ(r->rows[0][1].value.AsInt(), 0);
  EXPECT_EQ(r->rows[0][2].value.AsInt(), 4);
  EXPECT_DOUBLE_EQ(r->rows[0][3].value.AsDouble(), 2.0);
}

TEST_F(CypherAggregateTest, GroupedSum) {
  // Sum of followee uids per user: 0 -> 1+2=3, 1 -> 2+0=2, 2 -> 3, 3 -> 4.
  auto r = Run(
      "MATCH (a:user)-[:follows]->(f:user) "
      "RETURN a.uid, sum(f.uid) AS s ORDER BY a.uid ASC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 4u);
  EXPECT_EQ(r->rows[0][1].value.AsInt(), 3);
  EXPECT_EQ(r->rows[1][1].value.AsInt(), 2);
  EXPECT_EQ(r->rows[2][1].value.AsInt(), 3);
  EXPECT_EQ(r->rows[3][1].value.AsInt(), 4);
}

TEST_F(CypherAggregateTest, MinMaxOnStrings) {
  auto r = Run("MATCH (u:user) RETURN min(u.name), max(u.name)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].value.AsString(), "u0");
  EXPECT_EQ(r->rows[0][1].value.AsString(), "u4");
}

TEST_F(CypherAggregateTest, AggregatesSkipNulls) {
  // tweet nodes have no uid: sum over missing property is 0, avg null.
  auto r = Run("MATCH (t:tweet) RETURN sum(t.uid), avg(t.uid), count(t.uid)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].value.AsInt(), 0);
  EXPECT_TRUE(r->rows[0][1].is_null());
  EXPECT_EQ(r->rows[0][2].value.AsInt(), 0);
}

TEST_F(CypherAggregateTest, SumDistinct) {
  // Followee uid multiset for all users: {1,2},{2,0},{3},{4} -> distinct
  // targets {0,1,2,3,4} -> sum 10; plain sum counts 2 twice -> 12.
  auto plain = Run("MATCH (a:user)-[:follows]->(f:user) RETURN sum(f.uid)");
  auto distinct =
      Run("MATCH (a:user)-[:follows]->(f:user) RETURN sum(DISTINCT f.uid)");
  ASSERT_TRUE(plain.ok() && distinct.ok());
  EXPECT_EQ(plain->rows[0][0].value.AsInt(), 12);
  EXPECT_EQ(distinct->rows[0][0].value.AsInt(), 10);
}

TEST_F(CypherAggregateTest, SumOverStringsFails) {
  auto r = Run("MATCH (u:user) RETURN sum(u.name)");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(CypherAggregateTest, MixedIntDoubleSumPromotes) {
  nodestore::PropKeyId score = db_->PropKey("score");
  ASSERT_TRUE(
      db_->SetNodeProperty(users_[0], score, Value::Double(1.5)).ok());
  ASSERT_TRUE(db_->SetNodeProperty(users_[1], score, Value::Int(2)).ok());
  auto r = Run("MATCH (u:user) RETURN sum(u.score)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->rows[0][0].value.AsDouble(), 3.5);
}

// -------------------------------------------------------- PROFILE / EXPLAIN

TEST_F(CypherExecTest, ProfileExecutesAndMarksResult) {
  auto r = Run("PROFILE MATCH (u:user) RETURN u.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->profiled);
  EXPECT_FALSE(r->explain_only);
  EXPECT_EQ(r->rows.size(), 5u);
  // The profile tree carries per-operator stats.
  EXPECT_NE(r->profile.find("NodeByLabelScan"), std::string::npos);
  EXPECT_NE(r->profile.find("dbHits="), std::string::npos);
  EXPECT_NE(r->profile.find("rows="), std::string::npos);
}

TEST_F(CypherExecTest, ProfileVerbIsCaseInsensitive) {
  auto r = Run("profile MATCH (u:user) RETURN u.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->profiled);
  EXPECT_EQ(r->rows.size(), 5u);
}

TEST_F(CypherExecTest, ProfileDbHitsStableAcrossRuns) {
  // The same query over the same fixed graph must charge the same db
  // hits every time — the profile is deterministic, not timing-based.
  const std::string q =
      "PROFILE MATCH (a:user {uid: 0})-[:follows]->(f:user) RETURN f.uid";
  auto first = Run(q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first->db_hits, 0u);
  for (int i = 0; i < 3; ++i) {
    auto again = Run(q);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->db_hits, first->db_hits);
    EXPECT_EQ(again->profile, first->profile);
  }
}

TEST_F(CypherExecTest, ExplainCompilesWithoutExecuting) {
  uint64_t hits_before =
      Run("MATCH (u:user) RETURN u.uid")->db_hits;  // warm the cache
  auto r = Run("EXPLAIN MATCH (u:user) RETURN u.uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->explain_only);
  EXPECT_FALSE(r->profiled);
  EXPECT_TRUE(r->rows.empty());
  EXPECT_EQ(r->db_hits, 0u);
  EXPECT_NE(r->profile.find("NodeByLabelScan"), std::string::npos);
  // The shape-only tree carries no runtime stats.
  EXPECT_EQ(r->profile.find("dbHits="), std::string::npos);
  EXPECT_GT(hits_before, 0u);
}

TEST_F(CypherExecTest, ProfiledQuerySharesPlanCacheWithPlainQuery) {
  auto plain = Run("MATCH (u:user {uid: $id}) RETURN u.name",
                   {{"id", Value::Int(1)}});
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->plan_cached);
  auto profiled = Run("PROFILE MATCH (u:user {uid: $id}) RETURN u.name",
                      {{"id", Value::Int(2)}});
  ASSERT_TRUE(profiled.ok());
  // The PROFILE prefix is stripped before the cache lookup.
  EXPECT_TRUE(profiled->plan_cached);
  ASSERT_EQ(profiled->rows.size(), 1u);
  EXPECT_EQ(profiled->rows[0][0].value.AsString(), "u2");
}

}  // namespace
}  // namespace mbq::cypher
